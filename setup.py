"""Setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build an editable wheel.  This shim
enables the legacy path::

    python setup.py develop --no-deps

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
