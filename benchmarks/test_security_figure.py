"""Benchmark regenerating the §7 security result (Figure 18)."""

from __future__ import annotations

import repro


def test_fig18_tampering_attack(run_once):
    """The MITM blacks out the viewer but not the broadcaster; the
    signature defense detects and drops every tampered frame."""
    result = run_once(repro.run_experiment, "fig18")
    print("\n" + result.text)
    rows = result.data["rows"]
    assert rows["attack"]["attack_succeeded"]
    assert rows["attack"]["viewer_black"] > 0
    assert rows["attack"]["broadcaster_black"] == 0
    assert rows["attack"]["token_leaked"]
    assert not rows["attack_with_defense"]["attack_succeeded"]
    assert rows["attack_with_defense"]["detected"] == rows["attack_with_defense"]["tampered"]
    assert rows["no_attack"]["tampered"] == 0
