"""Benchmarks regenerating Table 1 and Table 2."""

from __future__ import annotations

import pytest

import repro


def test_table1_dataset_statistics(run_once):
    """Table 1: Periscope dwarfs Meerkat on every count."""
    result = run_once(repro.run_experiment, "table1")
    print("\n" + result.text)
    periscope = result.data["rescaled"]["Periscope"]
    meerkat = result.data["rescaled"]["Meerkat"]
    assert periscope["broadcasts"] == pytest.approx(19.6e6, rel=0.2)
    assert periscope["total_views"] == pytest.approx(705e6, rel=0.25)
    assert meerkat["broadcasts"] == pytest.approx(164e3, rel=0.3)
    assert periscope["broadcasts"] > 50 * meerkat["broadcasts"]


def test_table2_social_graph_statistics(run_once):
    """Table 2: the follow graph is Twitter-like, not Facebook-like."""
    result = run_once(repro.run_experiment, "table2")
    print("\n" + result.text)
    generated = result.data["rows"]["Periscope (generated)"]
    assert generated["assortativity"] < 0.05  # negative-ish, like Twitter
    assert 0.02 < generated["clustering_coef"] < 0.4
    assert generated["avg_path"] < 6.0
    assert generated["avg_degree"] == pytest.approx(38.6, rel=0.4)
