"""Ablation: gateway-based vs direct Wowza→Fastly distribution (§5.3).

The paper infers Periscope routes chunks through a co-located gateway POP
(explaining the sharp co-location gap in Figure 15).  The alternative —
the origin pushing to every POP directly — trades origin egress bandwidth
for the coordination delay.  This ablation quantifies both designs.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.cdn.transfer import TransferModel
from repro.geo.datacenters import FASTLY_DATACENTERS, WOWZA_DATACENTERS


def _compare_designs() -> dict[str, dict[str, float]]:
    rng = np.random.default_rng(41)
    gateway_model = TransferModel()
    # "Direct" design: no gateway coordination hop, origin serves each POP.
    direct_model = TransferModel(coordination_s=0.0, handoff_s=0.0)

    gateway_delays = []
    direct_delays = []
    for wowza in WOWZA_DATACENTERS:
        for fastly in FASTLY_DATACENTERS:
            for _ in range(5):
                gateway_delays.append(
                    gateway_model.transfer_delay_s(wowza, fastly, rng)
                )
                direct_delays.append(direct_model.transfer_delay_s(wowza, fastly, rng))

    pops = len(FASTLY_DATACENTERS)
    chunk_mb = gateway_model.chunk_bytes / 1e6
    return {
        "gateway (Periscope)": {
            "median_w2f_s": float(np.median(gateway_delays)),
            "p90_w2f_s": float(np.percentile(gateway_delays, 90)),
            "origin_egress_mb_per_chunk": chunk_mb,  # one copy to the gateway
        },
        "direct fan-out": {
            "median_w2f_s": float(np.median(direct_delays)),
            "p90_w2f_s": float(np.percentile(direct_delays, 90)),
            "origin_egress_mb_per_chunk": chunk_mb * pops,  # every POP
        },
    }


def test_gateway_vs_direct(run_once):
    rows = run_once(_compare_designs)
    print("\n" + format_table(rows, title="Ablation — W2F distribution design",
                              row_header="design"))
    gateway = rows["gateway (Periscope)"]
    direct = rows["direct fan-out"]
    # Direct is faster (no coordination hop)...
    assert direct["median_w2f_s"] < gateway["median_w2f_s"]
    # ...but costs the origin 23x the egress bandwidth per chunk: the
    # scalability-over-latency choice the paper attributes to Periscope.
    assert direct["origin_egress_mb_per_chunk"] == (
        23 * gateway["origin_egress_mb_per_chunk"]
    )
