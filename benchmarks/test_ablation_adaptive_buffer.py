"""Ablation: adaptive vs fixed pre-buffering (§6's closing suggestion).

Replays the delay-crawl traces under fixed P=6 s / P=9 s and under the
adaptive policy that probes early-session jitter and only falls back to
9 s on unstable connections.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.core.adaptive_buffer import AdaptiveBufferPolicy, JitterProbe, evaluate_policies
from repro.core.pipeline import DelayMeasurementCampaign, hls_viewer_traces


def _run() -> dict[str, dict[str, float]]:
    campaign = DelayMeasurementCampaign(n_broadcasts=40, seed=2)
    traces = hls_viewer_traces(campaign.run(), np.random.default_rng(2))
    policy = AdaptiveBufferPolicy(probe=JitterProbe(probe_s=30.0))
    outcomes = evaluate_policies(traces, 3.0, adaptive=policy)
    rows = {}
    for name, outcome in outcomes.items():
        rows[name] = {
            "median_stall": round(outcome.median_stall_ratio, 4),
            "p90_stall": round(outcome.p90_stall_ratio, 4),
            "median_delay_s": round(outcome.median_delay_s, 2),
            "mean_delay_s": round(outcome.mean_delay_s, 2),
        }
    rows["adaptive"]["fallback_count"] = outcomes["adaptive"].prebuffer_distribution.get(
        9.0, 0
    )
    return rows


def test_adaptive_prebuffer_tradeoff(run_once):
    rows = run_once(_run)
    print("\n" + format_table(rows, title="Ablation — adaptive vs fixed pre-buffer",
                              row_header="policy"))
    # Adaptive cuts delay versus the shipped 9 s default...
    assert rows["adaptive"]["median_delay_s"] < 0.7 * rows["fixed-9s"]["median_delay_s"]
    # ...without a stalling collapse (stays near the fixed-6s frontier).
    assert rows["adaptive"]["p90_stall"] <= rows["fixed-6s"]["p90_stall"] + 0.05
