"""Ablation: the RTMP spillover threshold (§4.1's ~100-viewer policy).

Sweeping the threshold exposes the policy triangle: a higher threshold
gives more viewers the low-latency interactive tier, but costs CPU
linearly per broadcast; the audience-size distribution decides how many
broadcasts even need the HLS tier.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.cdn.server_load import ServerLoadModel
from repro.workload.broadcast_model import BroadcastParamsModel

THRESHOLDS = [25, 50, 100, 200, 400]


def _sweep_thresholds() -> dict[int, dict[str, float]]:
    rng = np.random.default_rng(31)
    model = BroadcastParamsModel.for_periscope()
    audiences = np.array([model.sample_audience(rng) for _ in range(30_000)])
    load = ServerLoadModel()
    rows: dict[int, dict[str, float]] = {}
    for threshold in THRESHOLDS:
        served_rtmp = np.minimum(audiences, threshold)
        rows[threshold] = {
            "cpu_per_broadcast_%": load.rtmp_cpu(threshold),
            "broadcasts_fully_rtmp": float(np.mean(audiences <= threshold)),
            "views_on_low_latency": float(served_rtmp.sum() / np.maximum(audiences.sum(), 1)),
        }
    return rows


def test_spillover_threshold_tradeoff(run_once):
    rows = run_once(_sweep_thresholds)
    print("\n" + format_table(
        {str(k): v for k, v in rows.items()},
        title="Ablation — RTMP spillover threshold",
        row_header="threshold",
    ))
    cpu = [rows[t]["cpu_per_broadcast_%"] for t in THRESHOLDS]
    coverage = [rows[t]["broadcasts_fully_rtmp"] for t in THRESHOLDS]
    assert all(b > a for a, b in zip(cpu, cpu[1:]))
    assert all(b >= a for a, b in zip(coverage, coverage[1:]))
    # At the paper's threshold of 100, the vast majority of broadcasts fit
    # entirely in the RTMP tier (paper: 94.23% never reach HLS).
    assert rows[100]["broadcasts_fully_rtmp"] > 0.9
