"""Ablation: event-level server queueing vs offered load.

Complements the analytic growth projection: as concurrent streams push a
POP toward capacity, polling delay transitions from negligible to
unbounded — the dynamic mechanism behind the abstract's volume→latency
link, and the pressure that forces operators toward larger chunks.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.cdn.queueing import load_sweep

STREAM_COUNTS = [5, 15, 25, 30, 33, 36]


def test_queueing_hockey_stick(run_once):
    points = run_once(load_sweep, STREAM_COUNTS, duration_s=40.0)
    rows = {
        str(p.concurrent_streams): {
            "offered_load": round(p.offered_load, 2),
            "mean_poll_ms": round(p.mean_poll_delay_s * 1000, 1),
            "p99_poll_ms": round(p.p99_poll_delay_s * 1000, 1),
        }
        for p in points
    }
    print("\n" + format_table(rows, title="Ablation — POP queueing vs load",
                              row_header="streams"))
    delays = [p.mean_poll_delay_s for p in points]
    assert delays == sorted(delays)
    # Below ~50% load queueing is negligible; past capacity it explodes.
    below_half = [p for p in points if p.offered_load < 0.5]
    overloaded = [p for p in points if p.offered_load > 1.0]
    assert all(p.mean_poll_delay_s < 0.02 for p in below_half)
    assert all(p.mean_poll_delay_s > 0.5 for p in overloaded)
