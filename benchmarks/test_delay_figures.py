"""Benchmarks regenerating the CDN/delay figures (Figures 9–17)."""

from __future__ import annotations

import numpy as np
import pytest

import repro


def test_fig9_server_locations(run_once):
    """8 Wowza DCs, 23 Fastly POPs, 6/8 co-located, 7/8 same continent."""
    result = run_once(repro.run_experiment, "fig9")
    print("\n" + result.text)
    assert result.data["colocated_count"] == 6
    assert result.data["same_continent_count"] == 7


def test_fig11_delay_breakdown(run_once):
    """RTMP ~1.4 s vs HLS ~11.7 s, dominated by buffering/chunking/polling."""
    result = run_once(repro.run_experiment, "fig11")
    print("\n" + result.text)
    assert 0.8 < result.data["rtmp_total_s"] < 2.2
    assert 8.0 < result.data["hls_total_s"] < 15.0
    assert 5 < result.data["hls_rtmp_ratio"] < 14
    hls = result.data["hls"].components
    assert hls["buffering"] > hls["chunking"] > hls["wowza2fastly"]


def test_fig12_polling_delay_means(run_once):
    """Mean polling delay ~interval/2 at 2 s/4 s; 3 s resonance spreads."""
    result = run_once(repro.run_experiment, "fig12")
    print("\n" + result.text)
    means = result.data["mean_of_means"]
    assert means[2.0] == pytest.approx(1.0, abs=0.2)
    assert means[4.0] == pytest.approx(2.0, abs=0.3)
    assert result.data["spread_3s"] > 0.3


def test_fig13_polling_delay_variance(run_once):
    """Within-broadcast delay std tracks interval/sqrt(12) off resonance."""
    result = run_once(repro.run_experiment, "fig13")
    print("\n" + result.text)
    medians = result.data["median_std"]
    assert medians[2.0] == pytest.approx(0.577, abs=0.15)
    assert medians[4.0] == pytest.approx(1.155, abs=0.25)
    assert medians[3.0] < medians[4.0]


def test_fig14_server_cpu(run_once):
    """RTMP CPU far exceeds HLS and the gap widens with audience size."""
    result = run_once(repro.run_experiment, "fig14")
    print("\n" + result.text)
    curves = result.data["curves"]
    gaps = [
        r.cpu_percent - h.cpu_percent
        for r, h in zip(curves["rtmp"], curves["hls"])
    ]
    assert all(g > 0 for g in gaps)
    assert gaps[-1] > gaps[0]
    assert curves["rtmp"][-1].cpu_percent > 80


def test_fig15_wowza2fastly_geolocation(run_once):
    """Transfer delay grows with DC distance; >0.25 s co-location gap."""
    result = run_once(repro.run_experiment, "fig15")
    print("\n" + result.text)
    assert result.data["colocation_gap_s"] > 0.2
    medians = result.data["medians"]
    ordered = [medians[b] for b in medians]
    assert ordered == sorted(ordered)  # monotone in distance bucket


def test_fig16_rtmp_prebuffer(run_once):
    """RTMP is already smooth; a bursty-upload delay tail exists."""
    result = run_once(repro.run_experiment, "fig16")
    print("\n" + result.text)
    assert result.data["median_stall"][1.0] < 0.05
    delays = result.data["sweep"][1.0]["buffering_delay"]
    assert float(np.median(delays)) == pytest.approx(1.0, abs=0.5)
    assert float(np.max(delays)) > 2.0  # the bursty tail


def test_fig17_hls_prebuffer(run_once):
    """P=6 s matches P=9 s stalling at roughly half the buffering delay."""
    result = run_once(repro.run_experiment, "fig17")
    print("\n" + result.text)
    assert abs(result.data["median_stall_6s"] - result.data["median_stall_9s"]) < 0.02
    assert result.data["delay_saving_s"] > 2.0
    assert result.data["median_delay_6s"] < 0.65 * result.data["median_delay_9s"]


def test_fig8_architecture(run_once):
    """Three channels: fast HTTPS messages, push video tier, poll video tier."""
    result = run_once(repro.run_experiment, "fig8")
    print("\n" + result.text)
    assert result.data["facts"]["video ingest protocol"] == "rtmp"
    assert result.data["message_latency_s"] < 0.5  # messages beat HLS video by ~50x


def test_fig10_timestamp_diagram(run_once):
    """The numbered-timestamp journey: RTMP ~1.4 s vs HLS ~11 s."""
    result = run_once(repro.run_experiment, "fig10")
    print("\n" + result.text)
    assert 0.8 < result.data["rtmp_total_s"] < 2.2
    assert 7.0 < result.data["hls_total_s"] < 15.0
    hls = result.data["timeline"]["hls"]
    chunking = hls["7_chunk_ready"] - hls["6_wowza_arrival"]
    assert 2.5 < chunking < 3.5
