"""Benchmarks regenerating the §3 measurement figures (Figures 1–7)."""

from __future__ import annotations

import pytest

import repro


def test_fig1_daily_broadcasts(run_once):
    """Periscope >3x growth with weekend peaks; Meerkat halves."""
    result = run_once(repro.run_experiment, "fig1")
    print("\n" + result.text)
    assert result.data["periscope_growth"] > 3.0
    assert result.data["meerkat_growth"] < 0.8
    assert result.data["periscope_weekend_ratio"] > 1.0


def test_fig2_daily_active_users(run_once):
    """Viewers grow strongly; ~10:1 viewer:broadcaster ratio."""
    result = run_once(repro.run_experiment, "fig2")
    print("\n" + result.text)
    assert result.data["periscope_viewer_growth"] > 1.5
    assert 5 < result.data["median_viewer_broadcaster_ratio"] < 30
    assert result.data["meerkat_broadcaster_decline"] < 1.0


def test_fig3_broadcast_length_cdf(run_once):
    """85% of broadcasts under 10 minutes; Meerkat more skewed."""
    result = run_once(repro.run_experiment, "fig3")
    print("\n" + result.text)
    assert result.data["periscope_under_10min"] == pytest.approx(0.85, abs=0.04)
    assert result.data["meerkat_under_10min"] > 0.75
    # Skew: Meerkat's p99/median ratio exceeds Periscope's.
    p = result.data["periscope_cdf"]
    m = result.data["meerkat_cdf"]
    assert m.quantile(0.99) / m.median > p.quantile(0.99) / p.median


def test_fig4_viewers_per_broadcast_cdf(run_once):
    """Meerkat ~60% zero-viewer; Periscope nearly all viewed."""
    result = run_once(repro.run_experiment, "fig4")
    print("\n" + result.text)
    assert result.data["meerkat_zero_viewer_fraction"] == pytest.approx(0.60, abs=0.06)
    assert result.data["periscope_zero_viewer_fraction"] < 0.03
    assert result.data["periscope_some_hls_fraction"] == pytest.approx(0.0577, abs=0.03)


def test_fig5_engagement_cdf(run_once):
    """~10% of broadcasts exceed 100 comments / 1000 hearts; hearts
    unbounded while the comment cap flattens that tail."""
    result = run_once(repro.run_experiment, "fig5")
    print("\n" + result.text)
    assert result.data["periscope_over_1000_hearts"] == pytest.approx(0.10, abs=0.05)
    assert result.data["periscope_over_100_comments"] == pytest.approx(0.10, abs=0.05)
    assert result.data["hearts_comment_tail_ratio"] > 5


def test_fig6_per_user_activity(run_once):
    """Top 15% of viewers watch ~10x the median viewer."""
    result = run_once(repro.run_experiment, "fig6")
    print("\n" + result.text)
    assert 5 < result.data["periscope_top15_vs_median"] < 25


def test_fig7_followers_vs_viewers(run_once):
    """More followers -> more viewers (notification-driven audiences)."""
    result = run_once(repro.run_experiment, "fig7")
    print("\n" + result.text)
    assert result.data["rank_correlation"] > 0.1
    buckets = list(result.data["mean_viewers_by_bucket"].values())
    assert buckets[-1] > 1.5 * buckets[0]
