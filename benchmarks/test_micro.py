"""Micro-benchmarks of the core building blocks.

Unlike the figure benchmarks (one full pipeline run each), these measure
the throughput of the hot inner components with proper repetition, so
performance regressions in the substrates are visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.playback import PlaybackConfig, simulate_playback
from repro.core.polling import polling_delays
from repro.protocols.rtmp import RtmpPacket, parse_rtmp_packet
from repro.simulation.engine import Simulator
from repro.social.generation import FollowGraphConfig, generate_follow_graph


def test_event_engine_throughput(benchmark):
    """Schedule-and-run 10K events (the delay campaign runs millions)."""

    def run():
        simulator = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for i in range(10_000):
            simulator.schedule(i * 0.001, tick)
        simulator.run()
        return count

    assert benchmark(run) == 10_000


def test_playback_simulation_throughput(benchmark):
    """One 10-minute RTMP trace (15K frames) through the player."""
    rng = np.random.default_rng(0)
    arrivals = np.cumsum(np.abs(rng.normal(0.04, 0.01, size=15_000)))
    config = PlaybackConfig(prebuffer_s=1.0, unit_duration_s=0.04)

    result = benchmark(simulate_playback, arrivals, config)
    assert result.played.all()


def test_polling_simulation_throughput(benchmark):
    """Polling delays over a 1000-chunk availability trace."""
    rng = np.random.default_rng(0)
    availability = np.cumsum(3.0 + rng.normal(0, 0.1, size=1_000))

    delays = benchmark(polling_delays, availability, 2.8, 0.0)
    assert len(delays) == 1_000


def test_rtmp_parse_throughput(benchmark):
    """Encode+parse round trip (the tamperer does this per packet)."""
    wire = RtmpPacket(
        packet_type=2, token="tok-1234", sequence=42, timestamp=1.68,
        body=b"\x42" * 4096,
    ).encode()

    packet = benchmark(parse_rtmp_packet, wire)
    assert packet.sequence == 42


def test_follow_graph_generation_throughput(benchmark):
    """A 2000-node graph (~40K edges) with triadic closure."""

    def run():
        rng = np.random.default_rng(7)
        return generate_follow_graph(
            FollowGraphConfig(n_nodes=2_000, mean_out_degree=10.0), rng
        )

    graph = benchmark.pedantic(run, rounds=3, iterations=1)
    assert graph.node_count == 2_000


def test_global_list_sampling_throughput(benchmark):
    """The 50-of-N global-list sample under heavy live load."""
    from repro.platform.service import LivestreamService

    service = LivestreamService()
    service.users.register_many(5_000)
    for i in range(5_000):
        service.start_broadcast(1 + i, time=0.0)
    rng = np.random.default_rng(0)

    page = benchmark(service.global_list, 1.0, rng)
    assert len(page.broadcast_ids) == 50
