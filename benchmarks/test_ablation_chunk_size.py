"""Ablation: chunk size vs delay and server load (§5.2's central trade-off).

The paper argues Periscope's 3 s chunks sit deliberately between
low-latency (smaller chunks → less chunking delay, more requests) and
scalability (Apple VoD uses 10 s).  This ablation sweeps chunk duration
through the event-level pipeline and the server-load model and reports
both sides of the trade-off.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.report import format_table
from repro.cdn.server_load import ServerLoadModel
from repro.core.pipeline import DelayMeasurementCampaign
from repro.platform.apps import PERISCOPE_PROFILE

CHUNK_DURATIONS_S = [1.0, 2.0, 3.0, 6.0, 10.0]


def _sweep_chunk_sizes() -> dict[float, dict[str, float]]:
    rows: dict[float, dict[str, float]] = {}
    for chunk_s in CHUNK_DURATIONS_S:
        profile = dataclasses.replace(PERISCOPE_PROFILE, chunk_duration_s=chunk_s)
        campaign = DelayMeasurementCampaign(
            n_broadcasts=6, seed=21, profile=profile, max_duration_s=240.0
        )
        traces = campaign.run()
        chunking_delays = []
        for trace in traces:
            if trace.chunk_count < 2:
                continue
            # Chunking delay ~ time from a chunk's first frame to readiness.
            chunking_delays.append(float(np.median(np.diff(trace.chunk_ready))))
        # Server side: requests per viewer per second scale with polling,
        # but chunklist churn and per-chunk work scale with 1/chunk_s.
        load = ServerLoadModel(chunk_duration_s=chunk_s)
        rows[chunk_s] = {
            "chunking_delay_s": float(np.mean(chunking_delays)),
            "hls_cpu_at_500": load.hls_cpu(500),
            "chunks_per_min": 60.0 / chunk_s,
        }
    return rows


def test_chunk_size_tradeoff(run_once):
    rows = run_once(_sweep_chunk_sizes)
    print("\n" + format_table(
        {f"{k:g}s": v for k, v in rows.items()},
        title="Ablation — chunk size vs delay and load",
        row_header="chunk",
    ))
    delays = [rows[c]["chunking_delay_s"] for c in CHUNK_DURATIONS_S]
    cpu = [rows[c]["hls_cpu_at_500"] for c in CHUNK_DURATIONS_S]
    # Delay grows with chunk size; server cost shrinks.
    assert all(b > a for a, b in zip(delays, delays[1:]))
    assert all(b <= a for a, b in zip(cpu, cpu[1:]))
    # Periscope's 3 s sits between the extremes on both axes.
    assert delays[0] < rows[3.0]["chunking_delay_s"] < delays[-1]
