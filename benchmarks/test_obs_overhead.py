"""Overhead budget for the observability layer.

The contract that makes ``repro.obs`` safe-by-default: a Simulator built
without a registry (the ``NULL_REGISTRY`` default) must run the event-engine
micro-benchmark within ~10% of a bare, uninstrumented event loop — the seed
engine replicated below verbatim, minus cancellation bookkeeping and obs
hooks.  A second (non-budget) measurement reports what a live registry
costs, so future PRs can see the price of always-on metrics.
"""

from __future__ import annotations

import heapq
import itertools
import os
import time
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.simulation.engine import Simulator

#: Smoke mode (OBS_OVERHEAD_SMOKE=1): a fast CI-gate pass that still
#: exercises both code paths but with a smaller workload and a looser
#: budget (short runs are noisier).
_SMOKE = os.environ.get("OBS_OVERHEAD_SMOKE", "") not in ("", "0")
N_EVENTS = 5_000 if _SMOKE else 30_000
ROUNDS = 3 if _SMOKE else 9
#: Budget for the default (NullRegistry) path vs the bare loop.
MAX_OVERHEAD = 1.35 if _SMOKE else 1.10


@dataclass(order=True)
class _BareEvent:
    """The seed engine's Event, field-for-field."""

    time: float
    sequence: int
    action: object = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class _BareSimulator:
    """A faithful replica of the *seed* engine's scheduling/run loop — the
    uninstrumented baseline the overhead budget is measured against."""

    def __init__(self) -> None:
        self._heap: list[_BareEvent] = []
        self._counter = itertools.count()
        self.now = 0.0
        self._events_processed = 0
        self._running = False

    def schedule(self, delay: float, action) -> None:
        heapq.heappush(
            self._heap, _BareEvent(self.now + delay, next(self._counter), action)
        )

    def _peek_time(self):
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def _pop(self):
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def run(self, until=None, max_events=None) -> None:
        self._running = True
        processed_this_run = 0
        try:
            while True:
                if max_events is not None and processed_this_run >= max_events:
                    break
                next_time = self._peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._pop()
                if event is None:
                    break
                self.now = event.time
                event.action()
                self._events_processed += 1
                processed_this_run += 1
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False


def _workload(simulator) -> int:
    count = 0

    def tick():
        nonlocal count
        count += 1

    for i in range(N_EVENTS):
        simulator.schedule(i * 0.001, tick)
    simulator.run()
    return count


def _best_of(make_simulator) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        simulator = make_simulator()
        started = time.perf_counter()
        assert _workload(simulator) == N_EVENTS
        best = min(best, time.perf_counter() - started)
    return best


def test_null_registry_overhead_within_budget():
    """The default path costs at most ~10% over a bare event loop."""
    # Warm both paths once so allocator/JIT-ish effects land outside timing.
    _workload(_BareSimulator())
    _workload(Simulator())

    bare = _best_of(_BareSimulator)
    instrumented = _best_of(Simulator)
    ratio = instrumented / bare
    print(f"\nnull-registry overhead: bare={bare * 1e3:.1f}ms "
          f"default={instrumented * 1e3:.1f}ms ratio={ratio:.3f}")
    assert ratio <= MAX_OVERHEAD, (
        f"NullRegistry path is {ratio:.2f}x the bare loop (budget {MAX_OVERHEAD}x)"
    )


def test_live_registry_cost_is_bounded(benchmark):
    """Informational: a live registry observes every event (span counts +
    inter-event gap histograms), so it costs real time — but must stay
    within a small constant factor, not blow up."""

    def run():
        registry = MetricsRegistry()
        simulator = Simulator(metrics=registry)
        result = _workload(simulator)
        return result, registry

    result, registry = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result == N_EVENTS
    snap = registry.snapshot()
    assert snap["counters"]["engine.events_processed"]["value"] == N_EVENTS
    gap = snap["histograms"]["engine.span.unlabelled.gap_s"]
    assert gap["count"] == N_EVENTS - 1

    bare = _best_of(_BareSimulator)
    live = _best_of(lambda: Simulator(metrics=MetricsRegistry()))
    print(f"live-registry overhead: {live / bare:.2f}x over bare")
    assert live / bare < 10.0
