"""Ablation: the growth projection and the interactivity cost of delay.

Backs the paper's framing question — "can personalized livestreams
continue to scale, while allowing their audiences to experience desired
levels of interactivity?" — with two quantified curves:

* as broadcast volume grows on a fixed fleet, the feasible chunk size and
  hence the HLS delay ratchet upward (abstract / §5.2),
* as delay grows, heart feedback becomes misattributed and poll
  participation collapses (§1's motivation).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core.interactivity import InteractivityStudy
from repro.core.projection import GrowthProjection

STREAM_GROWTH = [2_000, 10_000, 20_000, 30_000, 38_000]


def _project_and_score() -> dict[str, dict[str, float]]:
    projection = GrowthProjection(fleet_servers=500, viewers_per_stream=30.0)
    study = InteractivityStudy(seed=31, samples_per_tier=1500)
    rows: dict[str, dict[str, float]] = {}
    for point in projection.sweep(STREAM_GROWTH):
        feedback = study.evaluate_tier("hls", point.projected_hls_delay_s)
        rows[f"{point.concurrent_streams}"] = {
            "chunk_s": point.chunk_duration_s,
            "hls_delay_s": round(point.projected_hls_delay_s, 2),
            "utilization": round(point.fleet_utilization, 2),
            "misattribution": round(feedback.misattribution_rate, 3),
            "poll_participation": round(feedback.poll_participation, 3),
        }
    return rows


def test_growth_vs_interactivity(run_once):
    rows = run_once(_project_and_score)
    print("\n" + format_table(
        rows,
        title="Ablation — broadcast volume vs delay vs interactivity",
        row_header="streams",
    ))
    delays = [rows[str(c)]["hls_delay_s"] for c in STREAM_GROWTH]
    misattribution = [rows[str(c)]["misattribution"] for c in STREAM_GROWTH]
    participation = [rows[str(c)]["poll_participation"] for c in STREAM_GROWTH]
    # Volume drives delay (the abstract's "strong link")...
    assert delays == sorted(delays)
    assert delays[-1] > 2 * delays[0]
    # ...and delay destroys interactivity (§1's motivation).
    assert misattribution == sorted(misattribution)
    assert participation == sorted(participation, reverse=True)
    assert participation[0] > 0.8
    assert participation[-1] < 0.6
