"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports.  Experiments are full pipelines
(seconds each), so every benchmark runs `pedantic` with one round — the
timing situates the cost of regenerating each result, and the assertions
inside each benchmark validate its headline shape claim.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
