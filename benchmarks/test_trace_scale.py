"""Trace-generation scaling benchmark: serial vs sharded-parallel.

Emits ``BENCH_trace.json`` at the repo root — broadcasts/sec for the
shardable record-generation stage at several scales, serial
(``workers=1``) vs parallel (4 workers) — to seed the perf trajectory
toward the paper's 19.6M-broadcast volume.  The shared precompute is
built once per scale and split into two reported phases: the follow
graph (``graph_seconds``) and the population pools / follower-count
table (the rest of ``context_seconds``, which includes
``graph_seconds``); it is identical work for both modes.

Modes:

* default: scales 0.001 / 0.01 / 0.05 (several minutes);
* ``BENCH_TRACE_SMOKE=1``: scale 0.001 only — the ``scripts/check.sh
  bench`` gate, which mainly validates the emitted JSON schema.

The recorded speedup is only meaningful relative to ``cpu_count`` (also
recorded): on a single-core runner the parallel mode measures pure
process-pool overhead; on a 4-core runner the record stage parallelizes
near-linearly.  At scales below the serial-fallback floor the "parallel"
mode deliberately collapses to the in-process walk
(``parallel_workers_used`` records what actually ran), so tiny scales
measure the fallback's parity with serial rather than pool overhead.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.crawler.storage import dataset_to_bytes
from repro.parallel import generate_dataset, plan_shards
from repro.parallel.generate import effective_workers
from repro.workload.trace import TraceConfig, build_follow_graph, build_trace_context

BENCH_SCHEMA_VERSION = 4
BENCH_WORKERS = 4
FULL_SCALES = (0.001, 0.01, 0.05)
SMOKE_SCALES = (0.001,)
SEED = 2016

REPO_ROOT = Path(__file__).resolve().parents[1]


def bench_output_path() -> Path:
    return Path(os.environ.get("BENCH_TRACE_OUT", REPO_ROOT / "BENCH_trace.json"))


REQUIRED_TOP_KEYS = {
    "benchmark",
    "schema_version",
    "cpu_count",
    "workers",
    "transport",
    "smoke",
    "results",
}
REQUIRED_RESULT_KEYS = {
    "scale",
    "broadcasts",
    "graph_seconds",
    "context_seconds",
    "serial_seconds",
    "parallel_seconds",
    "parallel_workers_used",
    "serial_broadcasts_per_sec",
    "parallel_broadcasts_per_sec",
    "speedup",
    "merge_seconds",
    "peak_rss_mb",
    "largest_shard_mb",
}

#: The streamed merge runs in a fresh child process so its ``ru_maxrss``
#: high-water mark measures the *merge*, not whatever generation peaked
#: at earlier in this process.  A plain string (not a function) keeps the
#: child's wall-clock reads out of this module's AST for the linter —
#: and the child is genuinely standalone: shard files in, one JSON line
#: out.
_MERGE_CHILD = """\
import json, sys, time
from pathlib import Path
from repro.obs import peak_rss_mb
from repro.parallel.merge import stream_merge_shards
from repro.workload.trace import TraceConfig

scale, run_dir, out, seed = (
    float(sys.argv[1]), Path(sys.argv[2]), Path(sys.argv[3]), int(sys.argv[4])
)
config = TraceConfig.periscope(scale=scale, seed=seed)
shards = sorted(run_dir.glob("shard-*.arrays"))
started = time.perf_counter()
dataset = stream_merge_shards(config, shards, out)
print(json.dumps({
    "merge_seconds": time.perf_counter() - started,
    "peak_rss_mb": peak_rss_mb(),
    "broadcasts": len(dataset),
}))
"""


def _measure_streamed_merge(scale: float, run_dir: str) -> dict:
    """Stream-merge the run dir's shard files in a fresh subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, (str(REPO_ROOT / "src"), env.get("PYTHONPATH")))
    )
    out = Path(run_dir) / "bench-merged.cols"
    child = subprocess.run(
        [sys.executable, "-c", _MERGE_CHILD, str(scale), run_dir, str(out), str(SEED)],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(child.stdout)


def validate_bench_payload(payload: dict) -> None:
    """Schema check for BENCH_trace.json (used by ``check.sh bench``)."""
    missing = REQUIRED_TOP_KEYS - payload.keys()
    if missing:
        raise ValueError(f"BENCH_trace.json missing keys: {sorted(missing)}")
    if payload["benchmark"] != "trace_scale":
        raise ValueError(f"unexpected benchmark id {payload['benchmark']!r}")
    if payload["schema_version"] != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"stale BENCH_trace.json schema {payload['schema_version']!r} "
            f"(expected {BENCH_SCHEMA_VERSION}); regenerate the baseline"
        )
    if not payload["results"]:
        raise ValueError("BENCH_trace.json has no results")
    for row in payload["results"]:
        row_missing = REQUIRED_RESULT_KEYS - row.keys()
        if row_missing:
            raise ValueError(f"result row missing keys: {sorted(row_missing)}")
        if row["broadcasts"] <= 0 or row["serial_seconds"] <= 0 or row["parallel_seconds"] <= 0:
            raise ValueError(f"non-positive measurements in row {row}")
        if row["graph_seconds"] < 0 or row["context_seconds"] < row["graph_seconds"]:
            raise ValueError(f"inconsistent phase timings in row {row}")
        if row["merge_seconds"] <= 0 or row["largest_shard_mb"] <= 0:
            raise ValueError(f"non-positive streamed-merge measurements in row {row}")
        if row["peak_rss_mb"] is not None and row["peak_rss_mb"] <= 0:
            raise ValueError(f"non-positive peak_rss_mb in row {row}")


def _measure(scale: float) -> dict:
    serial_config = TraceConfig.periscope(scale=scale, seed=SEED, workers=1)
    parallel_config = TraceConfig.periscope(scale=scale, seed=SEED, workers=BENCH_WORKERS)

    started = time.perf_counter()
    graph = build_follow_graph(serial_config)
    graph_seconds = time.perf_counter() - started

    started = time.perf_counter()
    context, _graph = build_trace_context(serial_config, graph=graph)
    # context_seconds is total precompute (graph + pools), so it stays
    # comparable with pre-schema-2 baselines.
    context_seconds = graph_seconds + (time.perf_counter() - started)

    started = time.perf_counter()
    serial = generate_dataset(serial_config, context)
    serial_seconds = time.perf_counter() - started

    # Same precompute is valid for the parallel config: the context only
    # depends on generation inputs, never on the schedule knobs.
    parallel_context = dataclasses.replace(context, config=parallel_config)
    n_shards = len(
        plan_shards(
            parallel_config.growth.days,
            shards=parallel_config.shards,
            workers=parallel_config.workers,
        )
    )
    workers_used = effective_workers(parallel_config, n_shards)
    # The parallel mode runs with shard checkpointing enabled (a run dir
    # in a scratch directory), so the recorded speedup — and the bench
    # gate's parallel >= serial floor — prices in the per-shard manifest
    # flush and checksum footer.  Checkpointing must be overhead-neutral.
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="bench-trace-run-") as run_dir:
        parallel = generate_dataset(
            parallel_config, parallel_context, run_dir=run_dir
        )
        parallel_seconds = time.perf_counter() - started

        # Streamed-merge figures, while the shard files still exist: the
        # largest shard on disk (the RSS bound's yardstick) and a fresh
        # child process whose ru_maxrss covers *only* the merge.
        shard_files = sorted(Path(run_dir).glob("shard-*.arrays"))
        largest_shard_mb = max(p.stat().st_size for p in shard_files) / (1024.0 * 1024.0)
        merge_stats = _measure_streamed_merge(scale, run_dir)

    # The guarantee the speedup must not cost: identical output.
    assert dataset_to_bytes(serial) == dataset_to_bytes(parallel)
    assert merge_stats["broadcasts"] == len(serial)

    return {
        "scale": scale,
        "broadcasts": len(serial),
        "graph_seconds": round(graph_seconds, 3),
        "context_seconds": round(context_seconds, 3),
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "parallel_workers_used": workers_used,
        "parallel_checkpointed": True,
        "serial_broadcasts_per_sec": round(len(serial) / serial_seconds, 1),
        "parallel_broadcasts_per_sec": round(len(parallel) / parallel_seconds, 1),
        "speedup": round(serial_seconds / parallel_seconds, 2),
        "merge_seconds": round(merge_stats["merge_seconds"], 3),
        "peak_rss_mb": (
            round(merge_stats["peak_rss_mb"], 1)
            if merge_stats["peak_rss_mb"] is not None
            else None
        ),
        "largest_shard_mb": round(largest_shard_mb, 2),
    }


def test_trace_scale_benchmark():
    smoke = bool(os.environ.get("BENCH_TRACE_SMOKE"))
    scales = SMOKE_SCALES if smoke else FULL_SCALES

    payload = {
        "benchmark": "trace_scale",
        "schema_version": BENCH_SCHEMA_VERSION,
        "cpu_count": os.cpu_count() or 1,
        "workers": BENCH_WORKERS,
        "transport": os.environ.get("REPRO_TRACE_TRANSPORT", "mmap"),
        "smoke": smoke,
        "results": [_measure(scale) for scale in scales],
    }
    validate_bench_payload(payload)

    out_path = bench_output_path()
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    for row in payload["results"]:
        rss = row["peak_rss_mb"]
        print(
            f"scale {row['scale']:g}: {row['broadcasts']} broadcasts, "
            f"serial {row['serial_broadcasts_per_sec']}/s, "
            f"parallel {row['parallel_broadcasts_per_sec']}/s "
            f"(speedup {row['speedup']}x on {payload['cpu_count']} core(s)); "
            f"streamed merge {row['merge_seconds']}s, peak RSS "
            f"{'n/a' if rss is None else f'{rss} MB'} "
            f"(largest shard {row['largest_shard_mb']} MB)"
        )
