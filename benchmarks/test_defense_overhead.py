"""Ablation: integrity-defense overhead (§7.2).

Measures real signing work (HMAC-SHA256 over frame payloads) for the three
proposed strategies — sign every frame, selective signing, hash-chained
windows — and compares against the analytic RTMPS (full TLS) cost model.
This quantifies the paper's claim that the signature defense is
"lightweight" relative to encrypting the stream.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.protocols.frames import VideoFrame
from repro.security.signing import (
    ChainedSigner,
    SelectiveSigner,
    SigningCostModel,
    StreamKeyExchange,
    StreamSigner,
)

ONE_MINUTE_FRAMES = 25 * 60


def _frames(count: int) -> list[VideoFrame]:
    payload = b"\x42" * 4096  # ~4 KB per frame at Periscope-era bitrates
    return [
        VideoFrame(sequence=i, capture_time=i * 0.04, payload=payload)
        for i in range(count)
    ]


def _sign_all(frames, signer) -> int:
    for frame in frames:
        signer.sign_frame(frame)
    return signer.frames_signed


def test_full_signing_throughput(benchmark):
    """Signing every frame of one broadcast-minute."""
    frames = _frames(ONE_MINUTE_FRAMES)
    exchange = StreamKeyExchange()
    key = exchange.register("bench-full")

    def run():
        return _sign_all(frames, StreamSigner("bench-full", key))

    signed = benchmark(run)
    assert signed == ONE_MINUTE_FRAMES


def test_selective_signing_throughput(benchmark):
    """Signing every 25th frame — ~1/25 the signature work."""
    frames = _frames(ONE_MINUTE_FRAMES)
    exchange = StreamKeyExchange()
    key = exchange.register("bench-sel")

    def run():
        return _sign_all(frames, SelectiveSigner("bench-sel", key, stride=25))

    signed = benchmark(run)
    assert signed == ONE_MINUTE_FRAMES // 25


def test_chained_signing_throughput(benchmark):
    """Hashing every frame, signing once per 25-frame window."""
    frames = _frames(ONE_MINUTE_FRAMES)
    exchange = StreamKeyExchange()
    key = exchange.register("bench-chain")

    def run():
        return _sign_all(frames, ChainedSigner("bench-chain", key, window=25))

    signed = benchmark(run)
    assert signed == ONE_MINUTE_FRAMES // 25


def test_strategy_cost_comparison(run_once):
    """The analytic ordering: selective < chained < full < RTMPS."""
    model = SigningCostModel()

    def compute():
        return {
            "selective (1/25)": {"cost": model.selective_cost(ONE_MINUTE_FRAMES, 25)},
            "chained (25)": {"cost": model.chained_cost(ONE_MINUTE_FRAMES, 25)},
            "full signing": {"cost": model.full_signing_cost(ONE_MINUTE_FRAMES)},
            "RTMPS (TLS)": {"cost": model.rtmps_cost(ONE_MINUTE_FRAMES)},
        }

    rows = run_once(compute)
    print("\n" + format_table(rows, title="Ablation — defense cost per minute",
                              row_header="strategy"))
    costs = [rows[k]["cost"] for k in
             ("selective (1/25)", "chained (25)", "full signing", "RTMPS (TLS)")]
    assert costs == sorted(costs)
    # Even full signing undercuts TLS — the "lightweight" claim.
    assert rows["full signing"]["cost"] < rows["RTMPS (TLS)"]["cost"]
