"""Ablation: overlay multicast vs RTMP vs HLS (§8's proposal).

The paper argues a hierarchy of geographically clustered forwarding
servers would deliver interactive latency without per-viewer origin state
or polling.  This benchmark runs all three architectures on the same
broadcast and audience and checks the claimed dominance pattern.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.overlay.comparison import compare_architectures


def test_overlay_vs_production_tiers(run_once):
    results = run_once(compare_architectures, n_viewers=120, duration_s=15.0, seed=8)
    rows = {name: result.as_row() for name, result in results.items()}
    print("\n" + format_table(rows, title="Ablation — delivery architectures",
                              row_header="architecture"))
    rtmp, hls, overlay = results["rtmp"], results["hls"], results["overlay"]

    # HLS trades an order of magnitude of delay for origin relief.
    assert hls.mean_delay_s > 5 * rtmp.mean_delay_s
    assert hls.origin_egress_copies < rtmp.origin_egress_copies

    # The overlay keeps RTMP-class latency...
    assert overlay.mean_delay_s < 2.5 * rtmp.mean_delay_s
    assert overlay.mean_delay_s < hls.mean_delay_s / 4
    # ...with the least origin load of all three...
    assert overlay.origin_egress_copies <= hls.origin_egress_copies
    assert overlay.origin_state < rtmp.origin_state / 10
    # ...and bounded fan-out everywhere (no server holds the full audience).
    assert overlay.max_server_state < rtmp.max_server_state
