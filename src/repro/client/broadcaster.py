"""The broadcaster upload client.

Captures 40 ms frames and uploads them to the assigned Wowza ingest server
over a persistent RTMP connection.  Each frame's capture timestamp is
embedded in the stream metadata (keyframes carry it in the real app; we
stamp every frame) — this is timestamp ① / ⑤ of the delay breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.cdn.wowza import WowzaIngest
from repro.client.network import LastMileLink
from repro.protocols.frames import VideoFrame
from repro.simulation.engine import Simulator


@dataclass
class BroadcasterClient:
    """Streams one broadcast into the CDN.

    ``start`` schedules every frame upfront: frame ``i`` is captured at
    ``start_time + i * frame_interval``, spends the sampled uplink delay on
    the wire, and lands in :meth:`WowzaIngest.receive_frame`.
    """

    broadcast_id: int
    token: str
    simulator: Simulator
    wowza: WowzaIngest
    uplink: LastMileLink
    frame_interval_s: float = 0.040
    keyframe_interval: int = 30
    payload_bytes: int = 0  # >0 materializes per-frame payloads
    frames_sent: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.frame_interval_s <= 0:
            raise ValueError("frame interval must be positive")
        if self.keyframe_interval <= 0:
            raise ValueError("keyframe interval must be positive")

    def start(self, start_time: float, duration_s: float) -> int:
        """Schedule the whole broadcast; returns the number of frames."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        frame_count = int(duration_s / self.frame_interval_s)
        self.wowza.start_broadcast(self.broadcast_id, self.token)
        for sequence in range(frame_count):
            capture_time = start_time + sequence * self.frame_interval_s
            frame = self._make_frame(sequence, capture_time)
            arrival = self.uplink.send(capture_time, size_kb=self.payload_bytes / 1024.0)
            self.simulator.schedule_at(
                max(arrival, self.simulator.now),
                _FrameDelivery(self.wowza, self.broadcast_id, frame),
                label=f"upload:{self.broadcast_id}:{sequence}",
            )
        end_time = start_time + frame_count * self.frame_interval_s
        # End the broadcast only after the last frame has arrived.
        last_arrival = self.uplink.send(end_time)
        self.simulator.schedule_at(
            max(last_arrival, self.simulator.now),
            lambda: self.wowza.end_broadcast(self.broadcast_id),
            label=f"end:{self.broadcast_id}",
        )
        self.frames_sent = frame_count
        return frame_count

    def _make_frame(self, sequence: int, capture_time: float) -> VideoFrame:
        payload = (
            bytes([sequence % 251]) * self.payload_bytes if self.payload_bytes else b""
        )
        return VideoFrame(
            sequence=sequence,
            capture_time=capture_time,
            duration_s=self.frame_interval_s,
            is_keyframe=(sequence % self.keyframe_interval == 0),
            payload=payload,
        )


class _FrameDelivery:
    """Deliver one frame to the ingest server (named for debuggability)."""

    def __init__(self, wowza: WowzaIngest, broadcast_id: int, frame: VideoFrame) -> None:
        self._wowza = wowza
        self._broadcast_id = broadcast_id
        self._frame = frame

    def __call__(self) -> None:
        self._wowza.receive_frame(self._broadcast_id, self._frame)
