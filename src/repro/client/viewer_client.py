"""Viewer clients: the RTMP push tier and the HLS poll tier.

Both clients record per-unit arrival timestamps (③ for RTMP frames, ⑫/⑮
for HLS chunks); playback itself is evaluated offline by
:mod:`repro.core.playback` over these arrival traces, mirroring the
paper's trace-driven methodology (§6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.cdn.fastly import EdgeUnavailable, FastlyEdge
from repro.cdn.wowza import WowzaIngest
from repro.client.network import LastMileLink
from repro.faults.resilience import RetryPolicy
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.protocols.frames import Chunk, VideoFrame
from repro.protocols.hls import Chunklist
from repro.simulation.engine import Simulator


@dataclass
class RtmpViewerClient:
    """A viewer on the low-latency push tier.

    Subscribes to the broadcaster's Wowza server; every ingested frame is
    pushed immediately and crosses the viewer's last-mile link.
    """

    viewer_id: int
    broadcast_id: int
    simulator: Simulator
    downlink: LastMileLink
    metrics: MetricsRegistry = field(default=NULL_REGISTRY, repr=False)
    frame_arrivals: dict[int, float] = field(default_factory=dict)
    frame_captures: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._m_frames = self.metrics.counter(
            "client.rtmp.frames_received", help="frames delivered to RTMP viewers"
        )

    def attach(self, wowza: WowzaIngest) -> None:
        wowza.subscribe_rtmp(self.broadcast_id, self)

    def push_frame(self, broadcast_id: int, frame: VideoFrame, pushed_at: float) -> None:
        """RtmpSubscriber protocol: server pushed a frame at ``pushed_at``."""
        if broadcast_id != self.broadcast_id:
            raise ValueError(f"frame for wrong broadcast {broadcast_id}")
        arrival = self.downlink.send(pushed_at)
        self.simulator.schedule_at(
            max(arrival, self.simulator.now),
            _RecordFrame(self, frame),
            label=f"rtmp-dl:{self.viewer_id}:{frame.sequence}",
        )

    def _record(self, frame: VideoFrame, time: float) -> None:
        self.frame_arrivals[frame.sequence] = time
        self.frame_captures[frame.sequence] = frame.capture_time
        self._m_frames.inc()

    def arrival_trace(self) -> np.ndarray:
        """Frame arrival times in sequence order."""
        return np.array([self.frame_arrivals[s] for s in sorted(self.frame_arrivals)])

    def end_to_end_delays(self) -> np.ndarray:
        """Per-frame network delay ③ − ① (buffering excluded)."""
        sequences = sorted(self.frame_arrivals)
        return np.array(
            [self.frame_arrivals[s] - self.frame_captures[s] for s in sequences]
        )


class _RecordFrame:
    def __init__(self, client: RtmpViewerClient, frame: VideoFrame) -> None:
        self._client = client
        self._frame = frame

    def __call__(self) -> None:
        self._client._record(self._frame, self._client.simulator.now)


@dataclass
class HlsViewerClient:
    """A viewer on the scalable poll tier.

    Polls its edge POP's chunklist every ``poll_interval_s`` (Periscope:
    uniform in 2–2.8 s), downloads chunks it has not seen, and records
    their arrival times.

    Resilience (both opt-in; the defaults reproduce the naive seed client):

    * ``retry_policy`` — when a poll fails with
      :class:`~repro.cdn.fastly.EdgeUnavailable` (or times out, if the
      policy sets a finite ``attempt_timeout_s``), retry with backoff
      instead of waiting a full poll interval.
    * ``failover_edges`` — once retries against the current POP are
      exhausted, re-resolve to the next candidate POP (use
      :meth:`repro.cdn.assignment.CdnAssignment.ranked_fastly_for_viewer`)
      and resume the chunklist from the last downloaded sequence.  Every
      candidate must have the broadcast attached.

    A naive client (no policy) swallows the failure and keeps its normal
    cadence against the same POP — it tolerates faults but never adapts.
    """

    viewer_id: int
    broadcast_id: int
    simulator: Simulator
    edge: FastlyEdge
    downlink: LastMileLink
    poll_interval_s: float = 2.4
    chunk_kb: float = 300.0
    stop_after: float = float("inf")
    retry_policy: Optional[RetryPolicy] = None
    failover_edges: Sequence[FastlyEdge] = ()
    metrics: MetricsRegistry = field(default=NULL_REGISTRY, repr=False)
    chunk_arrivals: dict[int, float] = field(default_factory=dict)
    chunk_captures: dict[int, float] = field(default_factory=dict)  # ⑤ per chunk
    chunk_response_times: dict[int, float] = field(default_factory=dict)  # ⑭ per chunk
    poll_times: list[float] = field(default_factory=list)
    poll_failures: int = field(default=0, init=False)
    retries: int = field(default=0, init=False)
    failovers: int = field(default=0, init=False)
    _last_downloaded: Optional[int] = field(default=None, init=False)
    _stopped: bool = field(default=False, init=False)
    _loop_epoch: int = field(default=0, init=False)
    _attempt: int = field(default=0, init=False)
    _outage_started: Optional[float] = field(default=None, init=False)
    _ring_index: int = field(default=0, init=False)
    _poll_seq: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.poll_interval_s <= 0:
            raise ValueError("poll interval must be positive")
        # Failover ring: the primary POP first, then the other candidates
        # in the order given (nearest-first when built from the ranked
        # assignment).
        ring = [self.edge]
        for candidate in self.failover_edges:
            if candidate is not self.edge:
                ring.append(candidate)
        self._ring = ring
        self._outstanding: set[int] = set()
        obs = self.metrics
        self._m_polls = obs.counter("client.hls.polls", help="chunklist polls sent")
        self._m_empty = obs.counter(
            "client.hls.empty_polls", help="polls that surfaced no new chunk (stall signal)"
        )
        self._m_chunks = obs.counter("client.hls.chunks_downloaded")
        self._m_poll_failures = obs.counter(
            "client.hls.poll_failures", help="polls that failed (POP down or timed out)"
        )
        self._m_retries = obs.counter("client.hls.retries", help="backoff retries scheduled")
        self._m_failovers = obs.counter(
            "client.hls.failovers", help="re-resolutions to another POP"
        )
        self._m_timeouts = obs.counter(
            "client.hls.poll_timeouts", help="poll responses abandoned after attempt_timeout_s"
        )
        self._h_recovery = obs.histogram(
            "resilience.recovery_time_s",
            help="outage start to first successful response",
        )

    def start_polling(self, first_poll_at: float) -> None:
        self._schedule_poll_at(first_poll_at)

    def stop(self) -> None:
        self._stopped = True

    # -- the poll loop -----------------------------------------------------
    #
    # Exactly one pending tick drives the loop.  Every (re)schedule bumps
    # ``_loop_epoch``, and stale ticks return immediately, so the retry and
    # watchdog paths can reschedule aggressively without ever forking the
    # loop into two concurrent cadences.

    def _schedule_poll_at(self, time: float) -> None:
        self._loop_epoch += 1
        self.simulator.schedule_at(
            max(time, self.simulator.now),
            _PollTick(self, self._loop_epoch),
            label=f"hls-poll:{self.viewer_id}",
        )

    def _schedule_poll(self, delay: float) -> None:
        self._schedule_poll_at(self.simulator.now + delay)

    def _poll(self, epoch: int) -> None:
        if epoch != self._loop_epoch:
            return  # superseded by a retry/failover reschedule
        if self._stopped or self.simulator.now > self.stop_after:
            return
        now = self.simulator.now
        self.poll_times.append(now)
        self._m_polls.inc()
        policy = self.retry_policy
        seq: Optional[int] = None
        if policy is not None and math.isfinite(policy.attempt_timeout_s):
            self._poll_seq += 1
            seq = self._poll_seq
            self._outstanding.add(seq)
        callback = self._on_chunklist if seq is None else _TrackedResponse(self, seq)
        try:
            self.edge.poll(self.broadcast_id, callback)
        except EdgeUnavailable:
            if seq is not None:
                self._outstanding.discard(seq)
            self.poll_failures += 1
            self._m_poll_failures.inc()
            if self._outage_started is None:
                self._outage_started = now
            self._handle_poll_failure()
            return
        if seq is not None and seq in self._outstanding:
            # The response is deferred (queued or waiting on an origin
            # pull): arm a watchdog so a hung attempt cannot stall us.
            self.simulator.schedule(
                policy.attempt_timeout_s,
                _PollWatchdog(self, seq),
                label=f"hls-watchdog:{self.viewer_id}",
            )
        self._schedule_poll(self.poll_interval_s)

    def _handle_poll_failure(self) -> None:
        policy = self.retry_policy
        if policy is None:
            # Naive client: skip this cycle, keep the cadence.
            self._schedule_poll(self.poll_interval_s)
            return
        delay = policy.next_delay(
            self._attempt, elapsed_s=self.simulator.now - self._outage_started
        )
        if delay is not None:
            self._attempt += 1
            self.retries += 1
            self._m_retries.inc()
            self._schedule_poll(delay)
            return
        self._failover()

    def _failover(self) -> None:
        """Re-resolve to the next candidate POP and resume from the last
        downloaded chunk (``_last_downloaded`` carries across edges)."""
        if len(self._ring) > 1:
            self._ring_index = (self._ring_index + 1) % len(self._ring)
            self.edge = self._ring[self._ring_index]
            self.failovers += 1
            self._m_failovers.inc()
        self._attempt = 0
        # Probe the new POP after the base backoff, not a full interval.
        assert self.retry_policy is not None
        self._schedule_poll(self.retry_policy.base_delay_s)

    def _on_poll_timeout(self, seq: int) -> None:
        if seq not in self._outstanding:
            return  # the response arrived in time
        self._outstanding.discard(seq)
        self.poll_failures += 1
        self._m_poll_failures.inc()
        self._m_timeouts.inc()
        if self._outage_started is None:
            self._outage_started = self.simulator.now
        self._handle_poll_failure()

    def _on_chunklist(
        self, chunklist: Chunklist, response_time: float, seq: Optional[int] = None
    ) -> None:
        if seq is not None:
            self._outstanding.discard(seq)
        if self._stopped:
            return
        if self._outage_started is not None:
            self._h_recovery.observe(response_time - self._outage_started)
            self._outage_started = None
        self._attempt = 0
        fetched = 0
        for entry in chunklist.entries_after(self._last_downloaded):
            try:
                chunk = self.edge.chunk_payload(self.broadcast_id, entry.chunk_index)
            except KeyError:
                # A late response from a POP we already failed away from;
                # the current POP will serve these on the next poll.
                break
            self._last_downloaded = entry.chunk_index
            self.chunk_response_times[entry.chunk_index] = response_time
            arrival = self.downlink.send(response_time, size_kb=self.chunk_kb)
            self.simulator.schedule_at(
                max(arrival, self.simulator.now),
                _RecordChunk(self, chunk),
                label=f"hls-dl:{self.viewer_id}:{entry.chunk_index}",
            )
            fetched += 1
        if fetched:
            self._m_chunks.inc(fetched)
        else:
            self._m_empty.inc()

    def _record(self, chunk: Chunk, time: float) -> None:
        self.chunk_arrivals[chunk.index] = time
        self.chunk_captures[chunk.index] = chunk.first_capture_time

    def arrival_trace(self) -> np.ndarray:
        """Chunk arrival times in index order."""
        return np.array([self.chunk_arrivals[i] for i in sorted(self.chunk_arrivals)])

    def end_to_end_delays(self) -> np.ndarray:
        """Per-chunk network delay ⑮ − ⑤ (buffering excluded)."""
        indices = sorted(self.chunk_arrivals)
        return np.array([self.chunk_arrivals[i] - self.chunk_captures[i] for i in indices])


class _RecordChunk:
    def __init__(self, client: HlsViewerClient, chunk: Chunk) -> None:
        self._client = client
        self._chunk = chunk

    def __call__(self) -> None:
        self._client._record(self._chunk, self._client.simulator.now)


class _PollTick:
    """One scheduled iteration of a viewer's poll loop."""

    def __init__(self, client: HlsViewerClient, epoch: int) -> None:
        self._client = client
        self._epoch = epoch

    def __call__(self) -> None:
        self._client._poll(self._epoch)


class _TrackedResponse:
    """A poll callback that clears its watchdog on arrival."""

    def __init__(self, client: HlsViewerClient, seq: int) -> None:
        self._client = client
        self._seq = seq

    def __call__(self, chunklist: Chunklist, response_time: float) -> None:
        self._client._on_chunklist(chunklist, response_time, seq=self._seq)


class _PollWatchdog:
    """Fires if a poll response has not arrived within the attempt timeout."""

    def __init__(self, client: HlsViewerClient, seq: int) -> None:
        self._client = client
        self._seq = seq

    def __call__(self) -> None:
        self._client._on_poll_timeout(self._seq)
