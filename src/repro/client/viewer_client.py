"""Viewer clients: the RTMP push tier and the HLS poll tier.

Both clients record per-unit arrival timestamps (③ for RTMP frames, ⑫/⑮
for HLS chunks); playback itself is evaluated offline by
:mod:`repro.core.playback` over these arrival traces, mirroring the
paper's trace-driven methodology (§6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cdn.fastly import FastlyEdge
from repro.cdn.wowza import WowzaIngest
from repro.client.network import LastMileLink
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.protocols.frames import Chunk, VideoFrame
from repro.protocols.hls import Chunklist
from repro.simulation.engine import Simulator


@dataclass
class RtmpViewerClient:
    """A viewer on the low-latency push tier.

    Subscribes to the broadcaster's Wowza server; every ingested frame is
    pushed immediately and crosses the viewer's last-mile link.
    """

    viewer_id: int
    broadcast_id: int
    simulator: Simulator
    downlink: LastMileLink
    metrics: MetricsRegistry = field(default=NULL_REGISTRY, repr=False)
    frame_arrivals: dict[int, float] = field(default_factory=dict)
    frame_captures: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._m_frames = self.metrics.counter(
            "client.rtmp.frames_received", help="frames delivered to RTMP viewers"
        )

    def attach(self, wowza: WowzaIngest) -> None:
        wowza.subscribe_rtmp(self.broadcast_id, self)

    def push_frame(self, broadcast_id: int, frame: VideoFrame, pushed_at: float) -> None:
        """RtmpSubscriber protocol: server pushed a frame at ``pushed_at``."""
        if broadcast_id != self.broadcast_id:
            raise ValueError(f"frame for wrong broadcast {broadcast_id}")
        arrival = self.downlink.send(pushed_at)
        self.simulator.schedule_at(
            max(arrival, self.simulator.now),
            _RecordFrame(self, frame),
            label=f"rtmp-dl:{self.viewer_id}:{frame.sequence}",
        )

    def _record(self, frame: VideoFrame, time: float) -> None:
        self.frame_arrivals[frame.sequence] = time
        self.frame_captures[frame.sequence] = frame.capture_time
        self._m_frames.inc()

    def arrival_trace(self) -> np.ndarray:
        """Frame arrival times in sequence order."""
        return np.array([self.frame_arrivals[s] for s in sorted(self.frame_arrivals)])

    def end_to_end_delays(self) -> np.ndarray:
        """Per-frame network delay ③ − ① (buffering excluded)."""
        sequences = sorted(self.frame_arrivals)
        return np.array(
            [self.frame_arrivals[s] - self.frame_captures[s] for s in sequences]
        )


class _RecordFrame:
    def __init__(self, client: RtmpViewerClient, frame: VideoFrame) -> None:
        self._client = client
        self._frame = frame

    def __call__(self) -> None:
        self._client._record(self._frame, self._client.simulator.now)


@dataclass
class HlsViewerClient:
    """A viewer on the scalable poll tier.

    Polls its edge POP's chunklist every ``poll_interval_s`` (Periscope:
    uniform in 2–2.8 s), downloads chunks it has not seen, and records
    their arrival times.
    """

    viewer_id: int
    broadcast_id: int
    simulator: Simulator
    edge: FastlyEdge
    downlink: LastMileLink
    poll_interval_s: float = 2.4
    chunk_kb: float = 300.0
    stop_after: float = float("inf")
    metrics: MetricsRegistry = field(default=NULL_REGISTRY, repr=False)
    chunk_arrivals: dict[int, float] = field(default_factory=dict)
    chunk_captures: dict[int, float] = field(default_factory=dict)  # ⑤ per chunk
    chunk_response_times: dict[int, float] = field(default_factory=dict)  # ⑭ per chunk
    poll_times: list[float] = field(default_factory=list)
    _last_downloaded: Optional[int] = field(default=None, init=False)
    _stopped: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.poll_interval_s <= 0:
            raise ValueError("poll interval must be positive")
        obs = self.metrics
        self._m_polls = obs.counter("client.hls.polls", help="chunklist polls sent")
        self._m_empty = obs.counter(
            "client.hls.empty_polls", help="polls that surfaced no new chunk (stall signal)"
        )
        self._m_chunks = obs.counter("client.hls.chunks_downloaded")

    def start_polling(self, first_poll_at: float) -> None:
        self.simulator.schedule_at(
            max(first_poll_at, self.simulator.now), self._poll, label=f"hls-poll:{self.viewer_id}"
        )

    def stop(self) -> None:
        self._stopped = True

    def _poll(self) -> None:
        if self._stopped or self.simulator.now > self.stop_after:
            return
        self.poll_times.append(self.simulator.now)
        self._m_polls.inc()
        self.edge.poll(self.broadcast_id, self._on_chunklist)
        self.simulator.schedule(
            self.poll_interval_s, self._poll, label=f"hls-poll:{self.viewer_id}"
        )

    def _on_chunklist(self, chunklist: Chunklist, response_time: float) -> None:
        if self._stopped:
            return
        fetched = 0
        for entry in chunklist.entries_after(self._last_downloaded):
            self._last_downloaded = entry.chunk_index
            self.chunk_response_times[entry.chunk_index] = response_time
            chunk = self.edge.chunk_payload(self.broadcast_id, entry.chunk_index)
            arrival = self.downlink.send(response_time, size_kb=self.chunk_kb)
            self.simulator.schedule_at(
                max(arrival, self.simulator.now),
                _RecordChunk(self, chunk),
                label=f"hls-dl:{self.viewer_id}:{entry.chunk_index}",
            )
            fetched += 1
        if fetched:
            self._m_chunks.inc(fetched)
        else:
            self._m_empty.inc()

    def _record(self, chunk: Chunk, time: float) -> None:
        self.chunk_arrivals[chunk.index] = time
        self.chunk_captures[chunk.index] = chunk.first_capture_time

    def arrival_trace(self) -> np.ndarray:
        """Chunk arrival times in index order."""
        return np.array([self.chunk_arrivals[i] for i in sorted(self.chunk_arrivals)])

    def end_to_end_delays(self) -> np.ndarray:
        """Per-chunk network delay ⑮ − ⑤ (buffering excluded)."""
        indices = sorted(self.chunk_arrivals)
        return np.array([self.chunk_arrivals[i] - self.chunk_captures[i] for i in indices])


class _RecordChunk:
    def __init__(self, client: HlsViewerClient, chunk: Chunk) -> None:
        self._client = client
        self._chunk = chunk

    def __call__(self) -> None:
        self._client._record(self._chunk, self._client.simulator.now)
