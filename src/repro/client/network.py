"""Last-mile link models.

Two behaviours matter to the paper's results:

* steady jitter — WiFi/LTE delay variance that client buffering absorbs,
* bursty outages — short windows where the uplink stalls and frames queue,
  then flush together.  §6 attributes the long (>5 s) RTMP buffering-delay
  tail in Figure 16(b) to exactly this "bursty arrival of video frames
  during uploading".

Links are FIFO (TCP semantics): delivery times are non-decreasing even
under jitter, and packets sent during an outage drain in order when it
ends.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np


@dataclass
class OutageSchedule:
    """Precomputed outage windows on a link.

    Windows are sampled as a Poisson process of starts with exponential
    durations; overlapping windows are merged.
    """

    windows: list[tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for start, end in self.windows:
            if end < start:
                raise ValueError(f"invalid outage window ({start}, {end})")
        # Copy before sorting: never mutate the caller's list.
        self.windows = sorted(self.windows)
        self._merge()

    def _merge(self) -> None:
        merged: list[tuple[float, float]] = []
        for start, end in self.windows:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        self.windows = merged
        # Precomputed once: release_time used to rebuild this list on every
        # call, making each lookup O(n) instead of O(log n).
        self._starts = [start for start, _ in merged]

    @classmethod
    def sample(
        cls,
        rng: np.random.Generator,
        horizon_s: float,
        rate_per_s: float,
        mean_duration_s: float,
    ) -> "OutageSchedule":
        """Poisson outage starts over ``[0, horizon_s)``."""
        if horizon_s < 0:
            raise ValueError("horizon must be non-negative")
        if rate_per_s < 0 or mean_duration_s < 0:
            raise ValueError("rate and duration must be non-negative")
        if rate_per_s == 0 or horizon_s == 0:
            return cls([])
        count = int(rng.poisson(rate_per_s * horizon_s))
        starts = np.sort(rng.random(count) * horizon_s)
        durations = rng.exponential(mean_duration_s, size=count)
        return cls([(float(s), float(s + d)) for s, d in zip(starts, durations)])

    def release_time(self, time: float) -> float:
        """Earliest instant at/after ``time`` outside any outage window.

        Windows are merged and disjoint after construction, so the single
        window with the latest ``start <= time`` fully decides the answer —
        with raw overlapping windows (e.g. ``[(0, 100), (10, 20)]`` at
        ``t=50``) that check alone would wrongly report the link as up.
        """
        index = bisect.bisect_right(self._starts, time) - 1
        if index >= 0:
            start, end = self.windows[index]
            if start <= time < end:
                return end
        return time

    def is_down(self, time: float) -> bool:
        """Whether the link is inside an outage window at ``time``."""
        return self.release_time(time) != time

    @property
    def total_outage_s(self) -> float:
        return sum(end - start for start, end in self.windows)


@dataclass
class LastMileLink:
    """A FIFO access link with jitter and optional outages.

    ``send(t)`` returns the delivery time of a packet handed to the link at
    time ``t``.  Calls must be made in non-decreasing send-time order (the
    link tracks FIFO state).
    """

    rng: np.random.Generator
    base_delay_s: float = 0.045
    jitter_sigma: float = 0.25
    outages: OutageSchedule = field(default_factory=OutageSchedule)
    serialization_s_per_kb: float = 0.0  # optional bandwidth term
    _last_delivery: float = field(default=float("-inf"), init=False)
    _last_send: float = field(default=float("-inf"), init=False)

    def __post_init__(self) -> None:
        if self.base_delay_s < 0:
            raise ValueError("base delay must be non-negative")
        if self.jitter_sigma < 0:
            raise ValueError("jitter sigma must be non-negative")

    def send(self, time: float, size_kb: float = 0.0) -> float:
        """Delivery time for a packet sent at ``time``."""
        if size_kb < 0:
            raise ValueError(f"size_kb must be non-negative (got {size_kb})")
        if time < self._last_send:
            raise ValueError(
                f"sends must be time-ordered ({time} < {self._last_send})"
            )
        self._last_send = time
        departure = self.outages.release_time(time)
        delay = self.base_delay_s
        if self.jitter_sigma > 0:
            delay *= float(self.rng.lognormal(0.0, self.jitter_sigma))
        delay += size_kb * self.serialization_s_per_kb
        delivery = departure + delay
        # FIFO: never deliver before an earlier packet.
        delivery = max(delivery, self._last_delivery)
        self._last_delivery = delivery
        return delivery

    @classmethod
    def stable_wifi(cls, rng: np.random.Generator) -> "LastMileLink":
        """The controlled-experiment setup: stable WiFi, no outages."""
        return cls(rng=rng, base_delay_s=0.035, jitter_sigma=0.15)

    @classmethod
    def mobile_uplink(
        cls,
        rng: np.random.Generator,
        horizon_s: float,
        outage_rate_per_s: float = 1.0 / 200.0,
        outage_mean_s: float = 2.5,
    ) -> "LastMileLink":
        """A realistic broadcaster uplink with occasional bursty stalls."""
        return cls(
            rng=rng,
            base_delay_s=0.06,
            jitter_sigma=0.3,
            outages=OutageSchedule.sample(rng, horizon_s, outage_rate_per_s, outage_mean_s),
        )
