"""Client-side components: broadcasters, viewers, links and playback.

Models the endpoints of the paper's controlled experiments (§4.3): a
broadcaster phone uploading 40 ms frames over a jittery (occasionally
bursty) last-mile link, an RTMP viewer receiving pushed frames, and an HLS
viewer polling chunklists and downloading chunks — each feeding a playback
buffer whose pre-buffering policy §6 analyzes.
"""

from repro.client.network import LastMileLink, OutageSchedule
from repro.client.broadcaster import BroadcasterClient
from repro.client.viewer_client import HlsViewerClient, RtmpViewerClient

__all__ = [
    "LastMileLink",
    "OutageSchedule",
    "BroadcasterClient",
    "RtmpViewerClient",
    "HlsViewerClient",
]
