"""The chaos scenario: one system, one fault schedule, two postures.

``run_chaos_scenario`` drives the full stack — platform, Wowza ingest,
several Fastly POPs with a shared front-end queue, crawler, HLS viewers —
through a seeded fault schedule, either *naive* (no retries, no failover,
no breaker, no shedding: failures are simply tolerated) or *resilient*
(every mechanism in :mod:`repro.faults` armed).  Identical seeds give the
two postures identical broadcasts, identical viewers, and an identical
fault schedule, so their :class:`ChaosReport`\\ s are directly comparable;
``repro chaos`` and the ``faultsweep`` experiment print them side by side.

The fault schedule is a deterministic backbone (every sweep intensity
takes down the primary POP, browns out the platform while short-lived
broadcasts are on air, starves the crawler quota, and drops the origin)
plus Poisson-sampled degradation color from the ``faults`` random stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdn.assignment import CdnAssignment
from repro.cdn.fastly import FastlyEdge
from repro.cdn.queueing import ServerQueue
from repro.cdn.transfer import TransferModel
from repro.cdn.wowza import WowzaIngest
from repro.client.broadcaster import BroadcasterClient
from repro.client.network import LastMileLink
from repro.client.viewer_client import HlsViewerClient
from repro.crawler.global_list import GlobalListCrawler
from repro.crawler.rate_limit import TokenBucket
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultWindow
from repro.faults.resilience import CircuitBreaker, RetryPolicy
from repro.geo.datacenters import WOWZA_DATACENTERS
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.platform.service import LivestreamService, ServiceUnavailable
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams


@dataclass(frozen=True)
class ChaosReport:
    """Domain-level outcome of one chaos run (registry-independent)."""

    seed: int
    fault_intensity: float
    resilient: bool
    faults_injected: int
    availability: float  # fraction of the run with no fault active
    # Discovery (crawler) outcomes.
    coverage: float
    mean_discovery_latency_s: float
    queries_made: int
    queries_throttled: int
    queries_failed: int
    crawler_retries: int
    # Delivery (viewer) outcomes.
    chunks_expected: int  # produced chunks x HLS viewers of that broadcast
    chunks_delivered: int
    mean_e2e_delay_s: float
    p99_e2e_delay_s: float
    viewer_poll_failures: int
    viewer_retries: int
    viewer_failovers: int
    stale_served: int

    @property
    def delivery_ratio(self) -> float:
        """Delivered / expected chunk downloads across all HLS viewers."""
        if self.chunks_expected == 0:
            return 1.0
        return self.chunks_delivered / self.chunks_expected

    def dominates(self, other: "ChaosReport") -> bool:
        """Strictly better than ``other`` on coverage, delivery, and p99
        delay (the graceful-degradation acceptance criterion)."""
        return (
            self.coverage > other.coverage
            and self.delivery_ratio > other.delivery_ratio
            and self.p99_e2e_delay_s < other.p99_e2e_delay_s
        )


def build_fault_plan(
    rng: np.random.Generator,
    horizon_s: float,
    intensity: float,
    primary_edge: str,
    origin: str,
) -> FaultPlan:
    """The chaos schedule for one run: deterministic backbone + sampled color.

    ``intensity = 0`` yields the empty plan (and consumes no randomness);
    any positive intensity guarantees at least one fault of every backbone
    kind, with outage lengths and severities scaling with ``intensity``.
    """
    if intensity < 0:
        raise ValueError("intensity must be non-negative")
    if intensity == 0:
        return FaultPlan()
    backbone = (
        # The primary POP goes dark twice while broadcasts are on air.
        FaultWindow(FaultKind.EDGE_DOWN, 60.0, 8.0 + 16.0 * intensity, primary_edge),
        FaultWindow(FaultKind.EDGE_DOWN, 100.0, 6.0 + 10.0 * intensity, primary_edge),
        # The origin drops while the last broadcast is still serving.
        FaultWindow(FaultKind.ORIGIN_DOWN, 88.0, 5.0 + 8.0 * intensity, origin),
        # The platform browns out across the background-broadcast batch;
        # even a mild sweep point fails most un-retried calls, so lost
        # short-lived broadcasts separate the two crawler postures at
        # every intensity.
        FaultWindow(
            FaultKind.SERVICE_BROWNOUT,
            30.0,
            60.0 + 40.0 * intensity,
            "*",
            intensity=min(0.95, 0.8 + 0.1 * intensity),
        ),
        # The crawler quota is revoked mid-run.
        FaultWindow(
            FaultKind.CRAWLER_STARVATION,
            150.0,
            20.0 + 20.0 * intensity,
            "*",
            intensity=1.0 / (1.0 + 4.0 * intensity),
        ),
    )
    color = FaultPlan.sample(
        rng,
        horizon_s=horizon_s * 0.8,
        intensity=intensity,
        kinds=(FaultKind.EDGE_DEGRADED, FaultKind.QUEUE_OVERLOAD),
        rate_per_min=0.4,
        mean_duration_s=10.0,
    )
    return FaultPlan(backbone + color.windows)


def run_chaos_scenario(
    seed: int = 7,
    fault_intensity: float = 1.0,
    resilient: bool = True,
    n_broadcasts: int = 3,
    viewers_per_broadcast: int = 4,
    background_broadcasts: int = 12,
    broadcast_duration_s: float = 40.0,
    horizon_s: float = 240.0,
    metrics: MetricsRegistry = NULL_REGISTRY,
) -> ChaosReport:
    """One end-to-end run through the chaos schedule.

    ``resilient`` flips every mechanism at once: crawler retries (fresh
    data only), viewer retry + watchdog + edge failover, origin-pull
    circuit breakers, and platform load shedding.  Everything else —
    seeds, broadcasts, viewers, the fault schedule — is identical, which
    is what makes naive/resilient reports comparable.
    """
    if n_broadcasts <= 0:
        raise ValueError("need at least one broadcast")
    if fault_intensity < 0:
        raise ValueError("fault intensity must be non-negative")
    streams = RandomStreams(seed)
    simulator = Simulator(metrics=metrics)

    service = LivestreamService(metrics=metrics, load_shedding=resilient)
    service.users.register_many(
        100 + n_broadcasts * viewers_per_broadcast + background_broadcasts
    )

    wowza = WowzaIngest(
        WOWZA_DATACENTERS[0], simulator, frames_per_chunk=25, metrics=metrics
    )
    assignment = CdnAssignment()
    pops = assignment.ranked_fastly_for_viewer(wowza.datacenter.location, count=3)
    server_queue = ServerQueue(simulator, metrics=metrics)

    def breaker_factory() -> CircuitBreaker:
        return CircuitBreaker(failure_threshold=3, cooldown_s=15.0, metrics=metrics)

    edges = [
        FastlyEdge(
            pop,
            simulator,
            TransferModel(),
            streams.get(f"edge/{pop.name}"),
            metrics=metrics,
            queue=server_queue,
            breaker_factory=breaker_factory if resilient else None,
        )
        for pop in pops
    ]

    viewer_policy = (
        RetryPolicy(
            max_attempts=4,
            base_delay_s=0.5,
            backoff=2.0,
            max_delay_s=5.0,
            jitter_frac=0.1,
            attempt_timeout_s=10.0,
            rng=streams.get("retry/hls"),
        )
        if resilient
        else None
    )
    crawler_policy = (
        RetryPolicy(
            max_attempts=4,
            base_delay_s=0.3,
            backoff=2.0,
            max_delay_s=4.0,
            jitter_frac=0.1,
            rng=streams.get("retry/crawler"),
        )
        if resilient
        else None
    )

    engagement_rng = streams.get("engagement")
    hls_viewers: list[HlsViewerClient] = []
    featured_bids: list[int] = []

    for index in range(n_broadcasts):
        start = 10.0 + index * 20.0
        broadcaster_id = 1 + index

        def launch(broadcaster_id=broadcaster_id, slot=index):
            now = simulator.now
            broadcast = service.start_broadcast(broadcaster_id, time=now)
            bid = broadcast.broadcast_id
            featured_bids.append(bid)
            for edge in edges:  # failover candidates must know the broadcast
                edge.attach_broadcast(bid, wowza)
            uplink = LastMileLink.mobile_uplink(
                streams.get(f"uplink/{slot}"), horizon_s=horizon_s
            )
            client = BroadcasterClient(
                broadcast_id=bid, token=f"tok-{bid}", simulator=simulator,
                wowza=wowza, uplink=uplink,
            )
            client.start(start_time=now, duration_s=broadcast_duration_s)
            for viewer_offset in range(viewers_per_broadcast):
                viewer_id = 60 + slot * viewers_per_broadcast + viewer_offset
                # Engagement calls may land inside a brownout window; the
                # naive posture surfaces that as errors the launcher eats.
                try:
                    service.join(bid, viewer_id, time=now)
                    service.heart(bid, viewer_id, time=now)
                    service.comment(bid, viewer_id, time=now)
                except ServiceUnavailable:
                    pass
                viewer = HlsViewerClient(
                    viewer_id=viewer_id, broadcast_id=bid, simulator=simulator,
                    edge=edges[0],
                    downlink=LastMileLink.stable_wifi(streams.get(f"hls/{viewer_id}")),
                    stop_after=now + broadcast_duration_s + 30.0,
                    retry_policy=viewer_policy,
                    failover_edges=edges if resilient else (),
                    metrics=metrics,
                )
                hls_viewers.append(viewer)
                viewer.start_polling(
                    first_poll_at=now + float(engagement_rng.uniform(0.5, 2.0))
                )
            simulator.schedule(
                broadcast_duration_s + 5.0,
                lambda bid=bid: service.end_broadcast(bid, simulator.now),
                label="platform-end",
            )

        simulator.schedule_at(start, launch, label="platform-launch")

    # Background broadcasts: platform-only, short-lived, timed so the
    # brownout (and for the last few, the quota starvation) is the only
    # thing standing between the crawler and full coverage.
    for index in range(background_broadcasts):
        owner = 20 + index
        if index < background_broadcasts - 4:
            start = 40.0 + index * 6.0
        else:
            start = 152.0 + (index - (background_broadcasts - 4)) * 8.0
        lifetime = 8.0

        def bg_launch(owner=owner, lifetime=lifetime):
            broadcast = service.start_broadcast(owner, time=simulator.now)
            simulator.schedule(
                lifetime,
                lambda bid=broadcast.broadcast_id: service.end_broadcast(
                    bid, simulator.now
                ),
                label="bg-end",
            )

        simulator.schedule_at(start, bg_launch, label="bg-launch")

    bucket = TokenBucket(rate_per_s=2.0, capacity=4.0, metrics=metrics)
    crawler = GlobalListCrawler(
        service, simulator, streams.get("crawler"),
        n_accounts=4, account_refresh_s=5.0,
        rate_limit=bucket,
        retry_policy=crawler_policy,
        metrics=metrics,
    )
    crawler.start()

    injector = FaultInjector(simulator, metrics=metrics)
    for edge in edges:
        injector.register_edge(edge.datacenter.name, edge)
    injector.register_origin(wowza.datacenter.name, wowza)
    injector.register_queue("pop-frontend", server_queue)
    injector.register_service("platform", service, streams.get("brownout"))
    injector.register_bucket("crawler-quota", bucket)
    plan = build_fault_plan(
        streams.get("faults"),
        horizon_s=horizon_s,
        intensity=fault_intensity,
        primary_edge=edges[0].datacenter.name,
        origin=wowza.datacenter.name,
    )
    injector.arm(plan)

    simulator.run(until=horizon_s)

    # -- fold the run into a domain-level report ------------------------
    produced = {
        bid: len(wowza.record_for(bid).chunk_ready) for bid in featured_bids
    }
    chunks_expected = sum(produced[v.broadcast_id] for v in hls_viewers)
    chunks_delivered = sum(len(v.chunk_arrivals) for v in hls_viewers)
    # Per-chunk delay, censored: a chunk the viewer never received counts
    # at the moment the viewer gave up (a lower bound on its true delay).
    # Without censoring, a client that silently drops every late chunk
    # would report a *better* p99 than one that recovers them.
    delay_list: list[float] = []
    for viewer in hls_viewers:
        record = wowza.record_for(viewer.broadcast_id)
        censor_at = min(viewer.stop_after, horizon_s)
        for index, chunk in record.chunks.items():
            if index in viewer.chunk_arrivals:
                delay_list.append(
                    viewer.chunk_arrivals[index] - chunk.first_capture_time
                )
            else:
                delay_list.append(max(0.0, censor_at - chunk.first_capture_time))
    delays = np.asarray(delay_list)
    latencies = crawler.discovery_latencies()
    stale = sum(edge.stale_served(bid) for edge in edges for bid in featured_bids)
    return ChaosReport(
        seed=seed,
        fault_intensity=fault_intensity,
        resilient=resilient,
        faults_injected=len(plan),
        availability=injector.availability(),
        coverage=crawler.coverage(),
        mean_discovery_latency_s=float(latencies.mean()) if len(latencies) else 0.0,
        queries_made=sum(a.queries_made for a in crawler.accounts),
        queries_throttled=sum(a.queries_throttled for a in crawler.accounts),
        queries_failed=sum(a.queries_failed for a in crawler.accounts),
        crawler_retries=sum(a.retries for a in crawler.accounts),
        chunks_expected=chunks_expected,
        chunks_delivered=chunks_delivered,
        mean_e2e_delay_s=float(delays.mean()) if len(delays) else 0.0,
        p99_e2e_delay_s=float(np.percentile(delays, 99)) if len(delays) else 0.0,
        viewer_poll_failures=sum(v.poll_failures for v in hls_viewers),
        viewer_retries=sum(v.retries for v in hls_viewers),
        viewer_failovers=sum(v.failovers for v in hls_viewers),
        stale_served=stale,
    )


def run_chaos_pair(
    seed: int = 7, fault_intensity: float = 1.0, **kwargs
) -> tuple[ChaosReport, ChaosReport]:
    """Run the naive and resilient postures through the same schedule."""
    naive = run_chaos_scenario(
        seed=seed, fault_intensity=fault_intensity, resilient=False, **kwargs
    )
    hardened = run_chaos_scenario(
        seed=seed, fault_intensity=fault_intensity, resilient=True, **kwargs
    )
    return naive, hardened
