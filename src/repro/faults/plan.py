"""Fault plans: *what* goes wrong, *where*, and *when*.

A :class:`FaultPlan` is a pure-data schedule of :class:`FaultWindow`\\ s.
Plans are either hand-written (tests, targeted what-ifs) or Poisson-sampled
from a seeded generator via :meth:`FaultPlan.sample` — the same seed always
yields the same plan, and because the :class:`~repro.faults.injector.FaultInjector`
executes plans purely through simulator events, the same (seed, plan) pair
yields byte-identical runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Mapping, Optional, Sequence

import numpy as np


class FaultKind(str, Enum):
    """The failure modes the injector knows how to inflict."""

    #: A Fastly POP stops answering polls (viewers see ``EdgeUnavailable``).
    EDGE_DOWN = "edge_down"
    #: A POP's origin-pull transfers slow down by ``intensity``×.
    EDGE_DEGRADED = "edge_degraded"
    #: A Wowza origin stops serving pulls (edges fail and serve stale).
    ORIGIN_DOWN = "origin_down"
    #: An origin's pull transfers slow down by ``intensity``×.
    ORIGIN_DEGRADED = "origin_degraded"
    #: A POP front-end queue's service times inflate by ``intensity``×.
    QUEUE_OVERLOAD = "queue_overload"
    #: The platform API fails calls with probability ``intensity``.
    SERVICE_BROWNOUT = "service_brownout"
    #: Crawler token buckets drain and refill at ``intensity``× rate.
    CRAWLER_STARVATION = "crawler_starvation"


@dataclass(frozen=True)
class FaultWindow:
    """One fault: a kind, a target, a time window, and an intensity.

    ``target`` names a component registered with the injector (``"*"``
    means every registered component of the kind's category).  The
    meaning of ``intensity`` depends on ``kind`` — a slowdown multiplier
    for degradations/overloads, a failure probability for brownouts, a
    refill-rate multiplier for starvation; ignored for hard downs.
    """

    kind: FaultKind
    start_s: float
    duration_s: float
    target: str = "*"
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.intensity < 0:
            raise ValueError("intensity must be non-negative")
        if self.kind is FaultKind.SERVICE_BROWNOUT and self.intensity > 1.0:
            raise ValueError("brownout intensity is a probability (<= 1)")

    @property
    def end_s(self) -> float:
        """When the fault clears."""
        return self.start_s + self.duration_s

    def active_at(self, time_s: float) -> bool:
        """Is this fault in effect at ``time_s``?  (Half-open window.)"""
        return self.start_s <= time_s < self.end_s


#: How window intensity is derived from sweep intensity, per kind.
_SEVERITY_NOTES = {
    FaultKind.EDGE_DOWN: "n/a",
    FaultKind.ORIGIN_DOWN: "n/a",
    FaultKind.EDGE_DEGRADED: "slowdown 1 + 4·intensity",
    FaultKind.ORIGIN_DEGRADED: "slowdown 1 + 4·intensity",
    FaultKind.QUEUE_OVERLOAD: "slowdown 1 + 4·intensity",
    FaultKind.SERVICE_BROWNOUT: "fail rate min(0.9, 0.3 + 0.5·intensity)",
    FaultKind.CRAWLER_STARVATION: "refill factor 1 / (1 + 4·intensity)",
}


def _window_intensity(kind: FaultKind, intensity: float) -> float:
    if kind in (FaultKind.EDGE_DOWN, FaultKind.ORIGIN_DOWN):
        return 1.0
    if kind is FaultKind.SERVICE_BROWNOUT:
        return min(0.9, 0.3 + 0.5 * intensity)
    if kind is FaultKind.CRAWLER_STARVATION:
        return 1.0 / (1.0 + 4.0 * intensity)
    return 1.0 + 4.0 * intensity


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted schedule of fault windows."""

    windows: tuple[FaultWindow, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(
                self.windows,
                key=lambda w: (w.start_s, w.duration_s, w.kind.value, w.target),
            )
        )
        object.__setattr__(self, "windows", ordered)

    def __len__(self) -> int:
        return len(self.windows)

    def __iter__(self) -> Iterator[FaultWindow]:
        return iter(self.windows)

    def active_at(self, time_s: float) -> list[FaultWindow]:
        """All windows in effect at ``time_s``."""
        return [w for w in self.windows if w.active_at(time_s)]

    @property
    def total_fault_time_s(self) -> float:
        """Sum of window durations (overlaps counted multiply)."""
        return sum(w.duration_s for w in self.windows)

    @property
    def horizon_s(self) -> float:
        """When the last window clears (0 for an empty plan)."""
        return max((w.end_s for w in self.windows), default=0.0)

    def for_kind(self, kind: FaultKind) -> list[FaultWindow]:
        return [w for w in self.windows if w.kind is kind]

    @classmethod
    def sample(
        cls,
        rng: np.random.Generator,
        horizon_s: float,
        intensity: float = 1.0,
        targets: Optional[Mapping[FaultKind, Sequence[str]]] = None,
        kinds: Optional[Sequence[FaultKind]] = None,
        rate_per_min: float = 0.5,
        mean_duration_s: float = 12.0,
    ) -> "FaultPlan":
        """Draw a Poisson plan from a seeded generator.

        Per fault kind, the number of windows is Poisson with mean
        ``rate_per_min / 60 * horizon_s * intensity``; starts are uniform
        over the horizon and durations exponential with mean
        ``mean_duration_s``.  Window severity scales with ``intensity``
        (see the per-kind notes in ``_SEVERITY_NOTES``).  ``intensity = 0``
        yields the empty plan without consuming any randomness, so a
        zero-intensity chaos run replays the faultless seed exactly.
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        if intensity == 0:
            return cls()
        chosen = tuple(kinds) if kinds is not None else tuple(FaultKind)
        target_map = dict(targets or {})
        windows: list[FaultWindow] = []
        mean_count = rate_per_min / 60.0 * horizon_s * intensity
        for kind in chosen:  # fixed kind order keeps the draw sequence stable
            count = int(rng.poisson(mean_count))
            names = list(target_map.get(kind, ("*",)))
            for _ in range(count):
                start = float(rng.uniform(0.0, horizon_s))
                duration = max(1.0, float(rng.exponential(mean_duration_s)))
                target = names[int(rng.integers(len(names)))]
                windows.append(
                    FaultWindow(
                        kind=kind,
                        start_s=start,
                        duration_s=min(duration, horizon_s - start + 1.0),
                        target=target,
                        intensity=_window_intensity(kind, intensity),
                    )
                )
        return cls(tuple(windows))
