"""Resilience primitives: retry policies and circuit breakers.

Everything here is simulation-time-deterministic: delays are computed from
explicit attempt counts and an *injected* rng (for jitter), never the wall
clock, so a seeded run that exercises retries is byte-identical across
processes.  The primitives are deliberately dormant on the happy path — a
component configured with a :class:`RetryPolicy` that never fails draws no
randomness and schedules no extra work, preserving the repo's
zero-cost-default contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY


@dataclass
class RetryPolicy:
    """Exponential backoff with deterministic jitter and budgets.

    ``next_delay(attempt, elapsed_s)`` answers "the attempt numbered
    ``attempt`` (0-based) just failed after ``elapsed_s`` seconds since the
    first try — when should the next one run?", returning ``None`` when the
    caller should give up (attempts or deadline exhausted).

    * ``base_delay_s * backoff**attempt`` capped at ``max_delay_s``,
    * multiplicative jitter of ±``jitter_frac`` drawn from ``rng`` (no rng,
      no jitter — and no draw ever happens unless a retry is scheduled),
    * an optional ``hint`` floor — e.g.
      :meth:`~repro.crawler.rate_limit.TokenBucket.time_until_available` —
      so retries wake exactly when the resource can admit them instead of
      blind-polling,
    * ``attempt_timeout_s`` bounds a single in-flight attempt (consumed by
      pollers that arm a response watchdog),
    * ``deadline_s`` bounds the whole retry sequence.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.5
    backoff: float = 2.0
    max_delay_s: float = 10.0
    jitter_frac: float = 0.1
    attempt_timeout_s: float = math.inf
    deadline_s: float = math.inf
    rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ValueError("jitter_frac must be within [0, 1)")
        if self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be positive")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    def backoff_delay_s(self, attempt: int) -> float:
        """The undithered backoff delay after failed attempt ``attempt``."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(self.max_delay_s, self.base_delay_s * self.backoff**attempt)

    def next_delay(
        self,
        attempt: int,
        elapsed_s: float,
        hint: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ) -> Optional[float]:
        """Delay before the next attempt, or ``None`` to give up.

        ``hint`` is a lower bound from the failing resource (seconds until
        it can admit the request); ``deadline_s`` overrides the policy-wide
        deadline for this sequence (callers cap retries at their own
        cadence, e.g. a crawler's refresh interval).
        """
        if attempt + 1 >= self.max_attempts:
            return None
        delay = self.backoff_delay_s(attempt)
        if self.jitter_frac > 0.0 and self.rng is not None:
            spread = self.jitter_frac * (2.0 * float(self.rng.random()) - 1.0)
            delay *= 1.0 + spread
        if hint is not None:
            delay = max(delay, hint)
        limit = self.deadline_s if deadline_s is None else deadline_s
        if elapsed_s + delay > limit:
            return None
        return delay


class CircuitBreaker:
    """A three-state circuit breaker driven by explicit (simulated) time.

    Closed: requests flow, consecutive failures are counted.  After
    ``failure_threshold`` consecutive failures the breaker *opens*:
    :meth:`allow_request` answers False (callers degrade gracefully, e.g.
    a Fastly edge serves its stale cached chunklist) until ``cooldown_s``
    has passed, at which point a single probe is let through (*half-open*).
    A successful probe closes the breaker; a failed one re-opens it and
    restarts the cooldown.
    """

    __slots__ = (
        "failure_threshold", "cooldown_s", "name",
        "_state", "_failures", "_opened_at",
        "_m_opened", "_m_closed", "_m_probes", "_m_rejected", "_h_open",
    )

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 20.0,
        metrics: MetricsRegistry = NULL_REGISTRY,
        name: str = "breaker",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_s < 0:
            raise ValueError("cooldown must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.name = name
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._m_opened = metrics.counter(
            "resilience.breaker.opened", help="circuit-breaker open transitions"
        )
        self._m_closed = metrics.counter(
            "resilience.breaker.closed", help="circuit-breaker recoveries (probe succeeded)"
        )
        self._m_probes = metrics.counter(
            "resilience.breaker.probes", help="half-open probe requests admitted"
        )
        self._m_rejected = metrics.counter(
            "resilience.breaker.rejected", help="requests short-circuited while open"
        )
        self._h_open = metrics.histogram(
            "resilience.breaker.open_s", help="time from open to recovery"
        )

    @property
    def state(self) -> str:
        """One of ``"closed"``, ``"open"``, ``"half_open"``."""
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allow_request(self, now: float) -> bool:
        """Should a request be attempted at simulated time ``now``?"""
        if self._state == self.CLOSED:
            return True
        if self._state == self.OPEN:
            if now - self._opened_at >= self.cooldown_s:
                self._state = self.HALF_OPEN
                self._m_probes.inc()
                return True  # the single probe
            self._m_rejected.inc()
            return False
        # Half-open: one probe is already in flight.
        self._m_rejected.inc()
        return False

    def record_success(self, now: float) -> None:
        """The guarded call succeeded; close the circuit if it was open."""
        self._failures = 0
        if self._state != self.CLOSED:
            self._h_open.observe(now - self._opened_at)
            self._m_closed.inc()
            self._state = self.CLOSED

    def record_failure(self, now: float) -> None:
        """The guarded call failed; maybe open the circuit."""
        self._failures += 1
        if self._state == self.HALF_OPEN or (
            self._state == self.CLOSED and self._failures >= self.failure_threshold
        ):
            self._state = self.OPEN
            self._opened_at = now
            self._m_opened.inc()
