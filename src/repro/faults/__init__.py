"""Deterministic fault injection and resilience (see ``FAULTS.md``).

The subsystem has two halves that meet only through component state:

* **Injection** — :class:`FaultPlan` (what/where/when, hand-written or
  Poisson-sampled from a seeded generator) executed by a
  :class:`FaultInjector` purely through simulator events: POPs go down or
  degrade, origins stop serving pulls, front-end queues slow down, the
  platform API browns out, crawler token buckets starve.
* **Resilience** — :class:`RetryPolicy` (exponential backoff, deterministic
  jitter, attempt timeouts, deadlines) adopted by the crawler and the HLS
  viewer, edge failover in the viewer, a :class:`CircuitBreaker` on the
  Fastly origin-pull path, and platform load shedding (stale global-list
  snapshots instead of errors).

Identical seeds and plans yield byte-identical runs, and an armed injector
with an empty plan leaves the simulation bit-for-bit on the faultless seed
path — the properties ``tests/test_faults_determinism.py`` pins down.

The ``repro chaos`` CLI target (:mod:`repro.faults.scenario`) runs a naive
and a resilient system through the same fault schedule and reports the
degradation side by side.
"""

from repro.cdn.fastly import EdgeUnavailable
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultWindow
from repro.faults.resilience import CircuitBreaker, RetryPolicy
from repro.service.errors import ServiceUnavailable

__all__ = [
    "FaultKind",
    "FaultWindow",
    "FaultPlan",
    "FaultInjector",
    "RetryPolicy",
    "CircuitBreaker",
    # Both error types are injected *by* this subsystem, so FAULTS.md docs
    # import them from here; their canonical homes stay cdn/service.
    "EdgeUnavailable",  # repro: allow[export-drift] fault-surface convenience re-export; canonical home is repro.cdn
    "ServiceUnavailable",  # repro: allow[export-drift] fault-surface convenience re-export; canonical home is repro.service
]
