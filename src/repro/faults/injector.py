"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`
through simulator events.

Components register under string names; the injector schedules one
activation and one clearing event per window and mutates the components'
documented fault surfaces (``fault_down``, ``fault_delay_factor``,
``origin_available``, ``fault_slowdown``, brownout rate, bucket refill
factor).  All state changes happen inside the event loop — never from wall
clock — so runs are reproducible, and overlapping windows on the same
component compose (a component is healthy again only when its *last*
overlapping window clears; degradations take the max active slowdown).

The injector never imports concrete component classes: targets are duck
typed against the fault-surface attributes, which keeps ``repro.faults``
free of runtime dependencies on ``repro.cdn``/``repro.platform``.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.faults.plan import FaultKind, FaultPlan, FaultWindow
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.simulation.engine import Simulator

#: Which registry a kind's targets live in.
_CATEGORY = {
    FaultKind.EDGE_DOWN: "edge",
    FaultKind.EDGE_DEGRADED: "edge",
    FaultKind.ORIGIN_DOWN: "origin",
    FaultKind.ORIGIN_DEGRADED: "origin",
    FaultKind.QUEUE_OVERLOAD: "queue",
    FaultKind.SERVICE_BROWNOUT: "service",
    FaultKind.CRAWLER_STARVATION: "bucket",
}


class FaultInjector:
    """Arms fault plans against registered components."""

    def __init__(
        self, simulator: Simulator, metrics: MetricsRegistry = NULL_REGISTRY
    ) -> None:
        self.simulator = simulator
        self._components: dict[str, dict[str, Any]] = {
            "edge": {}, "origin": {}, "queue": {}, "service": {}, "bucket": {},
        }
        self._service_rng: Optional[np.random.Generator] = None
        # (kind, target-name) -> windows currently in effect.
        self._active: dict[tuple[FaultKind, str], list[FaultWindow]] = {}
        self._active_total = 0
        self._armed_at: Optional[float] = None
        self._down_since: Optional[float] = None
        self._downtime_s = 0.0
        self._m_activated = metrics.counter("faults.activated", help="fault windows that took effect")
        self._m_cleared = metrics.counter("faults.cleared", help="fault windows that ended")
        self._m_by_kind = {
            kind: metrics.counter(f"faults.{kind.value}.activations")
            for kind in FaultKind
        }
        self._g_active = metrics.gauge("faults.active", help="fault windows in effect now")
        self._h_window = metrics.histogram("faults.window_s", help="scheduled fault window lengths")
        self._h_mttr = metrics.histogram("faults.mttr_s", help="time from fault activation to clearing")
        self._g_availability = metrics.gauge(
            "faults.system_availability",
            help="fraction of armed time with no fault active (union over windows)",
        )
        metrics.add_collector(self._collect)

    # -- registration ----------------------------------------------------

    def register_edge(self, name: str, edge: Any) -> None:
        """An object exposing ``fault_down`` and ``fault_delay_factor``."""
        self._register("edge", name, edge)

    def register_origin(self, name: str, origin: Any) -> None:
        """An object exposing ``origin_available`` and ``fault_delay_factor``."""
        self._register("origin", name, origin)

    def register_queue(self, name: str, queue: Any) -> None:
        """An object exposing ``fault_slowdown``."""
        self._register("queue", name, queue)

    def register_service(
        self, name: str, service: Any, rng: np.random.Generator
    ) -> None:
        """An object exposing ``set_brownout(rate, rng)`` / ``clear_brownout()``.

        ``rng`` supplies the brownout coin flips; it is consumed only while
        a brownout window is active.
        """
        self._register("service", name, service)
        self._service_rng = rng

    def register_bucket(self, name: str, bucket: Any) -> None:
        """An object exposing ``fault_refill_factor`` and ``drain()``."""
        self._register("bucket", name, bucket)

    def _register(self, category: str, name: str, component: Any) -> None:
        table = self._components[category]
        if name in table:
            raise ValueError(f"{category} {name!r} already registered")
        table[name] = component

    # -- arming ----------------------------------------------------------

    def arm(self, plan: FaultPlan) -> None:
        """Schedule every window of ``plan`` relative to *now*.

        Raises :class:`ValueError` if a window names an unregistered
        target, so misconfigurations fail at arm time, not mid-run.
        """
        now = self.simulator.now
        if self._armed_at is None:
            self._armed_at = now
        for window in plan:
            self._resolve(window)  # validate targets up front
            self._h_window.observe(window.duration_s)
            self.simulator.schedule_at(
                now + window.start_s,
                _Transition(self, window, activate=True),
                label=f"fault-on:{window.kind.value}",
            )
            self.simulator.schedule_at(
                now + window.end_s,
                _Transition(self, window, activate=False),
                label=f"fault-off:{window.kind.value}",
            )

    def _resolve(self, window: FaultWindow) -> list[tuple[str, Any]]:
        table = self._components[_CATEGORY[window.kind]]
        if window.target == "*":
            if not table:
                raise ValueError(
                    f"no {_CATEGORY[window.kind]} registered for {window.kind.value}"
                )
            return sorted(table.items())
        if window.target not in table:
            raise ValueError(
                f"unknown {_CATEGORY[window.kind]} target {window.target!r}"
            )
        return [(window.target, table[window.target])]

    # -- transitions -----------------------------------------------------

    def _activate(self, window: FaultWindow) -> None:
        self._m_activated.inc()
        self._m_by_kind[window.kind].inc()
        if self._active_total == 0:
            self._down_since = self.simulator.now
        self._active_total += 1
        self._g_active.inc()
        for name, component in self._resolve(window):
            actives = self._active.setdefault((window.kind, name), [])
            actives.append(window)
            self._apply(window.kind, component, actives, activating=window)

    def _deactivate(self, window: FaultWindow) -> None:
        self._m_cleared.inc()
        self._h_mttr.observe(window.duration_s)
        self._active_total -= 1
        self._g_active.dec()
        if self._active_total == 0 and self._down_since is not None:
            self._downtime_s += self.simulator.now - self._down_since
            self._down_since = None
        for name, component in self._resolve(window):
            actives = self._active.get((window.kind, name), [])
            if window in actives:
                actives.remove(window)
            self._apply(window.kind, component, actives, activating=None)

    def _apply(
        self,
        kind: FaultKind,
        component: Any,
        actives: list[FaultWindow],
        activating: Optional[FaultWindow],
    ) -> None:
        """Recompute a component's fault surface from its active windows."""
        if kind is FaultKind.EDGE_DOWN:
            component.fault_down = bool(actives)
        elif kind in (FaultKind.EDGE_DEGRADED, FaultKind.ORIGIN_DEGRADED):
            component.fault_delay_factor = max(
                (w.intensity for w in actives), default=1.0
            )
        elif kind is FaultKind.ORIGIN_DOWN:
            component.origin_available = not actives
        elif kind is FaultKind.QUEUE_OVERLOAD:
            component.fault_slowdown = max(
                (w.intensity for w in actives), default=1.0
            )
        elif kind is FaultKind.SERVICE_BROWNOUT:
            if actives:
                component.set_brownout(
                    max(w.intensity for w in actives), self._service_rng
                )
            else:
                component.clear_brownout()
        elif kind is FaultKind.CRAWLER_STARVATION:
            component.fault_refill_factor = min(
                (w.intensity for w in actives), default=1.0
            )
            if activating is not None:
                component.drain()  # the quota is revoked, not just slowed

    # -- reporting -------------------------------------------------------

    @property
    def active_count(self) -> int:
        """Fault windows in effect right now."""
        return self._active_total

    @property
    def downtime_s(self) -> float:
        """Union time with >= 1 fault active since arming (up to now)."""
        extra = (
            self.simulator.now - self._down_since
            if self._down_since is not None
            else 0.0
        )
        return self._downtime_s + extra

    def availability(self) -> float:
        """Fraction of armed time with no fault active."""
        if self._armed_at is None:
            return 1.0
        elapsed = self.simulator.now - self._armed_at
        if elapsed <= 0:
            return 1.0
        return 1.0 - self.downtime_s / elapsed

    def _collect(self, registry: MetricsRegistry) -> None:
        self._g_availability.set(self.availability())


class _Transition:
    """One scheduled fault activation or clearing."""

    def __init__(self, injector: FaultInjector, window: FaultWindow, activate: bool) -> None:
        self._injector = injector
        self._window = window
        self._activate = activate

    def __call__(self) -> None:
        if self._activate:
            self._injector._activate(self._window)
        else:
            self._injector._deactivate(self._window)
