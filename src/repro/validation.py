"""The reproduction scorecard: programmatic paper-claim validation.

Every headline claim of the paper is encoded as a :class:`Claim` — an
experiment to run, a value to extract, and a quantitative acceptance
check.  :func:`validate` runs them all and returns a scorecard, giving
the reproduction a single self-check entry point::

    python -m repro --validate

The claims deliberately check the *shape* results (who wins, by what
factor, where structure appears), with tolerances wide enough to hold
across seeds but tight enough that a broken model fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.registry import ExperimentResult, run_experiment


@dataclass(frozen=True)
class Claim:
    """One paper claim and its acceptance test."""

    claim_id: str
    experiment_id: str
    description: str
    paper_value: str
    extract: Callable[[ExperimentResult], float]
    check: Callable[[float], bool]

    def evaluate(self, result: ExperimentResult) -> "ClaimOutcome":
        value = self.extract(result)
        return ClaimOutcome(claim=self, measured=value, passed=bool(self.check(value)))


@dataclass(frozen=True)
class ClaimOutcome:
    claim: Claim
    measured: float
    passed: bool


def _within(low: float, high: float) -> Callable[[float], bool]:
    return lambda value: low <= value <= high


CLAIMS: tuple[Claim, ...] = (
    Claim(
        "periscope-growth", "fig1",
        "Periscope daily broadcasts grow >3x over the window",
        ">3x",
        lambda r: r.data["periscope_growth"],
        lambda v: v > 2.8,
    ),
    Claim(
        "meerkat-decline", "fig1",
        "Meerkat daily broadcasts roughly halve in a month",
        "~0.5x",
        lambda r: r.data["meerkat_growth"],
        _within(0.3, 0.8),
    ),
    Claim(
        "durations-under-10min", "fig3",
        "85% of broadcasts last under 10 minutes",
        "0.85",
        lambda r: r.data["periscope_under_10min"],
        _within(0.80, 0.90),
    ),
    Claim(
        "meerkat-zero-viewers", "fig4",
        "~60% of Meerkat broadcasts get no viewers",
        "0.60",
        lambda r: r.data["meerkat_zero_viewer_fraction"],
        _within(0.52, 0.68),
    ),
    Claim(
        "hls-spillover-share", "fig4",
        "5.77% of Periscope broadcasts exceed the ~100-viewer RTMP tier",
        "0.0577",
        lambda r: r.data["periscope_some_hls_fraction"],
        _within(0.03, 0.09),
    ),
    Claim(
        "engagement-tail", "fig5",
        "~10% of broadcasts collect >1000 hearts",
        "0.10",
        lambda r: r.data["periscope_over_1000_hearts"],
        _within(0.05, 0.16),
    ),
    Claim(
        "viewer-skew", "fig6",
        "top 15% of viewers watch ~10x the median viewer",
        "10x",
        lambda r: r.data["periscope_top15_vs_median"],
        _within(5.0, 20.0),
    ),
    Claim(
        "follower-effect", "fig7",
        "followers and per-broadcast viewers positively correlated",
        "positive",
        lambda r: r.data["rank_correlation"],
        lambda v: v > 0.05,
    ),
    Claim(
        "graph-twitter-like", "table2",
        "follow graph assortativity is non-positive (Twitter-like)",
        "-0.057",
        lambda r: r.data["rows"]["Periscope (generated)"]["assortativity"],
        lambda v: v < 0.05,
    ),
    Claim(
        "rtmp-total-delay", "fig11",
        "RTMP end-to-end delay ~1.4 s",
        "1.4 s",
        lambda r: r.data["rtmp_total_s"],
        _within(0.8, 2.2),
    ),
    Claim(
        "hls-total-delay", "fig11",
        "HLS end-to-end delay ~11.7 s",
        "11.7 s",
        lambda r: r.data["hls_total_s"],
        _within(8.0, 15.0),
    ),
    Claim(
        "hls-rtmp-ratio", "fig11",
        "HLS delay is ~8.4x RTMP delay",
        "8.4x",
        lambda r: r.data["hls_rtmp_ratio"],
        _within(5.0, 14.0),
    ),
    Claim(
        "polling-half-interval", "fig12",
        "mean polling delay at a 2 s interval is ~1 s",
        "1.0 s",
        lambda r: r.data["mean_of_means"][2.0],
        _within(0.75, 1.25),
    ),
    Claim(
        "polling-resonance", "fig12",
        "per-broadcast means at the resonant 3 s interval spread widely",
        "varies 1-2 s",
        lambda r: r.data["spread_3s"],
        lambda v: v > 0.3,
    ),
    Claim(
        "rtmp-cpu-dominates", "fig14",
        "RTMP CPU at 500 viewers is several times HLS CPU",
        ">>HLS",
        lambda r: (
            r.data["curves"]["rtmp"][-1].cpu_percent
            / r.data["curves"]["hls"][-1].cpu_percent
        ),
        lambda v: v > 3.0,
    ),
    Claim(
        "colocation-gap", "fig15",
        "co-located DC pairs beat nearby pairs by >0.25 s",
        ">0.25 s",
        lambda r: r.data["colocation_gap_s"],
        lambda v: v > 0.2,
    ),
    Claim(
        "rtmp-smooth", "fig16",
        "RTMP playback is already smooth at P=1 s",
        "stall ~0",
        lambda r: r.data["median_stall"][1.0],
        lambda v: v < 0.05,
    ),
    Claim(
        "prebuffer-optimization", "fig17",
        "P=6 s saves multiple seconds of buffering delay vs P=9 s",
        "~3 s (~50%)",
        lambda r: r.data["delay_saving_s"],
        _within(1.5, 4.5),
    ),
    Claim(
        "attack-succeeds", "fig18",
        "the tampering attack succeeds against plaintext RTMP",
        "succeeds",
        lambda r: float(r.data["rows"]["attack"]["attack_succeeded"]),
        lambda v: v == 1.0,
    ),
    Claim(
        "defense-detects-all", "fig18",
        "the signature defense detects every tampered frame",
        "100%",
        lambda r: (
            r.data["rows"]["attack_with_defense"]["detected"]
            / max(r.data["rows"]["attack_with_defense"]["tampered"], 1)
        ),
        lambda v: v == 1.0,
    ),
)


def validate(claims: tuple[Claim, ...] = CLAIMS) -> list[ClaimOutcome]:
    """Run every claim's experiment (cached per experiment) and evaluate."""
    results: dict[str, ExperimentResult] = {}
    outcomes = []
    for claim in claims:
        if claim.experiment_id not in results:
            results[claim.experiment_id] = run_experiment(claim.experiment_id)
        outcomes.append(claim.evaluate(results[claim.experiment_id]))
    return outcomes


def render_scorecard(outcomes: list[ClaimOutcome]) -> str:
    """Human-readable pass/fail table."""
    lines = ["Reproduction scorecard", ""]
    width = max(len(o.claim.description) for o in outcomes)
    passed = 0
    for outcome in outcomes:
        mark = "PASS" if outcome.passed else "FAIL"
        passed += outcome.passed
        lines.append(
            f"[{mark}] {outcome.claim.description:<{width}}  "
            f"paper: {outcome.claim.paper_value:<12} measured: {outcome.measured:.3g}"
        )
    lines.append("")
    lines.append(f"{passed}/{len(outcomes)} claims hold")
    return "\n".join(lines)
