"""Event-driven overlay multicast sessions.

A session owns one broadcast's forwarding tree.  Viewers *join* by sending
a request up the hierarchy (we charge the setup its path RTT); after that,
every frame entering the root is pushed down the tree hop by hop with
inter-DC propagation, then across each viewer's last-mile link — no
polling anywhere, no per-viewer state above the leaves.

The measured quantities mirror the RTMP/HLS analyses so the three
architectures compare directly: per-viewer frame delay, join latency,
per-server connection state, and origin egress per frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.client.network import LastMileLink
from repro.geo.coordinates import GeoPoint
from repro.geo.latency import LatencyModel
from repro.overlay.tree import ForwardingNode, OverlayTree
from repro.protocols.frames import VideoFrame
from repro.simulation.engine import Simulator


@dataclass
class _AttachedViewer:
    viewer_id: int
    leaf: ForwardingNode
    downlink: LastMileLink
    join_completed_at: float
    frame_arrivals: dict[int, float] = field(default_factory=dict)
    frame_captures: dict[int, float] = field(default_factory=dict)


@dataclass(frozen=True)
class OverlayStats:
    """Comparison metrics for one finished session."""

    viewers: int
    mean_frame_delay_s: float
    p90_frame_delay_s: float
    mean_join_latency_s: float
    max_server_state: int
    root_state: int
    origin_egress_copies: int  # frame copies the root sends (vs #viewers for RTMP)
    tree_depth: int


class OverlayMulticastSession:
    """Runs one broadcast over the forwarding hierarchy."""

    def __init__(
        self,
        tree: OverlayTree,
        simulator: Simulator,
        latency: LatencyModel,
        rng: np.random.Generator,
        forwarding_overhead_s: float = 0.004,
    ) -> None:
        if forwarding_overhead_s < 0:
            raise ValueError("forwarding overhead must be non-negative")
        self.tree = tree
        self.simulator = simulator
        self.latency = latency
        self.rng = rng
        self.forwarding_overhead_s = forwarding_overhead_s
        self._viewers: dict[int, _AttachedViewer] = {}
        self._frames_published = 0

    # -- join path ---------------------------------------------------------

    def join(self, viewer_id: int, location: GeoPoint, downlink: LastMileLink) -> float:
        """Attach a viewer; returns the join-setup latency.

        The request travels leaf → hub → root and the grant returns, so
        setup pays one RTT along the path (§8: "setting up a reverse
        forwarding path in the process").
        """
        if viewer_id in self._viewers:
            raise ValueError(f"viewer {viewer_id} already joined")
        leaf = self.tree.attach_viewer(viewer_id, location)
        setup = self.latency.rtt_s(location, leaf.datacenter.location, self.rng)
        node = leaf
        while node.parent is not None:
            setup += self.latency.rtt_s(
                node.datacenter.location, node.parent.datacenter.location, self.rng
            )
            node = node.parent
        completed = self.simulator.now + setup
        self._viewers[viewer_id] = _AttachedViewer(
            viewer_id=viewer_id,
            leaf=leaf,
            downlink=downlink,
            join_completed_at=completed,
        )
        return setup

    # -- data path -----------------------------------------------------------

    def publish_frame(self, frame: VideoFrame) -> None:
        """Frame arrives at the root (from the ingest server); push down."""
        self._frames_published += 1
        self._forward(self.tree.root, frame, self.simulator.now)

    def _forward(self, node: ForwardingNode, frame: VideoFrame, now: float) -> None:
        for child in node.children:
            hop = self.forwarding_overhead_s + self.latency.one_way_s(
                node.datacenter.location, child.datacenter.location, self.rng
            )
            self.simulator.schedule_at(
                max(now + hop, self.simulator.now),
                _Forward(self, child, frame),
                label=f"overlay:{child.datacenter.name}:{frame.sequence}",
            )
        for viewer_id in node.viewer_ids:
            viewer = self._viewers[viewer_id]
            arrival = viewer.downlink.send(now)
            self.simulator.schedule_at(
                max(arrival, self.simulator.now),
                _Deliver(self, viewer, frame),
                label=f"overlay-dl:{viewer_id}:{frame.sequence}",
            )

    # -- results ---------------------------------------------------------------

    def stats(self) -> OverlayStats:
        if not self._viewers:
            raise ValueError("no viewers joined the session")
        delays = []
        joins = []
        for viewer in self._viewers.values():
            joins.append(viewer.join_completed_at)
            for sequence, arrival in viewer.frame_arrivals.items():
                delays.append(arrival - viewer.frame_captures[sequence])
        if not delays:
            raise ValueError("no frames were delivered")
        delay_array = np.array(delays)
        depth = max(leaf.depth for leaf in self.tree.leaves) if self.tree.leaves else 0
        return OverlayStats(
            viewers=len(self._viewers),
            mean_frame_delay_s=float(delay_array.mean()),
            p90_frame_delay_s=float(np.percentile(delay_array, 90)),
            mean_join_latency_s=float(np.mean(joins)),
            max_server_state=self.tree.max_forwarding_state,
            root_state=self.tree.root.forwarding_state,
            origin_egress_copies=len(self.tree.root.children)
            + len(self.tree.root.viewer_ids),
            tree_depth=depth,
        )

    def viewer_delays(self, viewer_id: int) -> np.ndarray:
        viewer = self._viewers[viewer_id]
        sequences = sorted(viewer.frame_arrivals)
        return np.array(
            [viewer.frame_arrivals[s] - viewer.frame_captures[s] for s in sequences]
        )


class _Forward:
    def __init__(self, session: OverlayMulticastSession, node: ForwardingNode, frame: VideoFrame) -> None:
        self._session = session
        self._node = node
        self._frame = frame

    def __call__(self) -> None:
        self._session._forward(self._node, self._frame, self._session.simulator.now)


class _Deliver:
    def __init__(
        self,
        session: OverlayMulticastSession,
        viewer: _AttachedViewer,
        frame: VideoFrame,
    ) -> None:
        self._session = session
        self._viewer = viewer
        self._frame = frame

    def __call__(self) -> None:
        self._viewer.frame_arrivals[self._frame.sequence] = self._session.simulator.now
        self._viewer.frame_captures[self._frame.sequence] = self._frame.capture_time


def fail_and_repair(session: OverlayMulticastSession, node: ForwardingNode) -> None:
    """Fail a forwarding server mid-broadcast and repair the tree.

    Viewers attached to the failed node move with it to the parent; the
    session keeps pushing frames without interruption — the property §8's
    "reverse forwarding path" setup makes cheap to restore.
    """
    from repro.overlay.tree import repair_after_failure

    repair_after_failure(session.tree, node)
    # Re-point attached-viewer leaf records at their new server.
    for viewer in session._viewers.values():
        if viewer.leaf is node and node.parent is None:
            # The viewer moved to the failed node's old parent; find it by
            # membership (the repair already moved the viewer_ids).
            for candidate in session.tree.all_nodes():
                if viewer.viewer_id in candidate.viewer_ids:
                    viewer.leaf = candidate
                    break
