"""Geographically clustered forwarding hierarchy.

Structure (per broadcast):

* the **root** is the broadcaster's ingest datacenter (same nearest-Wowza
  assignment as the production system),
* one **hub** per continent — the forwarding server at the POP closest to
  the continent's other POPs,
* every remaining POP is a **leaf** under its continental hub,
* viewers attach to their nearest leaf (anycast, as for HLS).

Forwarding state is per-*child*, not per-viewer: the root holds one
connection per continent, a hub one per POP in its continent, and only
leaves hold per-viewer connections — which is exactly the property §8
wants ("efficiently forward video frames without per-viewer state or
periodic polling").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.geo.coordinates import GeoPoint
from repro.geo.datacenters import (
    Datacenter,
    FASTLY_DATACENTERS,
    nearest_datacenter,
)


@dataclass
class ForwardingNode:
    """One forwarding server in the tree."""

    datacenter: Datacenter
    parent: Optional["ForwardingNode"] = None
    children: list["ForwardingNode"] = field(default_factory=list)
    viewer_ids: list[int] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def forwarding_state(self) -> int:
        """Connections this server maintains (children + attached viewers)."""
        return len(self.children) + len(self.viewer_ids)

    @property
    def depth(self) -> int:
        node: Optional[ForwardingNode] = self
        depth = 0
        while node is not None and node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def add_child(self, child: "ForwardingNode") -> None:
        if child.parent is not None:
            raise ValueError(f"{child.datacenter.name} already has a parent")
        child.parent = self
        self.children.append(child)

    def path_to_root(self) -> list["ForwardingNode"]:
        path = [self]
        node = self
        while node.parent is not None:
            node = node.parent
            path.append(node)
        return path


@dataclass
class OverlayTree:
    """The per-broadcast forwarding hierarchy."""

    root: ForwardingNode
    leaves: list[ForwardingNode]

    def all_nodes(self) -> list[ForwardingNode]:
        nodes: list[ForwardingNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            stack.extend(node.children)
        return nodes

    def leaf_for(self, location: GeoPoint) -> ForwardingNode:
        """Nearest attachable server (leaves plus hubs — a viewer near a
        hub's city attaches directly to it)."""
        attachable = {id(node): node for node in self.leaves}
        for node in self.all_nodes():
            attachable.setdefault(id(node), node)
        nodes = list(attachable.values())
        return min(nodes, key=lambda n: n.datacenter.location.distance_km(location))

    def attach_viewer(self, viewer_id: int, location: GeoPoint) -> ForwardingNode:
        """Attach a viewer at the nearest server; returns the leaf used."""
        leaf = self.leaf_for(location)
        leaf.viewer_ids.append(viewer_id)
        return leaf

    @property
    def max_forwarding_state(self) -> int:
        """Worst-case per-server connection count across the tree."""
        return max(node.forwarding_state for node in self.all_nodes())

    @property
    def total_viewers(self) -> int:
        return sum(len(node.viewer_ids) for node in self.all_nodes())


def _continent_hub(pops: Sequence[Datacenter]) -> Datacenter:
    """The POP minimizing total distance to its continent's other POPs."""
    if not pops:
        raise ValueError("no POPs on this continent")
    return min(
        pops,
        key=lambda candidate: sum(candidate.distance_km(other) for other in pops),
    )


def build_geographic_tree(
    root_datacenter: Datacenter,
    pops: Sequence[Datacenter] = FASTLY_DATACENTERS,
) -> OverlayTree:
    """Build the root → continental hubs → leaf POPs hierarchy."""
    root = ForwardingNode(datacenter=root_datacenter)

    by_continent: dict[str, list[Datacenter]] = {}
    for pop in pops:
        by_continent.setdefault(pop.continent, []).append(pop)

    leaves: list[ForwardingNode] = []
    for continent_pops in by_continent.values():
        hub_dc = _continent_hub(continent_pops)
        hub = ForwardingNode(datacenter=hub_dc)
        root.add_child(hub)
        for pop in continent_pops:
            if pop is hub_dc:
                continue
            leaf = ForwardingNode(datacenter=pop)
            hub.add_child(leaf)
            leaves.append(leaf)
        # A hub with no other POPs on its continent is itself a leaf.
        if not hub.children:
            leaves.append(hub)
    return OverlayTree(root=root, leaves=leaves)


def nearest_pop(location: GeoPoint, pops: Sequence[Datacenter] = FASTLY_DATACENTERS) -> Datacenter:
    """Convenience anycast helper matching the HLS viewer assignment."""
    return nearest_datacenter(location, pops)


def repair_after_failure(tree: OverlayTree, failed: ForwardingNode) -> list[ForwardingNode]:
    """Remove a failed forwarding server and re-parent its subtree.

    §8's design must survive server churn: children of the failed node
    (and its directly attached viewers) re-attach to the failed node's
    parent — one level up the hierarchy — preserving the forwarding
    invariant that every node has a path to the root.  Returns the nodes
    that were re-parented.

    The root cannot fail here (ingest failover is a different mechanism).
    """
    if failed.is_root or failed.parent is None:
        raise ValueError("cannot repair around the root")
    parent = failed.parent
    parent.children.remove(failed)
    moved = list(failed.children)
    for child in moved:
        child.parent = None
        parent.add_child(child)
    failed.children = []
    # Orphaned viewers re-join at the parent.
    parent.viewer_ids.extend(failed.viewer_ids)
    failed.viewer_ids = []
    failed.parent = None
    if failed in tree.leaves:
        tree.leaves.remove(failed)
    return moved
