"""The paper's proposed alternative delivery architecture (§8).

The discussion section sketches a way out of the scalability/latency
tension: "a hierarchy of geographically clustered forwarding servers"
where a viewer's join request travels up the hierarchy setting up a
reverse forwarding path, after which video frames are *pushed* down the
tree "without per-viewer state [at the origin] or periodic polling" — a
receiver-driven overlay multicast in the spirit of Scribe and Akamai's
streaming CDN, but latency-aware so interactivity survives.

This package implements that design on the same substrates as the rest of
the reproduction, so it can be compared head-to-head against the RTMP and
HLS tiers (see ``benchmarks/test_ablation_overlay.py`` and
``examples/overlay_multicast.py``).
"""

from repro.overlay.tree import ForwardingNode, OverlayTree, build_geographic_tree
from repro.overlay.session import OverlayMulticastSession, OverlayStats

__all__ = [
    "ForwardingNode",
    "OverlayTree",
    "build_geographic_tree",
    "OverlayMulticastSession",
    "OverlayStats",
]
