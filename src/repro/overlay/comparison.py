"""Head-to-head comparison of the three delivery architectures (§8).

Runs the same broadcast and the same geographically distributed audience
through:

* **RTMP direct push** — the origin keeps one connection per viewer and
  pushes every frame over the WAN (Periscope's interactive tier),
* **HLS chunked polling** — viewers poll their nearest edge POP
  (Periscope's scalable tier),
* **overlay multicast** — the §8 proposal: frames pushed down a
  geographic forwarding hierarchy; per-viewer state only at the leaves.

All three report network delay (capture to viewer arrival, buffering
excluded) and the server-side cost metrics that motivated the paper's
discussion: origin connection state, origin egress copies per frame, and
the worst per-server fan-out anywhere in the system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdn.assignment import CdnAssignment
from repro.cdn.fastly import FastlyEdge
from repro.cdn.transfer import TransferModel
from repro.cdn.wowza import WowzaIngest
from repro.client.broadcaster import BroadcasterClient
from repro.client.network import LastMileLink
from repro.client.viewer_client import HlsViewerClient, RtmpViewerClient
from repro.crawler.delay_crawler import DelayCrawler
from repro.geo.coordinates import GeoPoint
from repro.geo.regions import sample_user_location
from repro.overlay.session import OverlayMulticastSession
from repro.overlay.tree import build_geographic_tree
from repro.protocols.frames import VideoFrame
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams


@dataclass(frozen=True)
class ArchitectureResult:
    """One architecture's outcome on the shared scenario."""

    name: str
    mean_delay_s: float
    p90_delay_s: float
    origin_state: int  # connections held by the origin server
    origin_egress_copies: int  # frame copies leaving the origin
    max_server_state: int  # worst fan-out at any single server

    def as_row(self) -> dict[str, float]:
        return {
            "mean_delay_s": round(self.mean_delay_s, 3),
            "p90_delay_s": round(self.p90_delay_s, 3),
            "origin_state": self.origin_state,
            "origin_egress": self.origin_egress_copies,
            "max_server_state": self.max_server_state,
        }


class _OverlayIngestBridge:
    """RtmpSubscriber feeding ingested frames into the overlay root."""

    def __init__(self, session: OverlayMulticastSession) -> None:
        self._session = session

    def push_frame(self, broadcast_id: int, frame: VideoFrame, pushed_at: float) -> None:
        del broadcast_id, pushed_at
        self._session.publish_frame(frame)


def compare_architectures(
    n_viewers: int = 150,
    duration_s: float = 20.0,
    seed: int = 8,
    broadcaster_location: GeoPoint | None = None,
) -> dict[str, ArchitectureResult]:
    """Run the shared scenario through all three architectures."""
    if n_viewers <= 0:
        raise ValueError("need at least one viewer")
    streams = RandomStreams(seed)
    placement = streams.get("placement")
    viewer_locations = [sample_user_location(placement) for _ in range(n_viewers)]
    origin_location = broadcaster_location or GeoPoint(34.05, -118.24)

    assignment = CdnAssignment()
    transfer = TransferModel()
    wowza_dc = assignment.wowza_for_broadcaster(origin_location)

    results: dict[str, ArchitectureResult] = {}

    # ---- RTMP direct push -------------------------------------------------
    simulator = Simulator()
    wowza = WowzaIngest(wowza_dc, simulator)
    broadcaster = BroadcasterClient(
        broadcast_id=1, token="cmp", simulator=simulator, wowza=wowza,
        uplink=LastMileLink.stable_wifi(streams.get("rtmp/uplink")),
    )
    broadcaster.start(start_time=0.0, duration_s=duration_s)
    rtmp_viewers = []
    for index, location in enumerate(viewer_locations):
        propagation = transfer.latency.propagation_s(wowza_dc.location, location)
        downlink = LastMileLink(
            rng=streams.get(f"rtmp/down/{index}"),
            base_delay_s=0.03 + propagation,
            jitter_sigma=0.15,
        )
        viewer = RtmpViewerClient(
            viewer_id=index, broadcast_id=1, simulator=simulator, downlink=downlink
        )
        viewer.attach(wowza)
        rtmp_viewers.append(viewer)
    simulator.run(until=duration_s + 30.0)
    delays = np.concatenate([v.end_to_end_delays() for v in rtmp_viewers])
    results["rtmp"] = ArchitectureResult(
        name="rtmp",
        mean_delay_s=float(delays.mean()),
        p90_delay_s=float(np.percentile(delays, 90)),
        origin_state=n_viewers,
        origin_egress_copies=n_viewers,
        max_server_state=n_viewers,
    )

    # ---- HLS chunked polling -----------------------------------------------
    simulator = Simulator()
    wowza = WowzaIngest(wowza_dc, simulator)
    broadcaster = BroadcasterClient(
        broadcast_id=1, token="cmp", simulator=simulator, wowza=wowza,
        uplink=LastMileLink.stable_wifi(streams.get("hls/uplink")),
    )
    edges: dict[str, FastlyEdge] = {}
    pop_viewer_counts: dict[str, int] = {}
    hls_viewers = []
    poll_rng = streams.get("hls/poll")
    for index, location in enumerate(viewer_locations):
        pop = assignment.fastly_for_viewer(location)
        if pop.name not in edges:
            edge = FastlyEdge(pop, simulator, transfer, streams.get(f"hls/edge/{pop.name}"))
            edge.attach_broadcast(1, wowza)
            edges[pop.name] = edge
        pop_viewer_counts[pop.name] = pop_viewer_counts.get(pop.name, 0) + 1
        propagation = transfer.latency.propagation_s(pop.location, location)
        downlink = LastMileLink(
            rng=streams.get(f"hls/down/{index}"),
            base_delay_s=0.03 + propagation,
            jitter_sigma=0.15,
        )
        viewer = HlsViewerClient(
            viewer_id=index, broadcast_id=1, simulator=simulator,
            edge=edges[pop.name], downlink=downlink,
            poll_interval_s=float(poll_rng.uniform(2.0, 2.8)),
            stop_after=duration_s + 20.0,
        )
        viewer.start_polling(first_poll_at=float(poll_rng.uniform(0.0, 2.8)))
        hls_viewers.append(viewer)
    # The production co-located crawler keeps transfers prompt.
    crawler = DelayCrawler(broadcast_id=1, simulator=simulator, stop_after=duration_s + 20.0)
    colocated = assignment.fastly_for_viewer(wowza_dc.location)
    if colocated.name not in edges:
        edge = FastlyEdge(colocated, simulator, transfer, streams.get("hls/edge/co"))
        edge.attach_broadcast(1, wowza)
        edges[colocated.name] = edge
    crawler.attach_hls(edges[colocated.name])
    broadcaster.start(start_time=0.0, duration_s=duration_s)
    simulator.run(until=duration_s + 40.0)
    delays = np.concatenate(
        [v.end_to_end_delays() for v in hls_viewers if v.chunk_arrivals]
    )
    results["hls"] = ArchitectureResult(
        name="hls",
        mean_delay_s=float(delays.mean()),
        p90_delay_s=float(np.percentile(delays, 90)),
        origin_state=len(edges),  # one origin-pull relationship per POP
        origin_egress_copies=len(edges),
        max_server_state=max(pop_viewer_counts.values()),
    )

    # ---- Overlay multicast ----------------------------------------------------
    simulator = Simulator()
    wowza = WowzaIngest(wowza_dc, simulator)
    broadcaster = BroadcasterClient(
        broadcast_id=1, token="cmp", simulator=simulator, wowza=wowza,
        uplink=LastMileLink.stable_wifi(streams.get("overlay/uplink")),
    )
    tree = build_geographic_tree(wowza_dc)
    session = OverlayMulticastSession(
        tree=tree, simulator=simulator, latency=transfer.latency,
        rng=streams.get("overlay/net"),
    )
    for index, location in enumerate(viewer_locations):
        downlink = LastMileLink(
            rng=streams.get(f"overlay/down/{index}"),
            base_delay_s=0.03,
            jitter_sigma=0.15,
        )
        session.join(index, location, downlink)
    # start() registers the broadcast at the ingest server; the bridge then
    # subscribes so every ingested frame enters the overlay root.
    broadcaster.start(start_time=0.0, duration_s=duration_s)
    wowza.subscribe_rtmp(1, _OverlayIngestBridge(session))
    simulator.run(until=duration_s + 30.0)
    stats = session.stats()
    results["overlay"] = ArchitectureResult(
        name="overlay",
        mean_delay_s=stats.mean_frame_delay_s,
        p90_delay_s=stats.p90_frame_delay_s,
        origin_state=stats.root_state,
        origin_egress_copies=stats.origin_egress_copies,
        max_server_state=stats.max_server_state,
    )
    return results
