"""Token-bucket rate limiting.

Both sides of the measurement hit rate limits: Periscope whitelisted the
authors' IP range but the allotted rate eventually could not keep up with
broadcast growth (§3.1 footnote), and Meerkat asked the authors to stop
after a month of measurable server load.  The crawler components accept a
token bucket so those constraints can be reproduced and their effect on
coverage studied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY


class RateLimitExceeded(Exception):
    """Raised when a request is attempted with an empty bucket."""


@dataclass
class TokenBucket:
    """A standard token bucket driven by explicit (simulated) time.

    ``capacity`` tokens maximum, refilled at ``rate_per_s``.  Call
    :meth:`try_acquire` with the current simulated time.
    """

    rate_per_s: float
    capacity: float
    metrics: MetricsRegistry = field(default=NULL_REGISTRY, repr=False)
    #: Fault-injection surface: refill-rate multiplier in (0, 1] while the
    #: bucket is starved (1.0 = healthy).  Set by ``repro.faults``.
    fault_refill_factor: float = field(default=1.0, init=False, repr=False)
    _tokens: float = field(init=False)
    _last_refill: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("rate must be positive")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        self._tokens = self.capacity
        self._m_granted = self.metrics.counter("crawler.ratelimit.granted", help="acquisitions that got tokens")
        self._m_throttled = self.metrics.counter("crawler.ratelimit.throttled", help="acquisitions denied for lack of tokens")

    @property
    def effective_rate_per_s(self) -> float:
        """The refill rate after any injected starvation factor."""
        return self.rate_per_s * self.fault_refill_factor

    def _refill(self, now: float) -> None:
        if now < self._last_refill:
            raise ValueError("time went backwards")
        self._tokens = min(
            self.capacity,
            self._tokens + (now - self._last_refill) * self.effective_rate_per_s,
        )
        self._last_refill = now

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; returns False when throttled."""
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        if tokens > self.capacity:
            raise ValueError(
                f"{tokens} token(s) requested but capacity is {self.capacity}; "
                "the request can never be satisfied"
            )
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            self._m_granted.inc()
            return True
        self._m_throttled.inc()
        return False

    def time_until_available(self, now: float, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0.0 when they already
        are).  Pure query: no state is mutated, so a retry policy can use it
        to schedule the next attempt instead of blind polling.
        """
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        if tokens > self.capacity:
            raise ValueError(
                f"{tokens} token(s) requested but capacity is {self.capacity}; "
                "the request can never be satisfied"
            )
        if now < self._last_refill:
            raise ValueError("time went backwards")
        tokens_now = min(
            self.capacity,
            self._tokens + (now - self._last_refill) * self.effective_rate_per_s,
        )
        if tokens_now >= tokens:
            return 0.0
        return (tokens - tokens_now) / self.effective_rate_per_s

    def acquire(self, now: float, tokens: float = 1.0) -> None:
        """Take ``tokens`` or raise :class:`RateLimitExceeded`."""
        if not self.try_acquire(now, tokens):
            raise RateLimitExceeded(
                f"{tokens} token(s) requested, {self._tokens:.2f} available"
            )

    def drain(self) -> None:
        """Remove all tokens immediately (fault injection: quota revoked)."""
        self._tokens = 0.0

    @property
    def available(self) -> float:
        return self._tokens
