"""Page-aligned, memory-mappable array bundles (the zero-copy format).

One tiny on-disk format serves three jobs:

* shipping the frozen :class:`~repro.workload.trace.ShardContext` to
  generation workers (:mod:`repro.parallel.generate`) — the parent
  writes the context's arrays once and every worker attaches read-only
  ``np.memmap`` views instead of unpickling megabyte buffers through
  ``initargs``,
* returning shard output — workers write their day columns to per-shard
  files and the parent maps them back, so the process boundary costs a
  header parse and page mappings, not a pickle of every column,
* the uncompressed ``mmap`` dataset-cache format and the follow-graph
  cache (:mod:`repro.crawler.storage`, :mod:`repro.parallel.generate`),
  which let paper-scale datasets stream from disk instead of living in
  RAM.

Layout: one JSON header line (format tag, page size, per-array name /
dtype / shape / relative offset, caller metadata), space-padded to a
page boundary, followed by each array's raw little-endian bytes at
page-aligned offsets.  Writes are deterministic — no timestamps, no
environment — so identical arrays always produce identical files, which
the byte-identity suite relies on.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Mapping, Optional, Union

import numpy as np

PathLike = Union[str, Path]

#: Alignment for the header block and every array block.  4 KiB covers
#: every mainstream page size except Apple Silicon's 16 KiB — alignment
#: is a performance nicety, not a correctness requirement, because
#: ``np.memmap`` re-aligns offsets to ``mmap.ALLOCATIONGRANULARITY``.
PAGE_SIZE = 4096

ARRAY_FILE_VERSION = 1
_MAGIC = "repro-arrays"


def _aligned(n: int) -> int:
    return (n + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE


def _disk_dtype(array: np.ndarray) -> np.dtype:
    """The on-disk dtype: little-endian, never objects."""
    if array.dtype.hasobject:
        raise ValueError(f"cannot store object arrays (dtype {array.dtype})")
    return array.dtype.newbyteorder("<") if array.dtype.byteorder == ">" else array.dtype


def write_arrays(
    path: PathLike,
    arrays: Mapping[str, np.ndarray],
    meta: Optional[dict] = None,
) -> None:
    """Write named arrays as one page-aligned, mappable file.

    Insertion order of ``arrays`` is preserved; the write is
    byte-deterministic for fixed inputs.
    """
    entries = []
    blocks = []
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        dtype = _disk_dtype(array)
        array = array.astype(dtype, copy=False)
        entries.append(
            {
                "name": str(name),
                "dtype": dtype.str,
                "shape": list(array.shape),
                "offset": offset,
            }
        )
        blocks.append(array)
        offset += _aligned(array.nbytes)

    header = {
        "format": _MAGIC,
        "format_version": ARRAY_FILE_VERSION,
        "page_size": PAGE_SIZE,
        "data_size": offset,
        "meta": meta or {},
        "arrays": entries,
    }
    encoded = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("ascii")
    # Pad the header line itself to a page boundary: readers take the
    # first line, json ignores the trailing spaces, and the data section
    # starts exactly at ``len(first line)``.
    header_line = encoded + b" " * (_aligned(len(encoded) + 1) - len(encoded) - 1) + b"\n"

    with open(path, "wb") as handle:
        handle.write(header_line)
        for entry, array in zip(entries, blocks):
            handle.write(array.tobytes())
            handle.write(b"\x00" * (_aligned(array.nbytes) - array.nbytes))


def read_arrays(path: PathLike) -> tuple[dict[str, np.ndarray], dict]:
    """Map a :func:`write_arrays` file back as read-only array views.

    Returns ``(arrays, meta)``.  Arrays are ``np.memmap`` views (zero
    copy); on POSIX they stay valid even if the file is later unlinked.
    Raises ``ValueError`` on any structural mismatch — wrong magic or
    version, truncation, or trailing bytes.
    """
    path = Path(path)
    with path.open("rb") as handle:
        header_line = handle.readline()
    if not header_line.endswith(b"\n"):
        raise ValueError(f"{path}: truncated array-file header")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: malformed array-file header: {error}") from None
    if not isinstance(header, dict) or header.get("format") != _MAGIC:
        raise ValueError(f"{path}: not a {_MAGIC} file")
    if header.get("format_version") != ARRAY_FILE_VERSION:
        raise ValueError(
            f"{path}: unsupported array-file version {header.get('format_version')!r}"
        )

    data_start = len(header_line)
    expected = data_start + int(header["data_size"])
    actual = path.stat().st_size
    if actual < expected:
        raise ValueError(f"{path}: truncated array file ({actual} < {expected} bytes)")
    if actual > expected:
        raise ValueError(f"{path}: trailing bytes after arrays ({actual} > {expected})")

    arrays: dict[str, np.ndarray] = {}
    for entry in header["arrays"]:
        dtype = np.dtype(entry["dtype"])
        if dtype.hasobject:
            raise ValueError(f"{path}: refusing object dtype {entry['dtype']!r}")
        shape = tuple(int(dim) for dim in entry["shape"])
        count = math.prod(shape)
        start = data_start + int(entry["offset"])
        if start + count * dtype.itemsize > expected:
            raise ValueError(f"{path}: array {entry['name']!r} overruns the file")
        if count == 0:
            arrays[entry["name"]] = np.empty(shape, dtype=dtype)
        else:
            arrays[entry["name"]] = np.memmap(
                path, dtype=dtype, mode="r", offset=start, shape=shape
            )
    return arrays, header.get("meta", {})
