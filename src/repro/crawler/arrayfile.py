"""Page-aligned, memory-mappable array bundles (the zero-copy format).

One tiny on-disk format serves three jobs:

* shipping the frozen :class:`~repro.workload.trace.ShardContext` to
  generation workers (:mod:`repro.parallel.generate`) — the parent
  writes the context's arrays once and every worker attaches read-only
  ``np.memmap`` views instead of unpickling megabyte buffers through
  ``initargs``,
* returning shard output — workers write their day columns to per-shard
  files and the parent maps them back, so the process boundary costs a
  header parse and page mappings, not a pickle of every column,
* the uncompressed ``mmap`` dataset-cache format and the follow-graph
  cache (:mod:`repro.crawler.storage`, :mod:`repro.parallel.generate`),
  which let paper-scale datasets stream from disk instead of living in
  RAM.

Layout: one JSON header line (format tag, page size, per-array name /
dtype / shape / relative offset, caller metadata), space-padded to a
page boundary, followed by each array's raw little-endian bytes at
page-aligned offsets, followed by a checksum *footer* line — a JSON
record of each block's CRC-32 — itself padded to a page boundary.  The
footer is what lets the resumable-generation layer
(:mod:`repro.parallel.checkpoint`) tell a valid shard file from one a
crashed writer or a flaky disk corrupted: ``read_arrays(verify=True)``
recomputes every block checksum against it.  Files written before the
footer existed (``footer_size`` absent from the header) still load —
they simply have nothing to verify against.

Writes are deterministic — no timestamps, no environment — so identical
arrays always produce identical files, which the byte-identity suite
relies on.
"""

from __future__ import annotations

import json
import math
import zlib
from pathlib import Path
from typing import Mapping, Optional, Union

import numpy as np

PathLike = Union[str, Path]

#: Alignment for the header block and every array block.  4 KiB covers
#: every mainstream page size except Apple Silicon's 16 KiB — alignment
#: is a performance nicety, not a correctness requirement, because
#: ``np.memmap`` re-aligns offsets to ``mmap.ALLOCATIONGRANULARITY``.
PAGE_SIZE = 4096

ARRAY_FILE_VERSION = 1
_MAGIC = "repro-arrays"
_FOOTER_MAGIC = "repro-arrays-footer"


def _aligned(n: int) -> int:
    return (n + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE


def _padded_json_line(payload: dict) -> bytes:
    """Canonical JSON, space-padded to a page boundary, newline-terminated.

    Readers take the first line; JSON ignores the trailing spaces, and the
    next section starts exactly at ``len(line)``.
    """
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("ascii")
    return encoded + b" " * (_aligned(len(encoded) + 1) - len(encoded) - 1) + b"\n"


def _disk_dtype(array: np.ndarray) -> np.dtype:
    """The on-disk dtype: little-endian, never objects."""
    if array.dtype.hasobject:
        raise ValueError(f"cannot store object arrays (dtype {array.dtype})")
    return array.dtype.newbyteorder("<") if array.dtype.byteorder == ">" else array.dtype


def write_arrays(
    path: PathLike,
    arrays: Mapping[str, np.ndarray],
    meta: Optional[dict] = None,
    footer: bool = True,
) -> None:
    """Write named arrays as one page-aligned, mappable file.

    Insertion order of ``arrays`` is preserved; the write is
    byte-deterministic for fixed inputs.  ``footer=True`` (the default)
    appends the per-block CRC-32 checksum footer that
    ``read_arrays(verify=True)`` validates against; ``footer=False``
    reproduces the pre-footer format (and is how the legacy-file tests
    manufacture old files).
    """
    entries = []
    blocks = []
    checksums: dict[str, int] = {}
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        dtype = _disk_dtype(array)
        array = array.astype(dtype, copy=False)
        entries.append(
            {
                "name": str(name),
                "dtype": dtype.str,
                "shape": list(array.shape),
                "offset": offset,
            }
        )
        blocks.append(array)
        # CRC over the block's raw bytes (buffer protocol: no copy).
        checksums[str(name)] = zlib.crc32(array)
        offset += _aligned(array.nbytes)

    footer_line = b""
    if footer:
        footer_line = _padded_json_line({"format": _FOOTER_MAGIC, "crc32": checksums})

    header = {
        "format": _MAGIC,
        "format_version": ARRAY_FILE_VERSION,
        "page_size": PAGE_SIZE,
        "data_size": offset,
        "meta": meta or {},
        "arrays": entries,
    }
    if footer:
        header["footer_size"] = len(footer_line)
    header_line = _padded_json_line(header)

    with open(path, "wb") as handle:
        handle.write(header_line)
        for entry, array in zip(entries, blocks):
            handle.write(array.tobytes())
            handle.write(b"\x00" * (_aligned(array.nbytes) - array.nbytes))
        handle.write(footer_line)


def read_arrays(path: PathLike, verify: bool = False) -> tuple[dict[str, np.ndarray], dict]:
    """Map a :func:`write_arrays` file back as read-only array views.

    Returns ``(arrays, meta)``.  Arrays are ``np.memmap`` views (zero
    copy); on POSIX they stay valid even if the file is later unlinked.
    Raises ``ValueError`` on any structural mismatch — wrong magic or
    version, truncation, or trailing bytes.

    ``verify=True`` additionally recomputes every block's CRC-32 against
    the checksum footer and raises ``ValueError`` naming the first
    corrupt array — the probe resumable generation runs before trusting
    a checkpointed shard file.  It costs a full read of the data, so the
    default (mapping-only) path never pays it.  Files written before the
    footer existed carry no checksums and verify vacuously.
    """
    path = Path(path)
    with path.open("rb") as handle:
        header_line = handle.readline()
    if not header_line.endswith(b"\n"):
        raise ValueError(f"{path}: truncated array-file header")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: malformed array-file header: {error}") from None
    if not isinstance(header, dict) or header.get("format") != _MAGIC:
        raise ValueError(f"{path}: not a {_MAGIC} file")
    if header.get("format_version") != ARRAY_FILE_VERSION:
        raise ValueError(
            f"{path}: unsupported array-file version {header.get('format_version')!r}"
        )

    data_start = len(header_line)
    footer_size = int(header.get("footer_size", 0))
    data_end = data_start + int(header["data_size"])
    expected = data_end + footer_size
    actual = path.stat().st_size
    if actual < expected:
        raise ValueError(f"{path}: truncated array file ({actual} < {expected} bytes)")
    if actual > expected:
        raise ValueError(f"{path}: trailing bytes after arrays ({actual} > {expected})")

    arrays: dict[str, np.ndarray] = {}
    for entry in header["arrays"]:
        dtype = np.dtype(entry["dtype"])
        if dtype.hasobject:
            raise ValueError(f"{path}: refusing object dtype {entry['dtype']!r}")
        shape = tuple(int(dim) for dim in entry["shape"])
        count = math.prod(shape)
        start = data_start + int(entry["offset"])
        if start + count * dtype.itemsize > data_end:
            raise ValueError(f"{path}: array {entry['name']!r} overruns the file")
        if count == 0:
            arrays[entry["name"]] = np.empty(shape, dtype=dtype)
        else:
            arrays[entry["name"]] = np.memmap(
                path, dtype=dtype, mode="r", offset=start, shape=shape
            )

    if verify and footer_size:
        _verify_checksums(path, arrays, _read_footer(path, data_end, footer_size))
    return arrays, header.get("meta", {})


def _read_footer(path: Path, data_end: int, footer_size: int) -> dict[str, int]:
    """Parse the checksum footer; raises ``ValueError`` when malformed."""
    with path.open("rb") as handle:
        handle.seek(data_end)
        footer_line = handle.read(footer_size)
    try:
        footer = json.loads(footer_line)
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: malformed checksum footer: {error}") from None
    if not isinstance(footer, dict) or footer.get("format") != _FOOTER_MAGIC:
        raise ValueError(f"{path}: not a {_FOOTER_MAGIC} footer")
    checksums = footer.get("crc32")
    if not isinstance(checksums, dict):
        raise ValueError(f"{path}: checksum footer has no crc32 table")
    return checksums


def _verify_checksums(
    path: Path, arrays: Mapping[str, np.ndarray], checksums: Mapping[str, int]
) -> None:
    for name, array in arrays.items():
        recorded = checksums.get(name)
        if recorded is None:
            raise ValueError(f"{path}: array {name!r} missing from checksum footer")
        computed = zlib.crc32(np.ascontiguousarray(array))
        if computed != int(recorded):
            raise ValueError(
                f"{path}: checksum mismatch for array {name!r} "
                f"(crc32 {computed} != recorded {recorded}); file is corrupt"
            )
