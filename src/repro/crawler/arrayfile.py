"""Page-aligned, memory-mappable array bundles (the zero-copy format).

One tiny on-disk format serves three jobs:

* shipping the frozen :class:`~repro.workload.trace.ShardContext` to
  generation workers (:mod:`repro.parallel.generate`) — the parent
  writes the context's arrays once and every worker attaches read-only
  ``np.memmap`` views instead of unpickling megabyte buffers through
  ``initargs``,
* returning shard output — workers write their day columns to per-shard
  files and the parent maps them back, so the process boundary costs a
  header parse and page mappings, not a pickle of every column,
* the uncompressed ``mmap`` dataset-cache format and the follow-graph
  cache (:mod:`repro.crawler.storage`, :mod:`repro.parallel.generate`),
  which let paper-scale datasets stream from disk instead of living in
  RAM.

Layout: one JSON header line (format tag, page size, per-array name /
dtype / shape / relative offset, caller metadata), space-padded to a
page boundary, followed by each array's raw little-endian bytes at
page-aligned offsets, followed by a checksum *footer* line — a JSON
record of each block's CRC-32 — itself padded to a page boundary.  The
footer is what lets the resumable-generation layer
(:mod:`repro.parallel.checkpoint`) tell a valid shard file from one a
crashed writer or a flaky disk corrupted: ``read_arrays(verify=True)``
recomputes every block checksum against it.  Files written before the
footer existed (``footer_size`` absent from the header) still load —
they simply have nothing to verify against.

Writes are deterministic — no timestamps, no environment — so identical
arrays always produce identical files, which the byte-identity suite
relies on.
"""

from __future__ import annotations

import json
import math
import os
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Optional, Sequence, Union

import numpy as np

PathLike = Union[str, Path]

#: Alignment for the header block and every array block.  4 KiB covers
#: every mainstream page size except Apple Silicon's 16 KiB — alignment
#: is a performance nicety, not a correctness requirement, because
#: ``np.memmap`` re-aligns offsets to ``mmap.ALLOCATIONGRANULARITY``.
PAGE_SIZE = 4096

ARRAY_FILE_VERSION = 1
_MAGIC = "repro-arrays"
_FOOTER_MAGIC = "repro-arrays-footer"


def _aligned(n: int) -> int:
    return (n + PAGE_SIZE - 1) // PAGE_SIZE * PAGE_SIZE


def _padded_json_line(payload: dict, size: Optional[int] = None) -> bytes:
    """Canonical JSON, space-padded to a page boundary, newline-terminated.

    Readers take the first line; JSON ignores the trailing spaces, and the
    next section starts exactly at ``len(line)``.  ``size`` pads to an
    explicit reserved length instead (used by :class:`ArrayFileWriter`,
    whose footer length must be declared before the checksums exist).
    """
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("ascii")
    if size is None:
        size = _aligned(len(encoded) + 1)
    if len(encoded) + 1 > size:
        raise ValueError(
            f"JSON line ({len(encoded) + 1} bytes) exceeds its reserved {size} bytes"
        )
    return encoded + b" " * (size - len(encoded) - 1) + b"\n"


@contextmanager
def atomic_output(path: PathLike) -> Iterator[Path]:
    """Stage a write as ``<path>.tmp<pid>``, publish it with ``os.replace``.

    The one atomic-publish discipline every on-disk artifact in the repo
    uses (dataset-cache entries, the follow-graph cache, checkpointed
    shard files, streamed merges): the caller writes the yielded temp
    path; on a clean exit it is renamed over ``path`` in one step, and on
    any exit the temp is removed — a crashed writer can never leave a
    plausible-looking final file, only a ``.tmp<pid>`` leftover that
    :func:`repro.crawler.storage.sweep_stale_temps` reclaims once the
    writer's pid is gone.
    """
    path = Path(path)
    temp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        yield temp
        os.replace(temp, path)
    finally:
        temp.unlink(missing_ok=True)


def _disk_dtype(array: np.ndarray) -> np.dtype:
    """The on-disk dtype: little-endian, never objects."""
    if array.dtype.hasobject:
        raise ValueError(f"cannot store object arrays (dtype {array.dtype})")
    return array.dtype.newbyteorder("<") if array.dtype.byteorder == ">" else array.dtype


def _convert(array: np.ndarray) -> np.ndarray:
    """Contiguous little-endian view/copy of ``array`` (the disk bytes)."""
    array = np.ascontiguousarray(array)
    return array.astype(_disk_dtype(array), copy=False)


def write_arrays(
    path: PathLike,
    arrays: Mapping[str, np.ndarray],
    meta: Optional[dict] = None,
    footer: bool = True,
) -> None:
    """Write named arrays as one page-aligned, mappable file.

    Insertion order of ``arrays`` is preserved; the write is
    byte-deterministic for fixed inputs.  ``footer=True`` (the default)
    appends the per-block CRC-32 checksum footer that
    ``read_arrays(verify=True)`` validates against — that path *is* the
    incremental :class:`ArrayFileWriter` fed whole arrays, so monolithic
    and streamed writes of the same data are byte-identical by
    construction.  ``footer=False`` reproduces the pre-footer format (and
    is how the legacy-file tests manufacture old files).
    """
    if footer:
        converted = {str(name): _convert(array) for name, array in arrays.items()}
        writer = ArrayFileWriter(
            path,
            [(name, array.dtype, array.shape) for name, array in converted.items()],
            meta=meta,
        )
        with writer:
            for name, array in converted.items():
                writer.append(name, array)
        return

    entries = []
    blocks = []
    offset = 0
    for name, array in arrays.items():
        array = _convert(array)
        entries.append(
            {
                "name": str(name),
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
            }
        )
        blocks.append(array)
        offset += _aligned(array.nbytes)

    header = {
        "format": _MAGIC,
        "format_version": ARRAY_FILE_VERSION,
        "page_size": PAGE_SIZE,
        "data_size": offset,
        "meta": meta or {},
        "arrays": entries,
    }
    header_line = _padded_json_line(header)

    with open(path, "wb") as handle:
        handle.write(header_line)
        for entry, array in zip(entries, blocks):
            handle.write(array.tobytes())
            handle.write(b"\x00" * (_aligned(array.nbytes) - array.nbytes))


@dataclass(frozen=True)
class _ArraySpec:
    """One declared array in an :class:`ArrayFileWriter` schema."""

    name: str
    dtype: np.dtype
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        return math.prod(self.shape) * self.dtype.itemsize


class ArrayFileWriter:
    """Incremental :func:`write_arrays`: declare the schema, append blocks.

    The full schema — every array's name, dtype, and *final* shape — must
    be known up front (the header comes first in the file), but each
    array's data may then arrive in any number of leading-axis chunks
    across calls, in declared order.  This is what lets the streaming
    merge (:mod:`repro.parallel.merge`) build a paper-scale dataset file
    while holding only one bounded window of it in memory: per-array
    CRC-32 checksums accumulate incrementally (``zlib.crc32`` composes
    over concatenation), so the finished file — header, page-aligned
    blocks, checksum footer — is byte-identical to a monolithic
    :func:`write_arrays` of the same data.

    Output is staged as ``<path>.tmp<pid>`` and published atomically by
    :meth:`finalize` (the :func:`atomic_output` discipline); a writer
    abandoned mid-append — process crash included — never leaves a
    partial final file, and the temp is reclaimed by the stale-temp
    sweep once the writer's pid is gone.  As a context manager, a clean
    exit finalizes and an exception aborts.

    One caveat on byte identity: the footer's length is reserved before
    the checksums exist (sized for maximum-width CRCs), so a schema whose
    footer JSON straddles a page boundary within that reserve could pad
    one page larger than the monolithic writer would.  ``write_arrays``
    itself routes through this class, so the two paths cannot drift for
    any schema.
    """

    def __init__(
        self,
        path: PathLike,
        schema: Sequence[tuple[str, Union[str, np.dtype], Sequence[int]]],
        meta: Optional[dict] = None,
    ) -> None:
        if not schema:
            raise ValueError("array-file schema is empty")
        self.path = Path(path)
        self._specs: list[_ArraySpec] = []
        entries = []
        offset = 0
        seen: set[str] = set()
        for name, dtype, shape in schema:
            name = str(name)
            if name in seen:
                raise ValueError(f"duplicate array {name!r} in schema")
            seen.add(name)
            dtype = np.dtype(dtype)
            if dtype.hasobject:
                raise ValueError(f"cannot store object arrays (dtype {dtype})")
            if dtype.byteorder == ">":
                dtype = dtype.newbyteorder("<")
            spec = _ArraySpec(name, dtype, tuple(int(dim) for dim in shape))
            self._specs.append(spec)
            entries.append(
                {
                    "name": name,
                    "dtype": dtype.str,
                    "shape": list(spec.shape),
                    "offset": offset,
                }
            )
            offset += _aligned(spec.nbytes)

        # The footer must fit checksums of any value, so its line length
        # is reserved using maximum-width (10-digit) CRC placeholders.
        self._footer_size = len(
            _padded_json_line(
                {"format": _FOOTER_MAGIC, "crc32": {s.name: 0xFFFFFFFF for s in self._specs}}
            )
        )
        header = {
            "format": _MAGIC,
            "format_version": ARRAY_FILE_VERSION,
            "page_size": PAGE_SIZE,
            "data_size": offset,
            "meta": meta or {},
            "arrays": entries,
            "footer_size": self._footer_size,
        }
        self._temp = self.path.with_name(self.path.name + f".tmp{os.getpid()}")
        self._handle = open(self._temp, "wb")
        self._handle.write(_padded_json_line(header))
        self._index = 0  # position in the schema of the array being appended
        self._written = 0  # data bytes of that array written so far
        self._crc = 0
        self._checksums: dict[str, int] = {}
        self._finalized = False

    # -- appending -----------------------------------------------------

    def _require_open(self) -> None:
        if self._handle is None:
            raise ValueError(f"{self.path}: writer is closed")

    def _close_block(self) -> None:
        """Seal the current array: check completeness, pad, record its CRC."""
        spec = self._specs[self._index]
        if self._written != spec.nbytes:
            raise ValueError(
                f"{self.path}: array {spec.name!r} incomplete "
                f"({self._written} of {spec.nbytes} bytes appended)"
            )
        self._handle.write(b"\x00" * (_aligned(spec.nbytes) - spec.nbytes))
        self._checksums[spec.name] = self._crc
        self._index += 1
        self._written = 0
        self._crc = 0

    def append(self, name: str, chunk: np.ndarray) -> None:
        """Append a leading-axis chunk of array ``name``.

        Arrays must be appended in schema order; moving to a later name
        seals every array in between (legal only when they are complete —
        zero-length arrays complete vacuously and may be skipped
        entirely).  The chunk is converted to the declared dtype if
        needed.
        """
        self._require_open()
        names = [spec.name for spec in self._specs[self._index :]]
        if str(name) not in names:
            raise ValueError(
                f"{self.path}: array {name!r} is not appendable "
                f"(not in the schema, or already sealed)"
            )
        while self._specs[self._index].name != str(name):
            self._close_block()
        spec = self._specs[self._index]
        chunk = np.ascontiguousarray(chunk)
        if chunk.dtype != spec.dtype:
            chunk = chunk.astype(spec.dtype)
        if chunk.ndim != len(spec.shape) or chunk.shape[1:] != spec.shape[1:]:
            raise ValueError(
                f"{self.path}: chunk shape {chunk.shape} does not extend "
                f"array {spec.name!r} of shape {spec.shape} along axis 0"
            )
        if self._written + chunk.nbytes > spec.nbytes:
            raise ValueError(
                f"{self.path}: array {spec.name!r} overflows its declared "
                f"shape {spec.shape} ({self._written + chunk.nbytes} > {spec.nbytes} bytes)"
            )
        self._crc = zlib.crc32(chunk, self._crc)
        self._handle.write(chunk)
        self._written += chunk.nbytes

    # -- lifecycle -----------------------------------------------------

    def finalize(self) -> Path:
        """Seal remaining arrays, write the checksum footer, publish.

        Returns the final path.  Raises ``ValueError`` — leaving no file
        behind — if any declared array is incomplete.
        """
        self._require_open()
        try:
            while self._index < len(self._specs):
                self._close_block()
            self._handle.write(
                _padded_json_line(
                    {"format": _FOOTER_MAGIC, "crc32": self._checksums},
                    size=self._footer_size,
                )
            )
            self._handle.flush()
            self._handle.close()
            self._handle = None
            os.replace(self._temp, self.path)
            self._finalized = True
        finally:
            if not self._finalized:
                self.abort()
        return self.path

    def abort(self) -> None:
        """Discard the write: close the handle, remove the temp file."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if not self._finalized:
            self._temp.unlink(missing_ok=True)

    def __enter__(self) -> "ArrayFileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            if not self._finalized:
                self.finalize()
        else:
            self.abort()


def read_arrays(path: PathLike, verify: bool = False) -> tuple[dict[str, np.ndarray], dict]:
    """Map a :func:`write_arrays` file back as read-only array views.

    Returns ``(arrays, meta)``.  Arrays are ``np.memmap`` views (zero
    copy); on POSIX they stay valid even if the file is later unlinked.
    Raises ``ValueError`` on any structural mismatch — wrong magic or
    version, truncation, or trailing bytes.

    ``verify=True`` additionally recomputes every block's CRC-32 against
    the checksum footer and raises ``ValueError`` naming the first
    corrupt array — the probe resumable generation runs before trusting
    a checkpointed shard file.  It costs a full read of the data, so the
    default (mapping-only) path never pays it.  Files written before the
    footer existed carry no checksums and verify vacuously.
    """
    path = Path(path)
    header, data_start = _load_header(path)
    footer_size = int(header.get("footer_size", 0))
    data_end = data_start + int(header["data_size"])

    arrays: dict[str, np.ndarray] = {}
    for entry in header["arrays"]:
        dtype = np.dtype(entry["dtype"])
        if dtype.hasobject:
            raise ValueError(f"{path}: refusing object dtype {entry['dtype']!r}")
        shape = tuple(int(dim) for dim in entry["shape"])
        count = math.prod(shape)
        start = data_start + int(entry["offset"])
        if start + count * dtype.itemsize > data_end:
            raise ValueError(f"{path}: array {entry['name']!r} overruns the file")
        if count == 0:
            arrays[entry["name"]] = np.empty(shape, dtype=dtype)
        else:
            arrays[entry["name"]] = np.memmap(
                path, dtype=dtype, mode="r", offset=start, shape=shape
            )

    if verify and footer_size:
        _verify_checksums(path, arrays, _read_footer(path, data_end, footer_size))
    return arrays, header.get("meta", {})


def _load_header(path: Path) -> tuple[dict, int]:
    """Parse and structurally validate a file's header line.

    Returns ``(header, data_start)``; checks magic, version, and that the
    file's size matches header + data + footer exactly (truncation and
    trailing garbage are both errors).
    """
    with path.open("rb") as handle:
        header_line = handle.readline()
    if not header_line.endswith(b"\n"):
        raise ValueError(f"{path}: truncated array-file header")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: malformed array-file header: {error}") from None
    if not isinstance(header, dict) or header.get("format") != _MAGIC:
        raise ValueError(f"{path}: not a {_MAGIC} file")
    if header.get("format_version") != ARRAY_FILE_VERSION:
        raise ValueError(
            f"{path}: unsupported array-file version {header.get('format_version')!r}"
        )
    data_start = len(header_line)
    expected = data_start + int(header["data_size"]) + int(header.get("footer_size", 0))
    actual = path.stat().st_size
    if actual < expected:
        raise ValueError(f"{path}: truncated array file ({actual} < {expected} bytes)")
    if actual > expected:
        raise ValueError(f"{path}: trailing bytes after arrays ({actual} > {expected})")
    return header, data_start


@dataclass(frozen=True)
class ArrayEntry:
    """One array's location inside a file, from the header alone."""

    name: str
    dtype: np.dtype
    shape: tuple[int, ...]
    offset: int  # absolute byte offset of the block in the file

    @property
    def nbytes(self) -> int:
        return math.prod(self.shape) * self.dtype.itemsize


def read_array_index(path: PathLike) -> tuple[dict[str, ArrayEntry], dict]:
    """Scan a file's header without mapping or reading any array data.

    Returns ``({name: ArrayEntry}, meta)`` — shapes, dtypes, and absolute
    offsets only, one page read per file.  This is how the streaming
    merge plans a whole run's output (total lengths, per-day windows)
    before touching a byte of shard data.  The same structural checks as
    :func:`read_arrays` apply (magic, version, exact file size).
    """
    path = Path(path)
    header, data_start = _load_header(path)
    data_end = data_start + int(header["data_size"])
    entries: dict[str, ArrayEntry] = {}
    for entry in header["arrays"]:
        dtype = np.dtype(entry["dtype"])
        if dtype.hasobject:
            raise ValueError(f"{path}: refusing object dtype {entry['dtype']!r}")
        shape = tuple(int(dim) for dim in entry["shape"])
        offset = data_start + int(entry["offset"])
        if offset + math.prod(shape) * dtype.itemsize > data_end:
            raise ValueError(f"{path}: array {entry['name']!r} overruns the file")
        entries[entry["name"]] = ArrayEntry(
            name=entry["name"], dtype=dtype, shape=shape, offset=offset
        )
    return entries, header.get("meta", {})


def _read_footer(path: Path, data_end: int, footer_size: int) -> dict[str, int]:
    """Parse the checksum footer; raises ``ValueError`` when malformed."""
    with path.open("rb") as handle:
        handle.seek(data_end)
        footer_line = handle.read(footer_size)
    try:
        footer = json.loads(footer_line)
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: malformed checksum footer: {error}") from None
    if not isinstance(footer, dict) or footer.get("format") != _FOOTER_MAGIC:
        raise ValueError(f"{path}: not a {_FOOTER_MAGIC} footer")
    checksums = footer.get("crc32")
    if not isinstance(checksums, dict):
        raise ValueError(f"{path}: checksum footer has no crc32 table")
    return checksums


def _verify_checksums(
    path: Path, arrays: Mapping[str, np.ndarray], checksums: Mapping[str, int]
) -> None:
    for name, array in arrays.items():
        recorded = checksums.get(name)
        if recorded is None:
            raise ValueError(f"{path}: array {name!r} missing from checksum footer")
        computed = zlib.crc32(np.ascontiguousarray(array))
        if computed != int(recorded):
            raise ValueError(
                f"{path}: checksum mismatch for array {name!r} "
                f"(crc32 {computed} != recorded {recorded}); file is corrupt"
            )
