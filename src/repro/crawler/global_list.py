"""The global-list crawler (§3.1).

The global list API returns 50 randomly selected active broadcasts per
query.  To capture *every* broadcast, the paper ran multiple accounts each
refreshing every 5 s (the app's own rate), staggered so the aggregate
refresh hit 0.25 s; their validation showed 0.5 s already captured the
complete set.  This crawler reproduces that design against the simulated
service, including per-account rate limiting, so the coverage-vs-refresh
trade-off can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.crawler.rate_limit import TokenBucket
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.platform.service import LivestreamService
from repro.simulation.engine import Simulator

#: Called when a broadcast is first discovered: (broadcast_id, time).
DiscoveryCallback = Callable[[int, float], None]


@dataclass
class CrawlerAccount:
    """One crawler account polling the global list every ``refresh_s``."""

    account_id: int
    refresh_s: float
    start_offset_s: float
    rate_limit: Optional[TokenBucket] = None
    queries_made: int = field(default=0, init=False)
    queries_throttled: int = field(default=0, init=False)


class GlobalListCrawler:
    """Coordinates accounts to discover all broadcasts on the service."""

    def __init__(
        self,
        service: LivestreamService,
        simulator: Simulator,
        rng: np.random.Generator,
        n_accounts: int = 20,
        account_refresh_s: float = 5.0,
        rate_limit: Optional[TokenBucket] = None,
        on_discover: Optional[DiscoveryCallback] = None,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        if n_accounts <= 0:
            raise ValueError("need at least one account")
        if account_refresh_s <= 0:
            raise ValueError("refresh interval must be positive")
        self.service = service
        self.simulator = simulator
        self.rng = rng
        self.on_discover = on_discover
        self._shared_rate_limit = rate_limit
        self._m_queries = metrics.counter("crawler.queries", help="global-list queries issued")
        self._m_throttled = metrics.counter("crawler.throttled", help="queries dropped by the rate limit")
        self._m_discovered = metrics.counter("crawler.discovered", help="broadcasts first seen")
        self._m_coverage = metrics.gauge("crawler.coverage", help="discovered / total broadcasts")
        # Stagger accounts evenly: aggregate refresh = refresh / n.
        self.accounts = [
            CrawlerAccount(
                account_id=i,
                refresh_s=account_refresh_s,
                start_offset_s=i * account_refresh_s / n_accounts,
            )
            for i in range(n_accounts)
        ]
        self.discovered: dict[int, float] = {}
        self._running = False

    @property
    def aggregate_refresh_s(self) -> float:
        return self.accounts[0].refresh_s / len(self.accounts)

    def start(self) -> None:
        if self._running:
            raise RuntimeError("crawler already started")
        self._running = True
        for account in self.accounts:
            self.simulator.schedule(
                account.start_offset_s,
                _AccountQuery(self, account),
                label=f"crawl:{account.account_id}",
            )

    def stop(self) -> None:
        self._running = False

    def _query(self, account: CrawlerAccount) -> None:
        if not self._running:
            return
        now = self.simulator.now
        throttled = (
            self._shared_rate_limit is not None
            and not self._shared_rate_limit.try_acquire(now)
        )
        if throttled:
            account.queries_throttled += 1
            self._m_throttled.inc()
        else:
            account.queries_made += 1
            self._m_queries.inc()
            page = self.service.global_list(now, self.rng)
            for broadcast_id in page.broadcast_ids:
                if broadcast_id not in self.discovered:
                    self.discovered[broadcast_id] = now
                    self._m_discovered.inc()
                    if self.on_discover is not None:
                        self.on_discover(broadcast_id, now)
            self._m_coverage.set(self.coverage())
        self.simulator.schedule(
            account.refresh_s, _AccountQuery(self, account), label=f"crawl:{account.account_id}"
        )

    # -- evaluation ------------------------------------------------------

    def coverage(self) -> float:
        """Fraction of all broadcasts ever started that were discovered."""
        total = self.service.total_broadcast_count
        if total == 0:
            return 1.0
        return len(self.discovered) / total

    def discovery_latencies(self) -> np.ndarray:
        """Seconds from broadcast start to discovery, for discovered ones."""
        latencies = []
        for broadcast_id, found_at in self.discovered.items():
            broadcast = self.service.get_broadcast(broadcast_id)
            latencies.append(found_at - broadcast.start_time)
        return np.array(latencies)


class _AccountQuery:
    def __init__(self, crawler: GlobalListCrawler, account: CrawlerAccount) -> None:
        self._crawler = crawler
        self._account = account

    def __call__(self) -> None:
        self._crawler._query(self._account)
