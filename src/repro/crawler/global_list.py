"""The global-list crawler (§3.1).

The global list API returns 50 randomly selected active broadcasts per
query.  To capture *every* broadcast, the paper ran multiple accounts each
refreshing every 5 s (the app's own rate), staggered so the aggregate
refresh hit 0.25 s; their validation showed 0.5 s already captured the
complete set.  This crawler reproduces that design against the simulated
service, including per-account rate limiting, so the coverage-vs-refresh
trade-off can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.crawler.rate_limit import TokenBucket
from repro.faults.resilience import RetryPolicy
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.service.errors import ServiceUnavailable

if TYPE_CHECKING:  # break the import cycle: the facade imports repro.service
    from repro.platform.service import LivestreamService
from repro.simulation.engine import Simulator

#: Called when a broadcast is first discovered: (broadcast_id, time).
DiscoveryCallback = Callable[[int, float], None]


@dataclass
class CrawlerAccount:
    """One crawler account polling the global list every ``refresh_s``.

    The ``queries_*``/``retries`` fields are the *single source of truth*
    for crawl accounting; the registry-level ``crawler.*`` counters are
    derived from their sums by a snapshot-time collector, so the two views
    cannot drift apart.
    """

    account_id: int
    refresh_s: float
    start_offset_s: float
    rate_limit: Optional[TokenBucket] = None
    queries_made: int = field(default=0, init=False)
    queries_throttled: int = field(default=0, init=False)
    queries_failed: int = field(default=0, init=False)
    retries: int = field(default=0, init=False)


class GlobalListCrawler:
    """Coordinates accounts to discover all broadcasts on the service."""

    def __init__(
        self,
        service: LivestreamService,
        simulator: Simulator,
        rng: np.random.Generator,
        n_accounts: int = 20,
        account_refresh_s: float = 5.0,
        rate_limit: Optional[TokenBucket] = None,
        on_discover: Optional[DiscoveryCallback] = None,
        retry_policy: Optional[RetryPolicy] = None,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        if n_accounts <= 0:
            raise ValueError("need at least one account")
        if account_refresh_s <= 0:
            raise ValueError("refresh interval must be positive")
        self.service = service
        self.simulator = simulator
        self.rng = rng
        self.on_discover = on_discover
        self.retry_policy = retry_policy
        self._shared_rate_limit = rate_limit
        self._m_queries = metrics.counter("crawler.queries", help="global-list queries issued")
        self._m_throttled = metrics.counter("crawler.throttled", help="queries dropped by the rate limit")
        self._m_failed = metrics.counter("crawler.query_failures", help="queries the service rejected (brownout)")
        self._m_retries = metrics.counter("crawler.retries", help="retry attempts scheduled")
        self._m_discovered = metrics.counter("crawler.discovered", help="broadcasts first seen")
        self._m_coverage = metrics.gauge("crawler.coverage", help="discovered / total broadcasts")
        # Registry counters mirror the per-account tallies lazily; see
        # CrawlerAccount's docstring.
        metrics.add_collector(self._collect)
        # Stagger accounts evenly: aggregate refresh = refresh / n.
        self.accounts = [
            CrawlerAccount(
                account_id=i,
                refresh_s=account_refresh_s,
                start_offset_s=i * account_refresh_s / n_accounts,
            )
            for i in range(n_accounts)
        ]
        self.discovered: dict[int, float] = {}
        self._running = False

    @property
    def aggregate_refresh_s(self) -> float:
        return self.accounts[0].refresh_s / len(self.accounts)

    def start(self) -> None:
        if self._running:
            raise RuntimeError("crawler already started")
        self._running = True
        for account in self.accounts:
            self.simulator.schedule(
                account.start_offset_s,
                _AccountQuery(self, account),
                label=f"crawl:{account.account_id}",
            )

    def stop(self) -> None:
        self._running = False

    def _query(self, account: CrawlerAccount) -> None:
        if not self._running:
            return
        self._attempt(account, attempt=0, started_at=self.simulator.now)
        self.simulator.schedule(
            account.refresh_s, _AccountQuery(self, account), label=f"crawl:{account.account_id}"
        )

    def _attempt(self, account: CrawlerAccount, attempt: int, started_at: float) -> None:
        """One query attempt; failures hand off to the retry policy."""
        if not self._running:
            return
        now = self.simulator.now
        bucket = self._shared_rate_limit
        if bucket is not None and not bucket.try_acquire(now):
            account.queries_throttled += 1
            # The bucket knows exactly when a token lands; retry then
            # instead of blind exponential backoff.
            hint = (
                bucket.time_until_available(now)
                if self.retry_policy is not None
                else None
            )
            self._schedule_retry(account, attempt, started_at, hint)
            return
        try:
            # A retrying crawler insists on fresh data (a retryable error
            # beats a silently stale page); a naive one takes what it gets.
            page = self.service.global_list(
                now, self.rng, allow_stale=self.retry_policy is None
            )
        except ServiceUnavailable:
            account.queries_failed += 1
            self._schedule_retry(account, attempt, started_at, hint=None)
            return
        account.queries_made += 1
        for broadcast_id in page.broadcast_ids:
            if broadcast_id not in self.discovered:
                self.discovered[broadcast_id] = now
                self._m_discovered.inc()
                if self.on_discover is not None:
                    self.on_discover(broadcast_id, now)
        self._m_coverage.set(self.coverage())

    def _schedule_retry(
        self,
        account: CrawlerAccount,
        attempt: int,
        started_at: float,
        hint: Optional[float],
    ) -> None:
        policy = self.retry_policy
        if policy is None:
            return  # naive crawler: the query cycle is simply lost
        delay = policy.next_delay(
            attempt,
            elapsed_s=self.simulator.now - started_at,
            hint=hint,
            # Never let a retry sequence outlive the account's own cadence.
            deadline_s=min(policy.deadline_s, account.refresh_s),
        )
        if delay is None:
            return
        account.retries += 1
        self.simulator.schedule(
            delay,
            _AccountRetry(self, account, attempt + 1, started_at),
            label=f"crawl-retry:{account.account_id}",
        )

    def _collect(self, _registry: MetricsRegistry) -> None:
        """Snapshot-time sync of registry counters to per-account truth."""
        for counter, total in (
            (self._m_queries, sum(a.queries_made for a in self.accounts)),
            (self._m_throttled, sum(a.queries_throttled for a in self.accounts)),
            (self._m_failed, sum(a.queries_failed for a in self.accounts)),
            (self._m_retries, sum(a.retries for a in self.accounts)),
        ):
            if total > counter.value:
                counter.inc(total - counter.value)

    # -- evaluation ------------------------------------------------------

    def coverage(self) -> float:
        """Fraction of all broadcasts ever started that were discovered."""
        total = self.service.total_broadcast_count
        if total == 0:
            return 1.0
        return len(self.discovered) / total

    def discovery_latencies(self) -> np.ndarray:
        """Seconds from broadcast start to discovery, for discovered ones."""
        latencies = []
        for broadcast_id, found_at in self.discovered.items():
            broadcast = self.service.get_broadcast(broadcast_id)
            latencies.append(found_at - broadcast.start_time)
        return np.array(latencies)


class _AccountQuery:
    def __init__(self, crawler: GlobalListCrawler, account: CrawlerAccount) -> None:
        self._crawler = crawler
        self._account = account

    def __call__(self) -> None:
        self._crawler._query(self._account)


class _AccountRetry:
    """A scheduled retry of a failed or throttled query attempt."""

    def __init__(
        self,
        crawler: GlobalListCrawler,
        account: CrawlerAccount,
        attempt: int,
        started_at: float,
    ) -> None:
        self._crawler = crawler
        self._account = account
        self._attempt = attempt
        self._started_at = started_at

    def __call__(self) -> None:
        self._crawler._attempt(self._account, self._attempt, self._started_at)
