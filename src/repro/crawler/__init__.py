"""Measurement crawlers.

Reimplements the paper's three data-collection instruments against the
simulated platform and CDN:

* the global-list crawler that repeatedly queries the 50-broadcast global
  list from multiple accounts to achieve an aggregate 0.25 s refresh and
  capture (nearly) every broadcast (§3.1),
* per-broadcast monitors that join each discovered broadcast and record
  viewers, comments and hearts until it ends,
* the fine-grained delay crawler that joins broadcasts as an RTMP viewer
  (zero-buffer) and as a high-frequency (0.1 s) HLS poller to timestamp
  each frame/chunk's journey through the CDN (§4.3).
"""

from repro.crawler.dataset import (
    BroadcastColumns,
    BroadcastDataset,
    BroadcastRecord,
    DowntimeWindow,
)
from repro.crawler.rate_limit import RateLimitExceeded, TokenBucket
from repro.crawler.global_list import CrawlerAccount, GlobalListCrawler
from repro.crawler.broadcast_monitor import BroadcastMonitor
from repro.crawler.delay_crawler import ChunkObservation, DelayCrawler, FrameObservation
from repro.crawler.graph_crawler import FollowGraphCrawler, GraphApi, GraphCrawl
from repro.crawler.arrayfile import read_arrays, write_arrays
from repro.crawler.storage import (
    DatasetCache,
    dataset_from_bytes,
    dataset_from_columnar_bytes,
    dataset_to_bytes,
    dataset_to_columnar_bytes,
    load_dataset,
    load_dataset_mapped,
    load_traces,
    save_dataset,
    save_dataset_mapped,
    save_traces,
)

__all__ = [
    "BroadcastColumns",
    "BroadcastDataset",
    "BroadcastRecord",
    "DowntimeWindow",
    "TokenBucket",
    "RateLimitExceeded",
    "GlobalListCrawler",
    "CrawlerAccount",
    "BroadcastMonitor",
    "DelayCrawler",
    "FrameObservation",
    "ChunkObservation",
    "GraphApi",
    "FollowGraphCrawler",
    "GraphCrawl",
    "DatasetCache",
    "dataset_to_bytes",
    "dataset_from_bytes",
    "dataset_to_columnar_bytes",
    "dataset_from_columnar_bytes",
    "save_dataset",
    "load_dataset",
    "save_dataset_mapped",
    "load_dataset_mapped",
    "save_traces",
    "load_traces",
    "read_arrays",
    "write_arrays",
]
