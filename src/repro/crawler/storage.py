"""Dataset and trace persistence.

The paper released parts of its measurement datasets; this module gives
the reproduction the same capability: broadcast datasets round-trip
through gzip-compressed JSONL (one record per line, metadata on the first
line — the v1 format) or through a binary columnar layout (v2: one JSON
header line followed by the raw little-endian column arrays), and
fine-grained delay traces through ``.npz`` bundles.

Serialization is byte-deterministic in both formats (the gzip header's
mtime is pinned to zero and v2 writes fixed-dtype little-endian buffers):
the same dataset always produces the same bytes, which is what the
sharded-generation determinism tests and the on-disk
:class:`DatasetCache` rely on.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import re
import zlib
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.pipeline import BroadcastTrace
from repro.crawler.arrayfile import atomic_output, read_arrays, write_arrays
from repro.crawler.dataset import BroadcastColumns, BroadcastDataset, BroadcastRecord

PathLike = Union[str, Path]

_FORMAT_VERSION = 1

_COLUMNS_FORMAT_VERSION = 2

#: Column serialization order and on-disk dtypes shared by the v2 and
#: ``mmap`` formats (and by the streaming merge, which writes the
#: ``mmap`` layout shard by shard).  Little-endian is forced so the
#: bytes are platform-independent.
COLUMN_LAYOUT: tuple[tuple[str, str], ...] = (
    ("broadcast_id", "<i8"),
    ("broadcaster_id", "<i8"),
    ("start_time", "<f8"),
    ("duration_s", "<f8"),
    ("web_views", "<i8"),
    ("heart_count", "<i8"),
    ("comment_count", "<i8"),
    ("commenter_count", "<i8"),
    ("is_private", "|b1"),
    ("broadcaster_followers", "<i8"),
    ("viewer_indptr", "<i8"),
    ("viewer_ids", "<i8"),
)


def _record_to_json(record: BroadcastRecord) -> dict:
    return {
        "broadcast_id": record.broadcast_id,
        "broadcaster_id": record.broadcaster_id,
        "app_name": record.app_name,
        "start_time": record.start_time,
        "duration_s": record.duration_s,
        "viewer_ids": record.viewer_ids.tolist(),
        "web_views": record.web_views,
        "heart_count": record.heart_count,
        "comment_count": record.comment_count,
        "commenter_count": record.commenter_count,
        "is_private": record.is_private,
        "broadcaster_followers": record.broadcaster_followers,
    }


def _record_from_json(payload: dict) -> BroadcastRecord:
    return BroadcastRecord(
        broadcast_id=payload["broadcast_id"],
        broadcaster_id=payload["broadcaster_id"],
        app_name=payload["app_name"],
        start_time=payload["start_time"],
        duration_s=payload["duration_s"],
        viewer_ids=np.array(payload["viewer_ids"], dtype=np.int64),
        web_views=payload["web_views"],
        heart_count=payload["heart_count"],
        comment_count=payload["comment_count"],
        commenter_count=payload["commenter_count"],
        is_private=payload["is_private"],
        broadcaster_followers=payload["broadcaster_followers"],
    )


def dataset_to_bytes(dataset: BroadcastDataset) -> bytes:
    """Serialize a dataset to deterministic gzip-JSONL bytes.

    The gzip mtime is pinned to 0, so equal datasets always serialize to
    equal bytes — the byte-identity guarantee the parallel-generation
    tests assert.
    """
    header = {
        "format_version": _FORMAT_VERSION,
        "app_name": dataset.app_name,
        "days": dataset.days,
        "record_count": len(dataset),
    }
    raw = io.BytesIO()
    with gzip.GzipFile(filename="", mode="wb", fileobj=raw, mtime=0) as binary:
        binary.write((json.dumps(header) + "\n").encode("utf-8"))
        for record in dataset:
            binary.write((json.dumps(_record_to_json(record)) + "\n").encode("utf-8"))
    return raw.getvalue()


def dataset_from_bytes(data: bytes, source: str = "<bytes>") -> BroadcastDataset:
    """Inverse of :func:`dataset_to_bytes`."""
    with gzip.open(io.BytesIO(data), "rt", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{source}: empty dataset file")
        header = json.loads(header_line)
        version = header.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"{source}: unsupported format version {version}")
        dataset = BroadcastDataset(app_name=header["app_name"], days=header["days"])
        for line in handle:
            if line.strip():
                dataset.add(_record_from_json(json.loads(line)))
    expected = header.get("record_count")
    if expected is not None and expected != len(dataset):
        raise ValueError(
            f"{source}: truncated dataset ({len(dataset)} of {expected} records)"
        )
    return dataset


def _column_length(field: str, record_count: int, viewer_count: int) -> int:
    if field == "viewer_indptr":
        return record_count + 1
    if field == "viewer_ids":
        return viewer_count
    return record_count


def dataset_to_columnar_bytes(dataset: BroadcastDataset) -> bytes:
    """Serialize a dataset to the deterministic v2 binary columnar format.

    Layout: one JSON header line, then each column of
    :data:`COLUMN_LAYOUT` as raw little-endian bytes, all gzipped with
    mtime pinned to 0.  Record-backed datasets are columnarized first;
    either backend serializes to the identical bytes.
    """
    columns = dataset.columns
    if columns is None:
        columns = BroadcastColumns.from_records(dataset.app_name, dataset.records)
    header = {
        "format_version": _COLUMNS_FORMAT_VERSION,
        "app_name": dataset.app_name,
        "days": dataset.days,
        "record_count": len(columns),
        "viewer_count": len(columns.viewer_ids),
    }
    raw = io.BytesIO()
    with gzip.GzipFile(filename="", mode="wb", fileobj=raw, mtime=0) as binary:
        binary.write((json.dumps(header) + "\n").encode("utf-8"))
        for field, dtype in COLUMN_LAYOUT:
            binary.write(
                np.ascontiguousarray(getattr(columns, field), dtype=dtype).tobytes()
            )
    return raw.getvalue()


def dataset_from_columnar_bytes(data: bytes, source: str = "<bytes>") -> BroadcastDataset:
    """Inverse of :func:`dataset_to_columnar_bytes`."""
    payload = gzip.decompress(data)
    newline = payload.find(b"\n")
    if newline < 0:
        raise ValueError(f"{source}: empty dataset file")
    header = json.loads(payload[:newline])
    version = header.get("format_version")
    if version != _COLUMNS_FORMAT_VERSION:
        raise ValueError(f"{source}: unsupported format version {version}")
    record_count = int(header["record_count"])
    viewer_count = int(header["viewer_count"])

    offset = newline + 1
    arrays: dict[str, np.ndarray] = {}
    for field, dtype_str in COLUMN_LAYOUT:
        dtype = np.dtype(dtype_str)
        nbytes = _column_length(field, record_count, viewer_count) * dtype.itemsize
        if offset + nbytes > len(payload):
            raise ValueError(f"{source}: truncated dataset (column {field!r})")
        arrays[field] = np.frombuffer(
            payload, dtype=dtype, count=nbytes // dtype.itemsize, offset=offset
        ).copy()
        offset += nbytes
    if offset != len(payload):
        raise ValueError(f"{source}: trailing bytes after columns")
    columns = BroadcastColumns(app_name=header["app_name"], **arrays)
    return BroadcastDataset.from_columns(
        app_name=header["app_name"], days=header["days"], columns=columns
    )


def save_dataset(dataset: BroadcastDataset, path: PathLike) -> None:
    """Write a dataset as gzip JSONL: header line, then one record/line."""
    Path(path).write_bytes(dataset_to_bytes(dataset))


def load_dataset(path: PathLike) -> BroadcastDataset:
    """Read a dataset written by :func:`save_dataset`."""
    return dataset_from_bytes(Path(path).read_bytes(), source=str(path))


_CACHE_KEY_RE = re.compile(r"^[A-Za-z0-9._-]{1,100}$")

_MAPPED_FORMAT = "broadcast-dataset"


def mapped_dataset_meta(
    app_name: str, days: int, record_count: int, viewer_count: int
) -> dict:
    """The ``mmap``-format header metadata for a dataset of these counts.

    Shared between :func:`save_dataset_mapped` and the streaming merge
    (:mod:`repro.parallel.merge`) so a streamed file carries exactly the
    metadata a monolithic save would — a requirement for the two paths'
    byte-identity.
    """
    return {
        "format": _MAPPED_FORMAT,
        "format_version": _COLUMNS_FORMAT_VERSION,
        "app_name": app_name,
        "days": days,
        "record_count": record_count,
        "viewer_count": viewer_count,
    }


def save_dataset_mapped(dataset: BroadcastDataset, path: PathLike) -> None:
    """Write a dataset as an uncompressed, memory-mappable column file.

    Same logical schema as v2 (:data:`COLUMN_LAYOUT`), but raw
    page-aligned little-endian columns behind a JSON header line instead
    of a gzip stream — :func:`load_dataset_mapped` opens it zero-copy
    with ``np.memmap``, so a paper-scale dataset streams from the page
    cache instead of being inflated into RAM.  Deterministic bytes, like
    the other formats.
    """
    columns = dataset.columns
    if columns is None:
        columns = BroadcastColumns.from_records(dataset.app_name, dataset.records)
    write_arrays(
        path,
        {field: np.ascontiguousarray(getattr(columns, field), dtype=dtype)
         for field, dtype in COLUMN_LAYOUT},
        meta=mapped_dataset_meta(
            dataset.app_name, dataset.days, len(columns), len(columns.viewer_ids)
        ),
    )


def load_dataset_mapped(path: PathLike) -> BroadcastDataset:
    """Open a :func:`save_dataset_mapped` file as a mapped-column dataset.

    The returned dataset's columns are read-only ``np.memmap`` views; on
    POSIX they stay valid even if the file is unlinked afterwards.
    """
    arrays, meta = read_arrays(path)
    if meta.get("format") != _MAPPED_FORMAT:
        raise ValueError(f"{path}: not a mapped broadcast dataset")
    version = meta.get("format_version")
    if version != _COLUMNS_FORMAT_VERSION:
        raise ValueError(f"{path}: unsupported format version {version}")
    expected = {field for field, _ in COLUMN_LAYOUT}
    if set(arrays) != expected:
        raise ValueError(f"{path}: column set mismatch")
    columns = BroadcastColumns(app_name=meta["app_name"], **arrays)
    if len(columns) != int(meta["record_count"]):
        raise ValueError(f"{path}: truncated dataset (record count mismatch)")
    if len(columns.viewer_ids) != int(meta["viewer_count"]):
        raise ValueError(f"{path}: truncated dataset (viewer count mismatch)")
    return BroadcastDataset.from_columns(
        app_name=meta["app_name"], days=meta["days"], columns=columns
    )


def _save_v1(dataset: BroadcastDataset, path: Path) -> None:
    path.write_bytes(dataset_to_bytes(dataset))


def _load_v1(path: Path) -> BroadcastDataset:
    return dataset_from_bytes(path.read_bytes(), source=str(path))


def _save_v2(dataset: BroadcastDataset, path: Path) -> None:
    path.write_bytes(dataset_to_columnar_bytes(dataset))


def _load_v2(path: Path) -> BroadcastDataset:
    return dataset_from_columnar_bytes(path.read_bytes(), source=str(path))


#: Cache serialization formats: file suffix, writer(dataset, path),
#: reader(path).  ``mmap`` entries are opened zero-copy via ``np.memmap``.
_CACHE_FORMATS = {
    "v1": (".jsonl.gz", _save_v1, _load_v1),
    "v2": (".cols.gz", _save_v2, _load_v2),
    "mmap": (".cols", save_dataset_mapped, load_dataset_mapped),
}

#: Stale atomic-write temp files: ``<entry name>.tmp<pid>``.
_TEMP_RE = re.compile(r"\.tmp(\d+)$")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def sweep_stale_temps(root: PathLike, pattern: str = "*.tmp*") -> int:
    """Remove ``<name>.tmp<pid>`` atomic-write leftovers under ``root``.

    Every atomic writer in the repo (dataset cache entries, checkpointed
    shard files, run manifests) stages into ``<target>.tmp<pid>`` before
    ``os.replace``; a writer killed between the two leaves the temp
    behind.  A temp is swept only when its recorded pid is no longer
    alive (``os.kill(pid, 0)`` probe), so concurrent writers are never
    disturbed.  Returns the number of files removed.
    """
    removed = 0
    for path in Path(root).glob(pattern):
        match = _TEMP_RE.search(path.name)
        if match and not _pid_alive(int(match.group(1))):
            path.unlink(missing_ok=True)
            removed += 1
    return removed


class DatasetCache:
    """A content-addressed on-disk cache of generated broadcast datasets.

    Keys come from :meth:`repro.workload.trace.TraceConfig.cache_key` — a
    hash of everything that determines the generated data (and nothing
    that does not, like worker counts) — so figure experiments across
    processes reuse one generation.  Writes are atomic (temp file +
    ``os.replace``) so a crashed run never leaves a truncated entry that
    a later run would trip over; temp files orphaned by a killed writer
    are swept on cache construction (only when their recorded pid is no
    longer alive, so concurrent writers are never disturbed).

    ``fmt`` picks the serialization for new entries: ``"v2"`` (default)
    is the binary columnar format, ``"v1"`` gzipped JSONL, ``"mmap"``
    uncompressed page-aligned columns opened zero-copy with
    ``np.memmap``.  Every cache reads entries any format wrote: on a
    miss (or a corrupt entry) in its own format, ``get`` falls through
    to the other formats' files.  An entry whose embedded format version
    does not match its reader is treated as a miss and removed, like any
    other corrupt entry.
    """

    def __init__(self, root: PathLike, fmt: str = "v2") -> None:
        if fmt not in _CACHE_FORMATS:
            raise ValueError(
                f"unknown cache format {fmt!r}; expected one of {sorted(_CACHE_FORMATS)}"
            )
        self.root = Path(root)
        self.fmt = fmt
        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_stale_temps()

    def _sweep_stale_temps(self) -> None:
        """Remove atomic-write leftovers whose writer process is gone."""
        sweep_stale_temps(self.root, "trace-*.tmp*")

    def path_for(self, key: str, fmt: Optional[str] = None) -> Path:
        if not _CACHE_KEY_RE.match(key):
            raise ValueError(f"invalid cache key {key!r}")
        suffix, _, _ = _CACHE_FORMATS[fmt or self.fmt]
        return self.root / f"trace-{key}{suffix}"

    def _formats_for(self, key: str):
        """(fmt, path) probe order: own format first, then the others."""
        for fmt in dict.fromkeys((self.fmt, *sorted(_CACHE_FORMATS))):
            yield fmt, self.path_for(key, fmt)

    def get(self, key: str) -> Optional[BroadcastDataset]:
        """The cached dataset for ``key``, or ``None`` on a miss.

        A corrupt entry is treated as a miss and removed — and the probe
        *falls through* to the other formats' files, so a corrupt entry
        in the preferred format never masks a valid one in a fallback
        format.  Corruption covers a truncated gzip stream (``EOFError``
        — e.g. a file cut mid-byte by a non-atomic writer or a full
        disk), corrupted deflate data (``zlib.error``), a bad gzip header
        (``gzip.BadGzipFile``, an ``OSError``), malformed or incomplete
        payloads (``ValueError``/``KeyError``), and a format version the
        reader does not understand.
        """
        for fmt, path in self._formats_for(key):
            if not path.exists():
                continue
            _, _, load = _CACHE_FORMATS[fmt]
            try:
                return load(path)
            except (ValueError, OSError, EOFError, zlib.error, KeyError):
                path.unlink(missing_ok=True)
                continue
        return None

    def put(self, key: str, dataset: BroadcastDataset) -> Path:
        """Store ``dataset`` under ``key``; returns the entry's path.

        The write is atomic, and the temp file is removed even when
        serialization fails mid-write.
        """
        path = self.path_for(key)
        _, save, _ = _CACHE_FORMATS[self.fmt]
        with atomic_output(path) as temp:
            save(dataset, temp)
        return path

    def __contains__(self, key: str) -> bool:
        """True only for keys :meth:`get` would actually return.

        Aligned with ``get`` semantics — the entry is fully loaded (and a
        corrupt file removed) rather than merely stat'ed, so callers can
        never skip regeneration on a poisoned key.  Use
        :meth:`path_for(...).exists() <path_for>` for a cheap
        existence-only probe.
        """
        return self.get(key) is not None


def save_traces(traces: list[BroadcastTrace], path: PathLike) -> None:
    """Write delay-crawl traces to a compressed ``.npz`` bundle.

    Broadcast IDs are integers and go into their own int64 array —
    packing them into the float64 ``meta`` block would silently corrupt
    IDs above 2**53.  The ``meta`` block keeps a float copy of the ID in
    column 0 so bundles stay readable by the previous loader.
    """
    if not traces:
        raise ValueError("no traces to save")
    arrays: dict[str, np.ndarray] = {
        "meta": np.array(
            [
                (t.broadcast_id, t.duration_s, t.chunk_duration_s, t.frame_interval_s)
                for t in traces
            ],
            dtype=np.float64,
        ),
        "broadcast_ids": np.array([t.broadcast_id for t in traces], dtype=np.int64),
    }
    for index, trace in enumerate(traces):
        arrays[f"frames_{index}"] = trace.frame_arrivals
        arrays[f"ready_{index}"] = trace.chunk_ready
        arrays[f"avail_{index}"] = trace.chunk_availability
    np.savez_compressed(Path(path), **arrays)


def load_traces(path: PathLike) -> list[BroadcastTrace]:
    """Read traces written by :func:`save_traces`.

    Bundles written before the dedicated ``broadcast_ids`` array existed
    fall back to the (float64) ID column in ``meta``.
    """
    with np.load(Path(path)) as bundle:
        meta = bundle["meta"]
        if "broadcast_ids" in bundle:
            broadcast_ids = bundle["broadcast_ids"].astype(np.int64)
        else:
            broadcast_ids = meta[:, 0].astype(np.int64)
        traces = []
        for index in range(len(meta)):
            _legacy_id, duration_s, chunk_duration_s, frame_interval_s = meta[index]
            traces.append(
                BroadcastTrace(
                    broadcast_id=int(broadcast_ids[index]),
                    duration_s=float(duration_s),
                    frame_arrivals=bundle[f"frames_{index}"],
                    chunk_ready=bundle[f"ready_{index}"],
                    chunk_availability=bundle[f"avail_{index}"],
                    chunk_duration_s=float(chunk_duration_s),
                    frame_interval_s=float(frame_interval_s),
                )
            )
    return traces
