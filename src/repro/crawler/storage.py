"""Dataset and trace persistence.

The paper released parts of its measurement datasets; this module gives
the reproduction the same capability: broadcast datasets round-trip
through gzip-compressed JSONL (one record per line, metadata on the first
line) and fine-grained delay traces through ``.npz`` bundles.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.pipeline import BroadcastTrace
from repro.crawler.dataset import BroadcastDataset, BroadcastRecord

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _record_to_json(record: BroadcastRecord) -> dict:
    return {
        "broadcast_id": record.broadcast_id,
        "broadcaster_id": record.broadcaster_id,
        "app_name": record.app_name,
        "start_time": record.start_time,
        "duration_s": record.duration_s,
        "viewer_ids": record.viewer_ids.tolist(),
        "web_views": record.web_views,
        "heart_count": record.heart_count,
        "comment_count": record.comment_count,
        "commenter_count": record.commenter_count,
        "is_private": record.is_private,
        "broadcaster_followers": record.broadcaster_followers,
    }


def _record_from_json(payload: dict) -> BroadcastRecord:
    return BroadcastRecord(
        broadcast_id=payload["broadcast_id"],
        broadcaster_id=payload["broadcaster_id"],
        app_name=payload["app_name"],
        start_time=payload["start_time"],
        duration_s=payload["duration_s"],
        viewer_ids=np.array(payload["viewer_ids"], dtype=np.int64),
        web_views=payload["web_views"],
        heart_count=payload["heart_count"],
        comment_count=payload["comment_count"],
        commenter_count=payload["commenter_count"],
        is_private=payload["is_private"],
        broadcaster_followers=payload["broadcaster_followers"],
    )


def save_dataset(dataset: BroadcastDataset, path: PathLike) -> None:
    """Write a dataset as gzip JSONL: header line, then one record/line."""
    header = {
        "format_version": _FORMAT_VERSION,
        "app_name": dataset.app_name,
        "days": dataset.days,
        "record_count": len(dataset),
    }
    with gzip.open(Path(path), "wt", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for record in dataset:
            handle.write(json.dumps(_record_to_json(record)) + "\n")


def load_dataset(path: PathLike) -> BroadcastDataset:
    """Read a dataset written by :func:`save_dataset`."""
    with gzip.open(Path(path), "rt", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValueError(f"{path}: empty dataset file")
        header = json.loads(header_line)
        version = header.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"{path}: unsupported format version {version}")
        dataset = BroadcastDataset(app_name=header["app_name"], days=header["days"])
        for line in handle:
            if line.strip():
                dataset.add(_record_from_json(json.loads(line)))
    expected = header.get("record_count")
    if expected is not None and expected != len(dataset):
        raise ValueError(
            f"{path}: truncated dataset ({len(dataset)} of {expected} records)"
        )
    return dataset


def save_traces(traces: list[BroadcastTrace], path: PathLike) -> None:
    """Write delay-crawl traces to a compressed ``.npz`` bundle."""
    if not traces:
        raise ValueError("no traces to save")
    arrays: dict[str, np.ndarray] = {
        "meta": np.array(
            [
                (t.broadcast_id, t.duration_s, t.chunk_duration_s, t.frame_interval_s)
                for t in traces
            ],
            dtype=np.float64,
        )
    }
    for index, trace in enumerate(traces):
        arrays[f"frames_{index}"] = trace.frame_arrivals
        arrays[f"ready_{index}"] = trace.chunk_ready
        arrays[f"avail_{index}"] = trace.chunk_availability
    np.savez_compressed(Path(path), **arrays)


def load_traces(path: PathLike) -> list[BroadcastTrace]:
    """Read traces written by :func:`save_traces`."""
    with np.load(Path(path)) as bundle:
        meta = bundle["meta"]
        traces = []
        for index in range(len(meta)):
            broadcast_id, duration_s, chunk_duration_s, frame_interval_s = meta[index]
            traces.append(
                BroadcastTrace(
                    broadcast_id=int(broadcast_id),
                    duration_s=float(duration_s),
                    frame_arrivals=bundle[f"frames_{index}"],
                    chunk_ready=bundle[f"ready_{index}"],
                    chunk_availability=bundle[f"avail_{index}"],
                    chunk_duration_s=float(chunk_duration_s),
                    frame_interval_s=float(frame_interval_s),
                )
            )
    return traces
