"""Crawled broadcast datasets.

A :class:`BroadcastRecord` is the per-broadcast metadata row the paper's
crawler stored (no video or message content): identifiers, times, viewer
IDs with join times, and comment/heart tallies.  A :class:`BroadcastDataset`
is the full measurement — with support for the crawler-downtime window
(Aug 7–9, ~4.5% of broadcasts lost) that the paper reports.

Datasets have two interchangeable backends.  The record backend is a
Python list of :class:`BroadcastRecord` objects, built incrementally by
the crawler simulators.  The columnar backend (:class:`BroadcastColumns`)
stores the same rows as parallel numpy arrays — the ragged per-broadcast
viewer lists as one flat array plus a CSR-style ``viewer_indptr`` — which
is what the trace generator produces at scale: aggregates like
:meth:`BroadcastDataset.table1_row` then run as array reductions instead
of per-record loops, and records materialize lazily only when iterated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Union

import numpy as np

SECONDS_PER_DAY = 86_400.0

#: Bit width reserved for user IDs when packing (day, user) pairs into a
#: single int64 for vectorized uniqueness counting.  Full-scale Periscope
#: has 12M users, far below 2**40; day indexes stay below 2**23.
_PACK_ID_BITS = 40


@dataclass(frozen=True)
class DowntimeWindow:
    """A crawler outage: broadcasts starting inside it are lost."""

    start_day: float
    end_day: float
    loss_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.end_day < self.start_day:
            raise ValueError("end_day before start_day")
        if not 0 <= self.loss_fraction <= 1:
            raise ValueError("loss_fraction must be within [0, 1]")

    def covers(self, day: float) -> bool:
        return self.start_day <= day < self.end_day


@dataclass
class BroadcastRecord:
    """One crawled broadcast (metadata only, identifiers anonymized upstream)."""

    broadcast_id: int
    broadcaster_id: int
    app_name: str
    start_time: float  # seconds since measurement start
    duration_s: float
    viewer_ids: np.ndarray  # registered (mobile) viewer IDs, one per view
    web_views: int
    heart_count: int
    comment_count: int
    commenter_count: int
    is_private: bool = False
    broadcaster_followers: int = 0

    def __post_init__(self) -> None:
        self.viewer_ids = np.asarray(self.viewer_ids, dtype=np.int64)
        if self.duration_s < 0:
            raise ValueError("negative duration")
        if self.web_views < 0:
            raise ValueError("negative web views")

    @property
    def start_day(self) -> float:
        return self.start_time / SECONDS_PER_DAY

    @property
    def mobile_views(self) -> int:
        return int(len(self.viewer_ids))

    @property
    def total_views(self) -> int:
        return self.mobile_views + self.web_views

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration_s


@dataclass
class BroadcastColumns:
    """One batch of broadcasts as parallel arrays (the columnar backend).

    Row ``i`` of every array describes the same broadcast; the ragged
    viewer lists are stored CSR-style — ``viewer_ids[viewer_indptr[i] :
    viewer_indptr[i + 1]]`` are row ``i``'s registered viewers.
    """

    app_name: str
    broadcast_id: np.ndarray  # int64
    broadcaster_id: np.ndarray  # int64
    start_time: np.ndarray  # float64, seconds since measurement start
    duration_s: np.ndarray  # float64
    web_views: np.ndarray  # int64
    heart_count: np.ndarray  # int64
    comment_count: np.ndarray  # int64
    commenter_count: np.ndarray  # int64
    is_private: np.ndarray  # bool
    broadcaster_followers: np.ndarray  # int64
    viewer_indptr: np.ndarray  # int64, len == row count + 1
    viewer_ids: np.ndarray  # int64, flat ragged storage

    _INT_FIELDS = (
        "broadcast_id",
        "broadcaster_id",
        "web_views",
        "heart_count",
        "comment_count",
        "commenter_count",
        "broadcaster_followers",
    )
    _FLOAT_FIELDS = ("start_time", "duration_s")

    def __post_init__(self) -> None:
        for name in self._INT_FIELDS:
            setattr(self, name, np.asarray(getattr(self, name), dtype=np.int64))
        for name in self._FLOAT_FIELDS:
            setattr(self, name, np.asarray(getattr(self, name), dtype=np.float64))
        self.is_private = np.asarray(self.is_private, dtype=bool)
        self.viewer_indptr = np.asarray(self.viewer_indptr, dtype=np.int64)
        self.viewer_ids = np.asarray(self.viewer_ids, dtype=np.int64)
        n = len(self.broadcast_id)
        for name in (*self._INT_FIELDS, *self._FLOAT_FIELDS, "is_private"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name!r} length mismatch")
        if len(self.viewer_indptr) != n + 1:
            raise ValueError("viewer_indptr must have row count + 1 entries")
        if n and self.viewer_indptr[-1] != len(self.viewer_ids):
            raise ValueError("viewer_indptr does not span viewer_ids")

    def __len__(self) -> int:
        return len(self.broadcast_id)

    @property
    def mobile_views(self) -> np.ndarray:
        """Per-row registered (mobile) view counts."""
        return np.diff(self.viewer_indptr)

    @classmethod
    def empty(cls, app_name: str) -> "BroadcastColumns":
        zero = np.empty(0, dtype=np.int64)
        return cls(
            app_name=app_name,
            broadcast_id=zero,
            broadcaster_id=zero,
            start_time=np.empty(0, dtype=np.float64),
            duration_s=np.empty(0, dtype=np.float64),
            web_views=zero,
            heart_count=zero,
            comment_count=zero,
            commenter_count=zero,
            is_private=np.empty(0, dtype=bool),
            broadcaster_followers=zero,
            viewer_indptr=np.zeros(1, dtype=np.int64),
            viewer_ids=zero,
        )

    @classmethod
    def from_records(
        cls, app_name: str, records: Sequence[BroadcastRecord]
    ) -> "BroadcastColumns":
        viewer_indptr = np.zeros(len(records) + 1, dtype=np.int64)
        np.cumsum([len(r.viewer_ids) for r in records], out=viewer_indptr[1:])
        if records:
            viewer_ids = np.concatenate([r.viewer_ids for r in records])
        else:
            viewer_ids = np.empty(0, dtype=np.int64)
        return cls(
            app_name=app_name,
            broadcast_id=np.array([r.broadcast_id for r in records], dtype=np.int64),
            broadcaster_id=np.array([r.broadcaster_id for r in records], dtype=np.int64),
            start_time=np.array([r.start_time for r in records], dtype=np.float64),
            duration_s=np.array([r.duration_s for r in records], dtype=np.float64),
            web_views=np.array([r.web_views for r in records], dtype=np.int64),
            heart_count=np.array([r.heart_count for r in records], dtype=np.int64),
            comment_count=np.array([r.comment_count for r in records], dtype=np.int64),
            commenter_count=np.array(
                [r.commenter_count for r in records], dtype=np.int64
            ),
            is_private=np.array([r.is_private for r in records], dtype=bool),
            broadcaster_followers=np.array(
                [r.broadcaster_followers for r in records], dtype=np.int64
            ),
            viewer_indptr=viewer_indptr,
            viewer_ids=viewer_ids,
        )

    def to_records(self) -> list[BroadcastRecord]:
        """Materialize one :class:`BroadcastRecord` per row.

        All scalar fields are converted to native Python types (via
        ``tolist``) so the records serialize exactly like ones built row
        by row — columnar and record backends must be indistinguishable.
        """
        indptr = self.viewer_indptr
        return [
            BroadcastRecord(
                broadcast_id=bid,
                broadcaster_id=bcaster,
                app_name=self.app_name,
                start_time=start,
                duration_s=duration,
                viewer_ids=self.viewer_ids[indptr[i] : indptr[i + 1]],
                web_views=web,
                heart_count=hearts,
                comment_count=comments,
                commenter_count=commenters,
                is_private=private,
                broadcaster_followers=followers,
            )
            for i, (
                bid,
                bcaster,
                start,
                duration,
                web,
                hearts,
                comments,
                commenters,
                private,
                followers,
            ) in enumerate(
                zip(
                    self.broadcast_id.tolist(),
                    self.broadcaster_id.tolist(),
                    self.start_time.tolist(),
                    self.duration_s.tolist(),
                    self.web_views.tolist(),
                    self.heart_count.tolist(),
                    self.comment_count.tolist(),
                    self.commenter_count.tolist(),
                    self.is_private.tolist(),
                    self.broadcaster_followers.tolist(),
                )
            )
        ]

    def take(self, indices: np.ndarray) -> "BroadcastColumns":
        """Rows at ``indices`` (in that order), ragged viewers regathered."""
        indices = np.asarray(indices, dtype=np.int64)
        counts = self.mobile_views[indices]
        total = int(counts.sum())
        starts = np.zeros(len(indices) + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        offsets = (
            np.arange(total, dtype=np.int64)
            - np.repeat(starts[:-1], counts)
            + np.repeat(self.viewer_indptr[indices], counts)
        )
        return BroadcastColumns(
            app_name=self.app_name,
            broadcast_id=self.broadcast_id[indices],
            broadcaster_id=self.broadcaster_id[indices],
            start_time=self.start_time[indices],
            duration_s=self.duration_s[indices],
            web_views=self.web_views[indices],
            heart_count=self.heart_count[indices],
            comment_count=self.comment_count[indices],
            commenter_count=self.commenter_count[indices],
            is_private=self.is_private[indices],
            broadcaster_followers=self.broadcaster_followers[indices],
            viewer_indptr=starts,
            viewer_ids=self.viewer_ids[offsets],
        )

    @classmethod
    def concat(
        cls, parts: Sequence["BroadcastColumns"], app_name: Optional[str] = None
    ) -> "BroadcastColumns":
        """Concatenate batches (same app) into one columnar block.

        ``app_name`` names the app the batches must belong to and makes
        an *empty* ``parts`` legal (it concatenates to
        :meth:`empty`) — day-range shards of a quiet day produce zero
        batches, and the merge must not care.  Without it, empty input
        is an error as before.
        """
        if not parts:
            if app_name is None:
                raise ValueError("no column batches to concatenate")
            return cls.empty(app_name)
        first = parts[0]
        if app_name is not None and first.app_name != app_name:
            raise ValueError(
                f"cannot concatenate {first.app_name!r} columns as {app_name!r}"
            )
        if any(p.app_name != first.app_name for p in parts):
            raise ValueError("cannot concatenate columns from different apps")
        if len(parts) == 1:
            return first
        viewer_indptr = np.zeros(
            sum(len(p) for p in parts) + 1, dtype=np.int64
        )
        cursor = 0
        base = 0
        for part in parts:
            viewer_indptr[cursor + 1 : cursor + len(part) + 1] = (
                part.viewer_indptr[1:] + base
            )
            cursor += len(part)
            base += len(part.viewer_ids)
        return cls(
            app_name=first.app_name,
            broadcast_id=np.concatenate([p.broadcast_id for p in parts]),
            broadcaster_id=np.concatenate([p.broadcaster_id for p in parts]),
            start_time=np.concatenate([p.start_time for p in parts]),
            duration_s=np.concatenate([p.duration_s for p in parts]),
            web_views=np.concatenate([p.web_views for p in parts]),
            heart_count=np.concatenate([p.heart_count for p in parts]),
            comment_count=np.concatenate([p.comment_count for p in parts]),
            commenter_count=np.concatenate([p.commenter_count for p in parts]),
            is_private=np.concatenate([p.is_private for p in parts]),
            broadcaster_followers=np.concatenate(
                [p.broadcaster_followers for p in parts]
            ),
            viewer_indptr=viewer_indptr,
            viewer_ids=np.concatenate([p.viewer_ids for p in parts]),
        )


class BroadcastDataset:
    """A complete crawl of one application over one measurement window.

    Backed either by a list of :class:`BroadcastRecord` (crawler
    simulators build these incrementally) or by :class:`BroadcastColumns`
    (the trace generator's bulk output).  ``records`` materializes lazily
    from columns; aggregate statistics use the columnar fast path when it
    is available and fall back to record loops otherwise.
    """

    def __init__(
        self,
        app_name: str,
        days: int,
        records: Optional[list[BroadcastRecord]] = None,
        downtime: Optional[DowntimeWindow] = None,
        *,
        columns: Optional[BroadcastColumns] = None,
    ) -> None:
        if records is not None and columns is not None:
            raise ValueError("pass records or columns, not both")
        self.app_name = app_name
        self.days = days
        self.downtime = downtime
        self._columns = columns
        self._records: Optional[list[BroadcastRecord]] = (
            list(records) if records is not None else ([] if columns is None else None)
        )

    @classmethod
    def from_columns(
        cls,
        app_name: str,
        days: int,
        columns: BroadcastColumns,
        downtime: Optional[DowntimeWindow] = None,
    ) -> "BroadcastDataset":
        return cls(app_name=app_name, days=days, downtime=downtime, columns=columns)

    @property
    def records(self) -> list[BroadcastRecord]:
        """Record-object view; materialized from columns on first access."""
        if self._records is None:
            self._records = self._columns.to_records()
        return self._records

    @property
    def columns(self) -> Optional[BroadcastColumns]:
        """The columnar backend, or ``None`` for record-built datasets."""
        return self._columns

    def add(self, record: BroadcastRecord) -> None:
        records = self.records  # materialize before mutating
        records.append(record)
        self._columns = None  # stale: single source of truth is now records

    def __len__(self) -> int:
        if self._columns is not None:
            return len(self._columns)
        return len(self.records)

    def __iter__(self) -> Iterator[BroadcastRecord]:
        return iter(self.records)

    # -- aggregate statistics (Table 1) ---------------------------------

    @property
    def broadcast_count(self) -> int:
        return len(self)

    @property
    def broadcaster_count(self) -> int:
        if self._columns is not None:
            return len(np.unique(self._columns.broadcaster_id))
        return len({record.broadcaster_id for record in self.records})

    @property
    def total_views(self) -> int:
        return self.mobile_views + self.web_views

    @property
    def mobile_views(self) -> int:
        if self._columns is not None:
            return len(self._columns.viewer_ids)
        return sum(record.mobile_views for record in self.records)

    @property
    def web_views(self) -> int:
        if self._columns is not None:
            return int(self._columns.web_views.sum())
        return sum(record.web_views for record in self.records)

    @property
    def unique_viewer_count(self) -> int:
        if self._columns is not None:
            return len(np.unique(self._columns.viewer_ids))
        unique: set[int] = set()
        for record in self.records:
            unique.update(record.viewer_ids.tolist())
        return len(unique)

    def table1_row(self) -> dict[str, int]:
        """The Table 1 row for this dataset."""
        return {
            "broadcasts": self.broadcast_count,
            "broadcasters": self.broadcaster_count,
            "total_views": self.total_views,
            "unique_viewers": self.unique_viewer_count,
        }

    # -- time series (Figures 1-2) ---------------------------------------

    def _start_days(self) -> np.ndarray:
        """Per-row integer start day (columnar backend only)."""
        return (self._columns.start_time / SECONDS_PER_DAY).astype(np.int64)

    def daily_broadcast_counts(self) -> np.ndarray:
        if self._columns is not None:
            days = self._start_days()
            valid = (days >= 0) & (days < self.days)
            return np.bincount(days[valid], minlength=self.days)
        counts = np.zeros(self.days, dtype=np.int64)
        for record in self.records:
            day = int(record.start_day)
            if 0 <= day < self.days:
                counts[day] += 1
        return counts

    def daily_active_users(self) -> tuple[np.ndarray, np.ndarray]:
        """(daily unique viewers, daily unique broadcasters)."""
        if self._columns is not None:
            cols = self._columns
            days = self._start_days()
            valid = (days >= 0) & (days < self.days)
            # Pack (day, user) into one int64 so uniqueness is one np.unique.
            b_pairs = (days[valid] << _PACK_ID_BITS) | cols.broadcaster_id[valid]
            day_per_view = np.repeat(days, cols.mobile_views)
            view_valid = (day_per_view >= 0) & (day_per_view < self.days)
            v_pairs = (day_per_view[view_valid] << _PACK_ID_BITS) | cols.viewer_ids[
                view_valid
            ]
            unique_b = np.unique(b_pairs)
            unique_v = np.unique(v_pairs)
            return (
                np.bincount(unique_v >> _PACK_ID_BITS, minlength=self.days),
                np.bincount(unique_b >> _PACK_ID_BITS, minlength=self.days),
            )
        viewers: list[set[int]] = [set() for _ in range(self.days)]
        broadcasters: list[set[int]] = [set() for _ in range(self.days)]
        for record in self.records:
            day = int(record.start_day)
            if not 0 <= day < self.days:
                continue
            broadcasters[day].add(record.broadcaster_id)
            viewers[day].update(record.viewer_ids.tolist())
        return (
            np.array([len(s) for s in viewers], dtype=np.int64),
            np.array([len(s) for s in broadcasters], dtype=np.int64),
        )

    # -- filtering --------------------------------------------------------

    def apply_downtime(
        self, window: DowntimeWindow, rng: np.random.Generator
    ) -> "BroadcastDataset":
        """Return a copy with broadcasts lost during the outage removed.

        Kept on the record path deliberately: the rng is consulted only
        for records inside the window, and that draw order is part of the
        deterministic contract with existing seeds.
        """
        kept = [
            record
            for record in self.records
            if not (window.covers(record.start_day) and rng.random() < window.loss_fraction)
        ]
        return BroadcastDataset(
            app_name=self.app_name, days=self.days, records=kept, downtime=window
        )

    def sample_records(
        self, rng: np.random.Generator, count: int
    ) -> list[BroadcastRecord]:
        """Uniform random sample (the delay study drew 16,013 broadcasts)."""
        if count >= len(self):
            return list(self.records)
        indices = rng.choice(len(self), size=count, replace=False)
        return [self.records[i] for i in sorted(indices)]


def merge_datasets(datasets: Sequence[BroadcastDataset]) -> BroadcastDataset:
    """Concatenate several crawls of the same app (e.g. sharded crawlers).

    Duplicate broadcast IDs keep their first occurrence (in dataset
    order).  When every input is columnar the merge is a concatenate plus
    one vectorized first-occurrence scan — no record objects are built.
    """
    if not datasets:
        raise ValueError("no datasets to merge")
    first = datasets[0]
    if any(d.app_name != first.app_name for d in datasets):
        raise ValueError("cannot merge datasets from different apps")
    days = max(d.days for d in datasets)
    if all(d.columns is not None for d in datasets):
        combined = BroadcastColumns.concat([d.columns for d in datasets])
        _, first_indices = np.unique(combined.broadcast_id, return_index=True)
        first_indices.sort()
        if len(first_indices) != len(combined):
            combined = combined.take(first_indices)
        return BroadcastDataset.from_columns(
            app_name=first.app_name, days=days, columns=combined
        )
    merged = BroadcastDataset(app_name=first.app_name, days=days)
    seen: set[int] = set()
    for dataset in datasets:
        for record in dataset:
            if record.broadcast_id not in seen:
                seen.add(record.broadcast_id)
                merged.add(record)
    return merged


def views_per_user(
    records: Union[BroadcastDataset, Iterable[BroadcastRecord]]
) -> dict[int, int]:
    """Number of broadcasts viewed per registered user (Figure 6)."""
    if isinstance(records, BroadcastDataset) and records.columns is not None:
        cols = records.columns
        row = np.repeat(
            np.arange(len(cols), dtype=np.int64), cols.mobile_views
        )
        # Dedup (row, viewer) pairs, then tally each viewer's rows.
        order = np.lexsort((cols.viewer_ids, row))
        r = row[order]
        v = cols.viewer_ids[order]
        distinct = np.ones(len(r), dtype=bool)
        distinct[1:] = (r[1:] != r[:-1]) | (v[1:] != v[:-1])
        users, counts = np.unique(v[distinct], return_counts=True)
        return dict(zip(users.tolist(), counts.tolist()))
    counts_by_user: dict[int, int] = {}
    for record in records:
        for viewer in np.unique(record.viewer_ids):
            key = int(viewer)
            counts_by_user[key] = counts_by_user.get(key, 0) + 1
    return counts_by_user


def creations_per_user(
    records: Union[BroadcastDataset, Iterable[BroadcastRecord]]
) -> dict[int, int]:
    """Number of broadcasts created per user (Figure 6)."""
    if isinstance(records, BroadcastDataset) and records.columns is not None:
        users, counts = np.unique(
            records.columns.broadcaster_id, return_counts=True
        )
        return dict(zip(users.tolist(), counts.tolist()))
    counts_by_user: dict[int, int] = {}
    for record in records:
        counts_by_user[record.broadcaster_id] = (
            counts_by_user.get(record.broadcaster_id, 0) + 1
        )
    return counts_by_user
