"""Crawled broadcast datasets.

A :class:`BroadcastRecord` is the per-broadcast metadata row the paper's
crawler stored (no video or message content): identifiers, times, viewer
IDs with join times, and comment/heart tallies.  A :class:`BroadcastDataset`
is the full measurement — with support for the crawler-downtime window
(Aug 7–9, ~4.5% of broadcasts lost) that the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class DowntimeWindow:
    """A crawler outage: broadcasts starting inside it are lost."""

    start_day: float
    end_day: float
    loss_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.end_day < self.start_day:
            raise ValueError("end_day before start_day")
        if not 0 <= self.loss_fraction <= 1:
            raise ValueError("loss_fraction must be within [0, 1]")

    def covers(self, day: float) -> bool:
        return self.start_day <= day < self.end_day


@dataclass
class BroadcastRecord:
    """One crawled broadcast (metadata only, identifiers anonymized upstream)."""

    broadcast_id: int
    broadcaster_id: int
    app_name: str
    start_time: float  # seconds since measurement start
    duration_s: float
    viewer_ids: np.ndarray  # registered (mobile) viewer IDs, one per view
    web_views: int
    heart_count: int
    comment_count: int
    commenter_count: int
    is_private: bool = False
    broadcaster_followers: int = 0

    def __post_init__(self) -> None:
        self.viewer_ids = np.asarray(self.viewer_ids, dtype=np.int64)
        if self.duration_s < 0:
            raise ValueError("negative duration")
        if self.web_views < 0:
            raise ValueError("negative web views")

    @property
    def start_day(self) -> float:
        return self.start_time / SECONDS_PER_DAY

    @property
    def mobile_views(self) -> int:
        return int(len(self.viewer_ids))

    @property
    def total_views(self) -> int:
        return self.mobile_views + self.web_views

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration_s


@dataclass
class BroadcastDataset:
    """A complete crawl of one application over one measurement window."""

    app_name: str
    days: int
    records: list[BroadcastRecord] = field(default_factory=list)
    downtime: Optional[DowntimeWindow] = None

    def add(self, record: BroadcastRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[BroadcastRecord]:
        return iter(self.records)

    # -- aggregate statistics (Table 1) ---------------------------------

    @property
    def broadcast_count(self) -> int:
        return len(self.records)

    @property
    def broadcaster_count(self) -> int:
        return len({record.broadcaster_id for record in self.records})

    @property
    def total_views(self) -> int:
        return sum(record.total_views for record in self.records)

    @property
    def mobile_views(self) -> int:
        return sum(record.mobile_views for record in self.records)

    @property
    def web_views(self) -> int:
        return sum(record.web_views for record in self.records)

    @property
    def unique_viewer_count(self) -> int:
        unique: set[int] = set()
        for record in self.records:
            unique.update(record.viewer_ids.tolist())
        return len(unique)

    def table1_row(self) -> dict[str, int]:
        """The Table 1 row for this dataset."""
        return {
            "broadcasts": self.broadcast_count,
            "broadcasters": self.broadcaster_count,
            "total_views": self.total_views,
            "unique_viewers": self.unique_viewer_count,
        }

    # -- time series (Figures 1-2) ---------------------------------------

    def daily_broadcast_counts(self) -> np.ndarray:
        counts = np.zeros(self.days, dtype=np.int64)
        for record in self.records:
            day = int(record.start_day)
            if 0 <= day < self.days:
                counts[day] += 1
        return counts

    def daily_active_users(self) -> tuple[np.ndarray, np.ndarray]:
        """(daily unique viewers, daily unique broadcasters)."""
        viewers: list[set[int]] = [set() for _ in range(self.days)]
        broadcasters: list[set[int]] = [set() for _ in range(self.days)]
        for record in self.records:
            day = int(record.start_day)
            if not 0 <= day < self.days:
                continue
            broadcasters[day].add(record.broadcaster_id)
            viewers[day].update(record.viewer_ids.tolist())
        return (
            np.array([len(s) for s in viewers], dtype=np.int64),
            np.array([len(s) for s in broadcasters], dtype=np.int64),
        )

    # -- filtering --------------------------------------------------------

    def apply_downtime(
        self, window: DowntimeWindow, rng: np.random.Generator
    ) -> "BroadcastDataset":
        """Return a copy with broadcasts lost during the outage removed."""
        kept = [
            record
            for record in self.records
            if not (window.covers(record.start_day) and rng.random() < window.loss_fraction)
        ]
        return BroadcastDataset(
            app_name=self.app_name, days=self.days, records=kept, downtime=window
        )

    def sample_records(
        self, rng: np.random.Generator, count: int
    ) -> list[BroadcastRecord]:
        """Uniform random sample (the delay study drew 16,013 broadcasts)."""
        if count >= len(self.records):
            return list(self.records)
        indices = rng.choice(len(self.records), size=count, replace=False)
        return [self.records[i] for i in sorted(indices)]


def merge_datasets(datasets: Sequence[BroadcastDataset]) -> BroadcastDataset:
    """Concatenate several crawls of the same app (e.g. sharded crawlers)."""
    if not datasets:
        raise ValueError("no datasets to merge")
    first = datasets[0]
    if any(d.app_name != first.app_name for d in datasets):
        raise ValueError("cannot merge datasets from different apps")
    merged = BroadcastDataset(
        app_name=first.app_name, days=max(d.days for d in datasets)
    )
    seen: set[int] = set()
    for dataset in datasets:
        for record in dataset:
            if record.broadcast_id not in seen:
                seen.add(record.broadcast_id)
                merged.add(record)
    return merged


def views_per_user(records: Iterable[BroadcastRecord]) -> dict[int, int]:
    """Number of broadcasts viewed per registered user (Figure 6)."""
    counts: dict[int, int] = {}
    for record in records:
        for viewer in np.unique(record.viewer_ids):
            key = int(viewer)
            counts[key] = counts.get(key, 0) + 1
    return counts


def creations_per_user(records: Iterable[BroadcastRecord]) -> dict[int, int]:
    """Number of broadcasts created per user (Figure 6)."""
    counts: dict[int, int] = {}
    for record in records:
        counts[record.broadcaster_id] = counts.get(record.broadcaster_id, 0) + 1
    return counts
