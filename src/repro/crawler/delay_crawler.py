"""The fine-grained delay crawler (§4.3).

Two instruments, mirroring the paper's passive measurement setup:

* an RTMP crawler that joins a broadcast immediately with a zero-length
  stream buffer and records every frame's arrival (timestamp ②) next to
  the capture timestamp embedded in the keyframe metadata (①);
* an HLS crawler that polls a Fastly POP every 0.1 s — 20× faster than a
  real viewer — so it both observes chunk availability (⑪) the moment it
  happens and *triggers* the origin pull the instant the chunklist
  expires, pinning the Wowza2Fastly measurement (⑪−⑦) tight.

Crawlers were deployed co-located with each datacenter (the paper used
nearby EC2 sites), so their own network delay is negligible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cdn.fastly import FastlyEdge
from repro.cdn.wowza import WowzaIngest
from repro.protocols.frames import VideoFrame
from repro.protocols.hls import Chunklist
from repro.simulation.engine import Simulator


@dataclass(frozen=True)
class FrameObservation:
    """One frame seen by the RTMP crawler."""

    sequence: int
    capture_time: float  # ① from keyframe metadata
    server_time: float  # ② observed at the co-located crawler


@dataclass(frozen=True)
class ChunkObservation:
    """One chunk seen by the HLS crawler."""

    chunk_index: int
    ready_time: float  # ⑦ (from the RTMP-side record)
    available_time: float  # ⑪ first availability at the POP


@dataclass
class DelayCrawler:
    """Joins one broadcast with both crawler instruments."""

    broadcast_id: int
    simulator: Simulator
    poll_interval_s: float = 0.1
    stop_after: float = float("inf")
    frames: list[FrameObservation] = field(default_factory=list)
    _edge: FastlyEdge | None = field(default=None, init=False)
    _stopped: bool = field(default=False, init=False)

    # -- RTMP side -------------------------------------------------------

    def attach_rtmp(self, wowza: WowzaIngest) -> None:
        """Subscribe with a zero buffer: frames recorded the moment Wowza
        pushes them (the crawler is co-located, last mile ≈ 0)."""
        wowza.subscribe_rtmp(self.broadcast_id, self)

    def push_frame(self, broadcast_id: int, frame: VideoFrame, pushed_at: float) -> None:
        """RtmpSubscriber protocol."""
        if broadcast_id != self.broadcast_id:
            raise ValueError("frame for wrong broadcast")
        self.frames.append(
            FrameObservation(
                sequence=frame.sequence,
                capture_time=frame.capture_time,
                server_time=pushed_at,
            )
        )

    # -- HLS side ----------------------------------------------------------

    def attach_hls(self, edge: FastlyEdge) -> None:
        """Start 0.1 s polling against ``edge`` (must already be attached
        to the broadcast)."""
        self._edge = edge
        self.simulator.schedule(0.0, self._poll, label=f"crawler-poll:{self.broadcast_id}")

    def stop(self) -> None:
        self._stopped = True

    def _poll(self) -> None:
        if self._stopped or self._edge is None or self.simulator.now > self.stop_after:
            return
        self._edge.poll(self.broadcast_id, self._on_chunklist)
        self.simulator.schedule(
            self.poll_interval_s, self._poll, label=f"crawler-poll:{self.broadcast_id}"
        )

    def _on_chunklist(self, chunklist: Chunklist, response_time: float) -> None:
        # Availability is recorded by the edge itself; nothing to do here.
        del chunklist, response_time

    # -- results -------------------------------------------------------------

    def frame_arrival_trace(self) -> np.ndarray:
        """Frame arrival times at the ingest server, sequence order."""
        ordered = sorted(self.frames, key=lambda f: f.sequence)
        return np.array([f.server_time for f in ordered])

    def upload_delays(self) -> np.ndarray:
        """Per-frame ② − ①."""
        ordered = sorted(self.frames, key=lambda f: f.sequence)
        return np.array([f.server_time - f.capture_time for f in ordered])

    def chunk_observations(self, wowza: WowzaIngest) -> list[ChunkObservation]:
        """Join the RTMP-side chunk-ready record with POP availability."""
        if self._edge is None:
            raise RuntimeError("HLS crawler was never attached")
        record = wowza.record_for(self.broadcast_id)
        availability = self._edge.availability_map(self.broadcast_id)
        observations = []
        # The sorted() is load-bearing: the unordered-set-iteration lint rule
        # fails the build if this intersection is ever iterated bare.
        for index in sorted(set(record.chunk_ready) & set(availability)):
            observations.append(
                ChunkObservation(
                    chunk_index=index,
                    ready_time=record.chunk_ready[index],
                    available_time=availability[index],
                )
            )
        return observations

    def chunk_availability_trace(self) -> np.ndarray:
        """Chunk availability times ⑪ at the polled POP, index order."""
        if self._edge is None:
            raise RuntimeError("HLS crawler was never attached")
        return np.array(self._edge.availability_times(self.broadcast_id))

    def wowza2fastly_delays(self, wowza: WowzaIngest) -> np.ndarray:
        """Per-chunk ⑪ − ⑦ (the Figure 15 quantity)."""
        observations = self.chunk_observations(wowza)
        return np.array([o.available_time - o.ready_time for o in observations])
