"""Per-broadcast monitors.

When the global-list crawler discovers a broadcast, it starts a monitor
thread that joins the broadcast and records metadata until it terminates
(§3.1): broadcast ID, start/end times, broadcaster, every viewer's ID and
join time, and timestamped comments/hearts.  Identifiers are anonymized
before the record enters the dataset.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.crawler.dataset import BroadcastDataset, BroadcastRecord
from repro.platform.broadcasts import Broadcast
if TYPE_CHECKING:  # break the import cycle: the facade imports repro.service
    from repro.platform.service import LivestreamService
from repro.social.graph import FollowGraph


def anonymize_id(raw_id: int, salt: str = "repro") -> int:
    """Stable one-way pseudonymization of a user/broadcast identifier."""
    digest = hashlib.sha256(f"{salt}:{raw_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass
class BroadcastMonitor:
    """Records one broadcast from discovery until it ends."""

    broadcast_id: int
    discovered_at: float
    salt: Optional[str] = None  # set to anonymize identifiers
    finalized: bool = field(default=False, init=False)

    def finalize(
        self,
        service: LivestreamService,
        graph: Optional[FollowGraph] = None,
    ) -> BroadcastRecord:
        """Produce the dataset record once the broadcast has ended."""
        if self.finalized:
            raise RuntimeError(f"broadcast {self.broadcast_id} already finalized")
        broadcast = service.get_broadcast(self.broadcast_id)
        if broadcast.is_live:
            raise RuntimeError(f"broadcast {self.broadcast_id} is still live")
        record = self._record_from(broadcast, graph)
        self.finalized = True
        return record

    def _record_from(
        self, broadcast: Broadcast, graph: Optional[FollowGraph]
    ) -> BroadcastRecord:
        mobile_ids = [
            view.viewer_id for view in broadcast.views if view.tier.value != "web"
        ]
        web_views = sum(1 for view in broadcast.views if view.tier.value == "web")
        broadcaster_id = broadcast.broadcaster_id
        followers = graph.follower_count(broadcaster_id) if graph is not None else 0
        if self.salt is not None:
            mobile_ids = [anonymize_id(v, self.salt) for v in mobile_ids]
            broadcaster_id = anonymize_id(broadcaster_id, self.salt)
        return BroadcastRecord(
            broadcast_id=broadcast.broadcast_id,
            broadcaster_id=broadcaster_id,
            app_name=broadcast.app_name,
            start_time=broadcast.start_time,
            duration_s=broadcast.duration,
            viewer_ids=np.array(mobile_ids, dtype=np.int64),
            web_views=web_views,
            heart_count=len(broadcast.hearts),
            comment_count=len(broadcast.comments),
            commenter_count=len(broadcast.commenter_ids),
            is_private=broadcast.is_private,
            broadcaster_followers=followers,
        )


def monitor_all(
    service: LivestreamService,
    discoveries: dict[int, float],
    days: int,
    graph: Optional[FollowGraph] = None,
    salt: Optional[str] = None,
) -> BroadcastDataset:
    """Finalize monitors for every discovered, ended broadcast."""
    dataset = BroadcastDataset(app_name=service.profile.name, days=days)
    for broadcast_id, found_at in sorted(discoveries.items()):
        broadcast = service.get_broadcast(broadcast_id)
        if broadcast.is_live:
            continue  # still running when the crawl stopped
        monitor = BroadcastMonitor(
            broadcast_id=broadcast_id, discovered_at=found_at, salt=salt
        )
        dataset.add(monitor.finalize(service, graph))
    return dataset
