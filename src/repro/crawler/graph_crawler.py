"""The follow-graph crawler (§3.1: "For each user, we crawled her
follower and followee lists").

The paper's social-graph dataset came from a separate crawl of per-user
follower/followee list endpoints.  This crawler reproduces that process
against the simulated graph: paginated list fetches, BFS expansion from
seed users, token-bucket rate limiting, and a request budget — so the
coverage-vs-cost trade-off of graph crawling can be studied (and the
Table 2 metrics can be computed from a *crawled* copy rather than the
ground-truth graph).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.crawler.rate_limit import TokenBucket
from repro.social.graph import FollowGraph

#: Periscope-era list endpoints returned pages of this many users.
DEFAULT_PAGE_SIZE = 100


@dataclass
class GraphApi:
    """The service's follower/followee list API over a ground-truth graph.

    Exposes paginated reads and counts every request — the quantity rate
    limits bound.
    """

    graph: FollowGraph
    page_size: int = DEFAULT_PAGE_SIZE
    requests_served: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page size must be positive")

    def _paged(self, members: Iterable[int], page: int) -> tuple[list[int], bool]:
        ordered = sorted(members)
        start = page * self.page_size
        chunk = ordered[start : start + self.page_size]
        has_more = start + self.page_size < len(ordered)
        return chunk, has_more

    def follower_page(self, user_id: int, page: int) -> tuple[list[int], bool]:
        """One page of a user's followers; returns (ids, has_more)."""
        self.requests_served += 1
        return self._paged(self.graph.followers_of(user_id), page)

    def followee_page(self, user_id: int, page: int) -> tuple[list[int], bool]:
        """One page of a user's followees; returns (ids, has_more)."""
        self.requests_served += 1
        return self._paged(self.graph.followees_of(user_id), page)


@dataclass
class GraphCrawl:
    """Outcome of one crawl: the recovered graph and its cost."""

    crawled: FollowGraph
    users_visited: int
    requests_made: int
    frontier_remaining: int

    def edge_coverage(self, truth: FollowGraph) -> float:
        if truth.edge_count == 0:
            return 1.0
        return self.crawled.edge_count / truth.edge_count


class FollowGraphCrawler:
    """BFS crawler over the follower/followee list API."""

    def __init__(
        self,
        api: GraphApi,
        rate_limit: Optional[TokenBucket] = None,
        request_budget: Optional[int] = None,
    ) -> None:
        if request_budget is not None and request_budget <= 0:
            raise ValueError("request budget must be positive")
        self.api = api
        self.rate_limit = rate_limit
        self.request_budget = request_budget
        self._requests = 0

    def _allowed(self, now: float) -> bool:
        if self.request_budget is not None and self._requests >= self.request_budget:
            return False
        if self.rate_limit is not None and not self.rate_limit.try_acquire(now):
            return False
        return True

    def crawl(
        self,
        seeds: list[int],
        now: float = 0.0,
        request_spacing_s: float = 0.0,
    ) -> GraphCrawl:
        """BFS from ``seeds``, fetching both lists of every visited user.

        ``request_spacing_s`` advances the (virtual) clock between
        requests so a rate limit refills realistically.
        """
        if not seeds:
            raise ValueError("need at least one seed user")
        crawled = FollowGraph()
        visited: set[int] = set()
        frontier: deque[int] = deque(seeds)
        clock = now
        exhausted = False

        while frontier and not exhausted:
            user = frontier.popleft()
            if user in visited:
                continue
            visited.add(user)
            crawled.add_node(user)
            for fetch, direction in (
                (self.api.follower_page, "in"),
                (self.api.followee_page, "out"),
            ):
                page = 0
                while True:
                    if not self._allowed(clock):
                        exhausted = True
                        break
                    self._requests += 1
                    clock += request_spacing_s
                    members, has_more = fetch(user, page)
                    for other in members:
                        if direction == "in":
                            crawled.add_follow(other, user)
                        else:
                            crawled.add_follow(user, other)
                        if other not in visited:
                            frontier.append(other)
                    if not has_more:
                        break
                    page += 1
                if exhausted:
                    break
        return GraphCrawl(
            crawled=crawled,
            users_visited=len(visited),
            requests_made=self._requests,
            frontier_remaining=len(frontier),
        )
