"""Within-broadcast viewer arrival processes.

Audience build-up is front-loaded: follower notifications fire at broadcast
start and produce an initial burst (exponential inter-arrivals over the
first minute or two), while organic discovery through the global list adds
a slowly decaying trickle for the rest of the broadcast.  The join order
matters: the first ~100 arrivals take the RTMP tier and the commenter cap
(§4.1), so the burst/trickle split decides who gets low-latency streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ViewerArrivalModel:
    """Samples join-time offsets (seconds from broadcast start).

    Parameters
    ----------
    burst_fraction:
        Share of the audience arriving in the notification burst.
    burst_scale_s:
        Mean of the exponential burst arrival offsets.
    trickle_decay:
        Organic arrivals decay as ``exp(-decay * t / duration)``; 0 gives
        uniform arrivals over the broadcast.
    """

    burst_fraction: float = 0.35
    burst_scale_s: float = 45.0
    trickle_decay: float = 1.2

    def __post_init__(self) -> None:
        if not 0 <= self.burst_fraction <= 1:
            raise ValueError("burst_fraction must be within [0, 1]")
        if self.burst_scale_s <= 0:
            raise ValueError("burst_scale_s must be positive")
        if self.trickle_decay < 0:
            raise ValueError("trickle_decay must be non-negative")

    def sample_join_offsets(
        self,
        rng: np.random.Generator,
        audience_size: int,
        duration_s: float,
    ) -> np.ndarray:
        """Sorted join offsets for ``audience_size`` viewers."""
        if audience_size < 0:
            raise ValueError("audience_size must be non-negative")
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if audience_size == 0:
            return np.empty(0)
        burst_count = int(rng.binomial(audience_size, self.burst_fraction))
        trickle_count = audience_size - burst_count

        burst = rng.exponential(self.burst_scale_s, size=burst_count)
        burst = np.minimum(burst, duration_s * 0.999)

        if self.trickle_decay > 0:
            # Inverse-CDF of a truncated-exponential profile on [0, D].
            u = rng.random(trickle_count)
            decay = self.trickle_decay
            trickle = -duration_s / decay * np.log(1 - u * (1 - np.exp(-decay)))
        else:
            trickle = rng.random(trickle_count) * duration_s
        offsets = np.concatenate([burst, trickle])
        offsets.sort()
        return offsets
