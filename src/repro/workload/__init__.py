"""Workload generation: who broadcasts, when, and who watches.

Generates synthetic Periscope/Meerkat activity traces matching the
measurement study's §3 observations: Periscope's >300% three-month growth
with weekly periodicity and the Android-launch jump, Meerkat's decline,
short heavy-tailed broadcast durations, skewed audience sizes and per-user
activity, and follower-driven popularity.
"""

from repro.workload.growth import (
    GrowthModel,
    MEERKAT_GROWTH,
    PERISCOPE_GROWTH,
    weekday_of_day,
)
from repro.workload.arrivals import daily_arrival_times, DIURNAL_WEIGHTS
from repro.workload.broadcast_model import BroadcastParams, BroadcastParamsModel
from repro.workload.viewers import ViewerArrivalModel
from repro.workload.trace import (
    ShardContext,
    TraceConfig,
    TraceGenerator,
    WorkloadTrace,
    build_follow_graph,
    build_trace_context,
    derived_notification_open_rate,
    generate_day_columns,
    generate_day_records,
)

__all__ = [
    "GrowthModel",
    "PERISCOPE_GROWTH",
    "MEERKAT_GROWTH",
    "weekday_of_day",
    "daily_arrival_times",
    "DIURNAL_WEIGHTS",
    "BroadcastParams",
    "BroadcastParamsModel",
    "ViewerArrivalModel",
    "ShardContext",
    "TraceConfig",
    "TraceGenerator",
    "WorkloadTrace",
    "build_follow_graph",
    "build_trace_context",
    "derived_notification_open_rate",
    "generate_day_columns",
    "generate_day_records",
]
