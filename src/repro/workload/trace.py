"""End-to-end workload trace generation.

Produces the synthetic equivalent of the paper's crawled datasets: a
:class:`~repro.crawler.dataset.BroadcastDataset` per application, plus the
follow graph and user population behind it.  All Table 1 / Figures 1–7
analyses run off these traces.

Scaling: the paper's Periscope crawl covers 19.6M broadcasts by 1.85M
broadcasters with 705M views from a 12M-user network.  Running that raw
volume is unnecessary for shape reproduction, so all population and volume
constants scale by ``TraceConfig.scale`` (default 1/1000).  Audience-size
*distributions* are kept unscaled — views per broadcast is an intrinsic
quantity — except that the viral-audience cap is clamped to the scaled
viewer population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.crawler.dataset import SECONDS_PER_DAY, BroadcastDataset, BroadcastRecord
from repro.simulation.distributions import zipf_weights
from repro.simulation.randomness import RandomStreams
from repro.social.generation import FollowGraphConfig, generate_follow_graph
from repro.social.graph import FollowGraph
from repro.workload.arrivals import daily_arrival_times
from repro.workload.broadcast_model import BroadcastParamsModel
from repro.workload.growth import GrowthModel, MEERKAT_GROWTH, PERISCOPE_GROWTH


@dataclass
class TraceConfig:
    """Scaled trace-generation parameters for one application."""

    app_name: str = "Periscope"
    scale: float = 0.001
    seed: int = 2016
    growth: GrowthModel = field(default_factory=lambda: PERISCOPE_GROWTH)
    params: BroadcastParamsModel = field(default_factory=BroadcastParamsModel.for_periscope)

    #: Full-scale population constants (paper values); scaled by ``scale``.
    total_users_full: int = 12_000_000
    broadcaster_pool_full: int = 1_850_000
    viewer_pool_full: int = 7_650_000

    #: Zipf exponents for per-user activity skew (Figure 6).
    broadcaster_zipf: float = 0.85
    viewer_zipf: float = 0.95

    #: Probability a notified follower joins (Figure 7 correlation).
    #: At full scale ~2% is realistic; at reduced scale follower counts
    #: shrink with the population while organic audiences do not, so the
    #: default is raised to preserve the follower-driven share of the
    #: audience.  Set to 0.02 when running near scale=1.
    notification_open_rate: float = 0.10

    #: Generate a follow graph (Periscope); Meerkat's graph was unavailable.
    with_social_graph: bool = True
    graph_mean_out_degree: float = 19.3

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1:
            raise ValueError("scale must be in (0, 1]")

    @property
    def total_users(self) -> int:
        return max(100, int(self.total_users_full * self.scale))

    @property
    def broadcaster_pool(self) -> int:
        return max(20, int(self.broadcaster_pool_full * self.scale))

    @property
    def viewer_pool(self) -> int:
        return max(50, int(self.viewer_pool_full * self.scale))

    @classmethod
    def periscope(cls, scale: float = 0.001, seed: int = 2016) -> "TraceConfig":
        return cls(app_name="Periscope", scale=scale, seed=seed)

    @classmethod
    def meerkat(cls, scale: float = 0.001, seed: int = 2016) -> "TraceConfig":
        """Meerkat at the same scale: 164K broadcasts over 35 days."""
        return cls(
            app_name="Meerkat",
            scale=scale,
            seed=seed,
            growth=MEERKAT_GROWTH,
            params=BroadcastParamsModel.for_meerkat(),
            total_users_full=400_000,
            broadcaster_pool_full=57_000,
            viewer_pool_full=183_000,
            with_social_graph=False,
        )


@dataclass
class WorkloadTrace:
    """A generated measurement: dataset + population + optional graph."""

    config: TraceConfig
    dataset: BroadcastDataset
    graph: Optional[FollowGraph]
    broadcaster_ids: np.ndarray  # pool of user IDs acting as broadcasters
    viewer_ids: np.ndarray  # pool of registered mobile viewer IDs

    @property
    def app_name(self) -> str:
        return self.config.app_name


class TraceGenerator:
    """Generates a :class:`WorkloadTrace` for one application."""

    def __init__(self, config: TraceConfig) -> None:
        self.config = config
        self.streams = RandomStreams(config.seed)

    def generate(self) -> WorkloadTrace:
        config = self.config
        rng = self.streams.get(f"trace/{config.app_name}")

        total_users = config.total_users
        user_ids = np.arange(1, total_users + 1, dtype=np.int64)

        # Broadcaster and viewer pools are (possibly overlapping) subsets
        # of the user population.
        broadcaster_ids = rng.choice(user_ids, size=config.broadcaster_pool, replace=False)
        viewer_ids = rng.choice(user_ids, size=config.viewer_pool, replace=False)

        graph = self._build_graph(total_users) if config.with_social_graph else None

        # Per-user activity skew: precompute CDFs for inverse sampling.
        broadcaster_cdf = np.cumsum(
            zipf_weights(len(broadcaster_ids), config.broadcaster_zipf)
        )
        viewer_cdf = np.cumsum(zipf_weights(len(viewer_ids), config.viewer_zipf))

        dataset = BroadcastDataset(app_name=config.app_name, days=config.growth.days)
        audience_cap = min(config.params.audience_cap, int(0.8 * len(viewer_ids)))
        broadcast_id = 1
        for day in range(config.growth.days):
            expected = config.growth.broadcasts_on(day) * config.scale
            offsets = daily_arrival_times(rng, expected)
            for offset in offsets:
                record = self._make_record(
                    broadcast_id=broadcast_id,
                    start_time=day * SECONDS_PER_DAY + float(offset),
                    rng=rng,
                    graph=graph,
                    broadcaster_ids=broadcaster_ids,
                    broadcaster_cdf=broadcaster_cdf,
                    viewer_ids=viewer_ids,
                    viewer_cdf=viewer_cdf,
                    audience_cap=audience_cap,
                )
                dataset.add(record)
                broadcast_id += 1
        return WorkloadTrace(
            config=config,
            dataset=dataset,
            graph=graph,
            broadcaster_ids=broadcaster_ids,
            viewer_ids=viewer_ids,
        )

    # -- internals ----------------------------------------------------

    def _build_graph(self, total_users: int) -> FollowGraph:
        graph_config = FollowGraphConfig(
            n_nodes=total_users,
            mean_out_degree=self.config.graph_mean_out_degree,
        )
        return generate_follow_graph(graph_config, self.streams.get("graph"))

    def _make_record(
        self,
        broadcast_id: int,
        start_time: float,
        rng: np.random.Generator,
        graph: Optional[FollowGraph],
        broadcaster_ids: np.ndarray,
        broadcaster_cdf: np.ndarray,
        viewer_ids: np.ndarray,
        viewer_cdf: np.ndarray,
        audience_cap: int,
    ) -> BroadcastRecord:
        config = self.config
        params_model = config.params

        rank = int(np.searchsorted(broadcaster_cdf, rng.random()))
        broadcaster = int(broadcaster_ids[rank])

        duration = params_model.sample_duration(rng)
        organic = params_model.sample_audience(rng)
        organic = min(organic, audience_cap)

        # Follower notifications add audience on top of organic discovery
        # (Figure 7: followers vs viewers correlation).
        followers = graph.follower_count(broadcaster) if graph is not None else 0
        notified_joins = (
            int(rng.binomial(followers, config.notification_open_rate)) if followers else 0
        )
        audience = min(organic + notified_joins, audience_cap)

        excitement = float(rng.lognormal(mean=0.0, sigma=0.6))
        web_views = int(rng.binomial(audience, params_model.web_view_fraction)) if audience else 0
        mobile_views = audience - web_views
        hearts, comments, commenters = params_model.sample_engagement(
            audience, mobile_views, excitement, rng
        )

        # Assign mobile views to registered viewers (Zipf-skewed activity).
        if mobile_views:
            ranks = np.searchsorted(viewer_cdf, rng.random(mobile_views))
            mobile_ids = viewer_ids[ranks]
        else:
            mobile_ids = np.empty(0, dtype=np.int64)

        return BroadcastRecord(
            broadcast_id=broadcast_id,
            broadcaster_id=broadcaster,
            app_name=config.app_name,
            start_time=start_time,
            duration_s=duration,
            viewer_ids=mobile_ids,
            web_views=web_views,
            heart_count=hearts,
            comment_count=comments,
            commenter_count=commenters,
            # The crawl only ever sees public broadcasts (private ones are
            # absent from the global list), so the growth curves — which
            # are calibrated to the paper's *observed* volumes — already
            # describe public broadcasts only.
            is_private=False,
            broadcaster_followers=followers,
        )
