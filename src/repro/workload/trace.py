"""End-to-end workload trace generation.

Produces the synthetic equivalent of the paper's crawled datasets: a
:class:`~repro.crawler.dataset.BroadcastDataset` per application, plus the
follow graph and user population behind it.  All Table 1 / Figures 1–7
analyses run off these traces.

Scaling: the paper's Periscope crawl covers 19.6M broadcasts by 1.85M
broadcasters with 705M views from a 12M-user network.  Running that raw
volume is unnecessary for shape reproduction, so all population and volume
constants scale by ``TraceConfig.scale`` (default 1/1000).  Audience-size
*distributions* are kept unscaled — views per broadcast is an intrinsic
quantity — except that the viral-audience cap is clamped to the scaled
viewer population.

Determinism & sharding: every measurement day draws from its own named
substream (``trace/{app}/day/{day}``) derived from the root seed, so a
day's broadcasts are a pure function of ``(config, day)``.  That makes the
generated dataset independent of how days are grouped into shards and of
how many workers generate them — :mod:`repro.parallel` exploits this to
fan generation out over processes while guaranteeing byte-identical
output for any ``shards``/``workers`` setting.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.crawler.dataset import (
    SECONDS_PER_DAY,
    BroadcastColumns,
    BroadcastDataset,
    BroadcastRecord,
)
from repro.simulation.distributions import zipf_weights
from repro.simulation.randomness import RandomStreams, substream_seed
from repro.social.generation import FollowGraphConfig, generate_follow_graph_compiled
from repro.social.graph import AnyFollowGraph, CompiledGraph
from repro.workload.arrivals import daily_arrival_times
from repro.workload.broadcast_model import BroadcastParamsModel
from repro.workload.growth import GrowthModel, MEERKAT_GROWTH, PERISCOPE_GROWTH

#: Bump when the generation algorithm changes in a way that alters output
#: for a fixed config — it feeds the on-disk dataset cache key.
#: 3: vectorized graph build + columnar per-day sampling (batched draws
#: replaced the per-record draw sequence).
TRACE_SCHEMA_VERSION = 3

#: Realistic notification-open probability at full scale (~2% of a
#: broadcaster's followers join from the push notification).
FULL_SCALE_OPEN_RATE = 0.02

#: Hand-calibrated correction at the smallest practical scale (1/1000):
#: follower counts shrink with the population while organic audiences do
#: not, so the rate is boosted to preserve the follower-driven share.
SMALL_SCALE_OPEN_RATE_CAP = 0.10

#: Exponent of the smooth interpolation between the two anchors above;
#: chosen so the derived rate hits the cap exactly at scale = 0.001.
_OPEN_RATE_ALPHA = math.log(SMALL_SCALE_OPEN_RATE_CAP / FULL_SCALE_OPEN_RATE) / math.log(1000)


def derived_notification_open_rate(scale: float) -> float:
    """Scale-aware default for :attr:`TraceConfig.notification_open_rate`.

    Smoothly approaches the realistic :data:`FULL_SCALE_OPEN_RATE` as
    ``scale`` approaches 1 and the hand-tuned small-scale boost below
    ``scale = 0.001`` — previously the 0.10 correction was applied at
    *every* scale, silently overcounting follower-driven views on large
    runs.
    """
    if not 0 < scale <= 1:
        raise ValueError("scale must be in (0, 1]")
    return min(SMALL_SCALE_OPEN_RATE_CAP, FULL_SCALE_OPEN_RATE * scale**-_OPEN_RATE_ALPHA)


@dataclass
class TraceConfig:
    """Scaled trace-generation parameters for one application."""

    app_name: str = "Periscope"
    scale: float = 0.001
    seed: int = 2016
    growth: GrowthModel = field(default_factory=lambda: PERISCOPE_GROWTH)
    params: BroadcastParamsModel = field(default_factory=BroadcastParamsModel.for_periscope)

    #: Full-scale population constants (paper values); scaled by ``scale``.
    total_users_full: int = 12_000_000
    broadcaster_pool_full: int = 1_850_000
    viewer_pool_full: int = 7_650_000

    #: Zipf exponents for per-user activity skew (Figure 6).
    broadcaster_zipf: float = 0.85
    viewer_zipf: float = 0.95

    #: Probability a notified follower joins (Figure 7 correlation).
    #: ``None`` (the default) derives it from ``scale`` via
    #: :func:`derived_notification_open_rate`; an explicit value is used
    #: untouched.
    notification_open_rate: Optional[float] = None

    #: Generate a follow graph (Periscope); Meerkat's graph was unavailable.
    with_social_graph: bool = True
    graph_mean_out_degree: float = 19.3

    #: Number of day-range shards generation is dispatched in; 0 = auto
    #: (one per worker batch).  Never affects the generated data.
    shards: int = 0

    #: Worker processes for generation; 1 = in-process. Never affects the
    #: generated data.
    workers: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        if self.notification_open_rate is not None and not 0 <= self.notification_open_rate <= 1:
            raise ValueError("notification_open_rate must be within [0, 1]")
        if self.shards < 0:
            raise ValueError("shards must be >= 0 (0 = auto)")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    @property
    def total_users(self) -> int:
        return max(100, int(self.total_users_full * self.scale))

    @property
    def broadcaster_pool(self) -> int:
        return max(20, int(self.broadcaster_pool_full * self.scale))

    @property
    def viewer_pool(self) -> int:
        return max(50, int(self.viewer_pool_full * self.scale))

    @property
    def effective_notification_open_rate(self) -> float:
        """The open rate actually used: explicit value, or scale-derived."""
        if self.notification_open_rate is not None:
            return self.notification_open_rate
        return derived_notification_open_rate(self.scale)

    def cache_key(self) -> str:
        """Stable hash of everything that determines the generated dataset.

        Deliberately excludes ``shards`` and ``workers`` — generation is
        schedule-independent, so the same key must hit for any of them.
        """
        payload = {
            "trace_schema": TRACE_SCHEMA_VERSION,
            "app_name": self.app_name,
            "scale": self.scale,
            "seed": self.seed,
            "growth": asdict(self.growth),
            "params": asdict(self.params),
            "total_users_full": self.total_users_full,
            "broadcaster_pool_full": self.broadcaster_pool_full,
            "viewer_pool_full": self.viewer_pool_full,
            "broadcaster_zipf": self.broadcaster_zipf,
            "viewer_zipf": self.viewer_zipf,
            "notification_open_rate": self.effective_notification_open_rate,
            "with_social_graph": self.with_social_graph,
            "graph_mean_out_degree": self.graph_mean_out_degree,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]

    @classmethod
    def periscope(cls, scale: float = 0.001, seed: int = 2016, **kwargs) -> "TraceConfig":
        return cls(app_name="Periscope", scale=scale, seed=seed, **kwargs)

    @classmethod
    def meerkat(cls, scale: float = 0.001, seed: int = 2016, **kwargs) -> "TraceConfig":
        """Meerkat at the same scale: 164K broadcasts over 35 days."""
        return cls(
            app_name="Meerkat",
            scale=scale,
            seed=seed,
            growth=MEERKAT_GROWTH,
            params=BroadcastParamsModel.for_meerkat(),
            total_users_full=400_000,
            broadcaster_pool_full=57_000,
            viewer_pool_full=183_000,
            with_social_graph=False,
            **kwargs,
        )


class WorkloadTrace:
    """A generated measurement: dataset + population + optional graph.

    ``graph`` may be eager (a graph object or ``None``) or lazy: pass a
    zero-argument callable and it is invoked once on first access.  The
    dataset-cache hit path uses the lazy form so a cached run never pays
    the graph build unless an analysis actually touches ``trace.graph``.
    """

    def __init__(
        self,
        config: TraceConfig,
        dataset: BroadcastDataset,
        graph: Union[Optional[AnyFollowGraph], Callable[[], Optional[AnyFollowGraph]]],
        broadcaster_ids: np.ndarray,
        viewer_ids: np.ndarray,
    ) -> None:
        self.config = config
        self.dataset = dataset
        self.broadcaster_ids = broadcaster_ids  # pool of broadcaster user IDs
        self.viewer_ids = viewer_ids  # pool of registered mobile viewer IDs
        if callable(graph):
            self._graph: Optional[AnyFollowGraph] = None
            self._graph_factory: Optional[Callable[[], Optional[AnyFollowGraph]]] = graph
        else:
            self._graph = graph
            self._graph_factory = None

    @property
    def graph(self) -> Optional[AnyFollowGraph]:
        if self._graph_factory is not None:
            self._graph = self._graph_factory()
            self._graph_factory = None
        return self._graph

    @property
    def app_name(self) -> str:
        return self.config.app_name


@dataclass
class ShardContext:
    """Precomputed, picklable inputs shared by every generation shard.

    Holds everything :func:`generate_day_records` needs — notably the
    follower count per broadcaster-pool slot instead of the full graph,
    so shipping a context to a worker process is a few small arrays, not
    millions of edges.
    """

    config: TraceConfig
    broadcaster_ids: np.ndarray
    viewer_ids: np.ndarray
    broadcaster_cdf: np.ndarray
    viewer_cdf: np.ndarray
    follower_counts: np.ndarray  # aligned with broadcaster_ids
    audience_cap: int


#: Sentinel distinguishing "build the graph here" from an explicit
#: ``graph=None`` (caller already knows there is none).
_BUILD_GRAPH = object()


def build_follow_graph(config: TraceConfig) -> Optional[CompiledGraph]:
    """The trace's follow graph (or ``None``), from the ``graph`` substream.

    Split out of :func:`build_trace_context` so callers can time — and
    reuse — the dominant precompute phase separately.
    """
    if not config.with_social_graph:
        return None
    streams = RandomStreams(config.seed)
    graph_config = FollowGraphConfig(
        n_nodes=config.total_users, mean_out_degree=config.graph_mean_out_degree
    )
    return generate_follow_graph_compiled(graph_config, streams.get("graph"))


def build_trace_context(
    config: TraceConfig,
    graph: object = _BUILD_GRAPH,
) -> tuple[ShardContext, Optional[AnyFollowGraph]]:
    """Deterministic per-run precompute: pools, activity CDFs, graph.

    Draws only from the ``trace/{app}/pools`` and ``graph`` substreams, so
    the context is identical no matter how generation is later scheduled.
    Pass ``graph`` (from :func:`build_follow_graph`) to reuse an already
    built graph; by default one is built here.
    """
    streams = RandomStreams(config.seed)
    rng = streams.get(f"trace/{config.app_name}/pools")

    total_users = config.total_users
    user_ids = np.arange(1, total_users + 1, dtype=np.int64)

    # Broadcaster and viewer pools are (possibly overlapping) subsets
    # of the user population.
    broadcaster_ids = rng.choice(user_ids, size=config.broadcaster_pool, replace=False)
    viewer_ids = rng.choice(user_ids, size=config.viewer_pool, replace=False)

    if graph is _BUILD_GRAPH:
        graph = build_follow_graph(config)
    if isinstance(graph, CompiledGraph):
        follower_counts = graph.in_degree_of(broadcaster_ids)
    elif graph is not None:
        follower_counts = np.fromiter(
            (graph.follower_count(int(b)) for b in broadcaster_ids),
            dtype=np.int64,
            count=len(broadcaster_ids),
        )
    else:
        follower_counts = np.zeros(len(broadcaster_ids), dtype=np.int64)

    # Per-user activity skew: precompute CDFs for inverse sampling.
    broadcaster_cdf = np.cumsum(zipf_weights(len(broadcaster_ids), config.broadcaster_zipf))
    viewer_cdf = np.cumsum(zipf_weights(len(viewer_ids), config.viewer_zipf))

    context = ShardContext(
        config=config,
        broadcaster_ids=broadcaster_ids,
        viewer_ids=viewer_ids,
        broadcaster_cdf=broadcaster_cdf,
        viewer_cdf=viewer_cdf,
        follower_counts=follower_counts,
        audience_cap=min(config.params.audience_cap, int(0.8 * len(viewer_ids))),
    )
    return context, graph


def day_substream_seed(config: TraceConfig, day: int) -> int:
    """Seed of measurement day ``day``'s private random substream."""
    return substream_seed(config.seed, f"trace/{config.app_name}/day/{day}")


def generate_day_columns(context: ShardContext, day: int) -> BroadcastColumns:
    """All broadcasts starting on measurement day ``day``, as columns.

    A pure function of ``(context.config, day)``: the day draws from its
    own substream, so the result does not depend on which shard or worker
    runs it.  Every random quantity is drawn as one batched call in a
    fixed order, so the draw schedule depends only on the day's broadcast
    count.  Broadcast IDs are day-local (1-based) placeholders;
    :func:`assemble_dataset_columns` re-keys them globally.
    """
    config = context.config
    params_model = config.params
    rng = np.random.default_rng(day_substream_seed(config, day))
    expected = config.growth.broadcasts_on(day) * config.scale
    offsets = daily_arrival_times(rng, expected)
    n = len(offsets)

    rank = np.searchsorted(context.broadcaster_cdf, rng.random(n))
    durations = params_model.sample_durations(rng, n)
    organic = np.minimum(params_model.sample_audiences(rng, n), context.audience_cap)

    # Follower notifications add audience on top of organic discovery
    # (Figure 7: followers vs viewers correlation).
    followers = context.follower_counts[rank]
    notified = rng.binomial(followers, config.effective_notification_open_rate)
    audience = np.minimum(organic + notified, context.audience_cap)

    excitement = rng.lognormal(mean=0.0, sigma=0.6, size=n)
    web_views = rng.binomial(audience, params_model.web_view_fraction)
    mobile_views = (audience - web_views).astype(np.int64)
    hearts, comments, commenters = params_model.sample_engagements(
        rng, audience, mobile_views, excitement
    )

    # Assign mobile views to registered viewers (Zipf-skewed activity).
    viewer_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(mobile_views, out=viewer_indptr[1:])
    viewer_ranks = np.searchsorted(
        context.viewer_cdf, rng.random(int(viewer_indptr[-1]))
    )

    return BroadcastColumns(
        app_name=config.app_name,
        broadcast_id=np.arange(1, n + 1, dtype=np.int64),
        broadcaster_id=context.broadcaster_ids[rank],
        start_time=day * SECONDS_PER_DAY + offsets,
        duration_s=durations,
        web_views=web_views.astype(np.int64),
        heart_count=hearts,
        comment_count=comments,
        commenter_count=commenters,
        # The crawl only ever sees public broadcasts (private ones are
        # absent from the global list), so the growth curves — which are
        # calibrated to the paper's *observed* volumes — already describe
        # public broadcasts only.
        is_private=np.zeros(n, dtype=bool),
        broadcaster_followers=followers,
        viewer_indptr=viewer_indptr,
        viewer_ids=context.viewer_ids[viewer_ranks],
    )


def generate_day_records(context: ShardContext, day: int) -> list[BroadcastRecord]:
    """Record-object view of :func:`generate_day_columns` (same draws)."""
    return generate_day_columns(context, day).to_records()


def assemble_dataset(
    config: TraceConfig, day_record_lists: Iterable[Sequence[BroadcastRecord]]
) -> BroadcastDataset:
    """Merge per-day record lists (in day order) into the final dataset.

    Applies a stable sort on ``(start_time, provisional broadcast_id)``
    and re-keys IDs globally ``1..N`` so the merged dataset is identical
    for every sharding/worker schedule.
    """
    merged: list[BroadcastRecord] = []
    for day_records in day_record_lists:
        merged.extend(day_records)
    # Day lists are concatenated in day order and are sorted within each
    # day, so this is a deterministic no-op re-ordering in practice; it is
    # kept as the explicit merge guarantee.
    merged.sort(key=lambda record: (record.start_time, record.broadcast_id))
    dataset = BroadcastDataset(app_name=config.app_name, days=config.growth.days)
    for global_id, record in enumerate(merged, start=1):
        record.broadcast_id = global_id
        dataset.add(record)
    return dataset


def assemble_dataset_columns(
    config: TraceConfig, day_columns: Iterable[BroadcastColumns]
) -> BroadcastDataset:
    """Columnar :func:`assemble_dataset`: concatenate, argsort, re-key.

    Sorting by ``(start_time, day-local broadcast_id)`` orders rows
    exactly like the record path — start times of different days can
    never tie (day offsets are strictly below one day), so the day-local
    IDs only break ties within a day, where the keys agree.
    """
    combined = BroadcastColumns.concat(list(day_columns), app_name=config.app_name)
    order = np.lexsort((combined.broadcast_id, combined.start_time))
    if not np.array_equal(order, np.arange(len(order))):
        combined = combined.take(order)
    n = len(combined)
    ids = combined.broadcast_id
    # Cheap endpoint probe first: day-local IDs restart at 1 every day, so
    # anything but an already-global 1..n keying fails it without the full
    # comparison, and the re-key allocation is skipped when it would be a
    # no-op (single-day runs, resorted-but-already-keyed input).
    already_keyed = n == 0 or (
        ids[0] == 1 and ids[-1] == n and np.array_equal(ids, np.arange(1, n + 1))
    )
    if not already_keyed:
        combined.broadcast_id = np.arange(1, n + 1, dtype=np.int64)
    return BroadcastDataset.from_columns(
        app_name=config.app_name, days=config.growth.days, columns=combined
    )


class TraceGenerator:
    """Generates a :class:`WorkloadTrace` for one application.

    ``generate()`` honours ``config.workers``/``config.shards`` by
    delegating to :func:`repro.parallel.generate_trace`; with the defaults
    it runs fully in-process.  Either way the output is byte-identical for
    a fixed ``(config, seed)``.
    """

    def __init__(self, config: TraceConfig) -> None:
        self.config = config
        self.streams = RandomStreams(config.seed)

    def generate(self) -> WorkloadTrace:
        # Imported here: repro.parallel builds on this module.
        from repro.parallel import generate_trace

        return generate_trace(self.config)
