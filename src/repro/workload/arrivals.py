"""Within-day broadcast arrival times.

Broadcast creation follows a non-homogeneous Poisson process whose
intensity tracks a diurnal curve: quiet overnight, rising through the
morning, peaking in the evening.  The curve is a global aggregate — the
services are worldwide, so the modulation is gentler than any single
timezone's.
"""

from __future__ import annotations

import numpy as np

SECONDS_PER_DAY = 86_400.0

#: Relative intensity per hour of day (UTC-ish aggregate), 24 entries.
DIURNAL_WEIGHTS: tuple[float, ...] = (
    0.55, 0.45, 0.40, 0.38, 0.40, 0.48,
    0.60, 0.75, 0.90, 1.00, 1.08, 1.15,
    1.20, 1.22, 1.25, 1.28, 1.32, 1.40,
    1.48, 1.52, 1.45, 1.25, 0.95, 0.70,
)


def daily_arrival_times(
    rng: np.random.Generator,
    expected_count: float,
    weights: tuple[float, ...] = DIURNAL_WEIGHTS,
) -> np.ndarray:
    """Sample sorted arrival offsets (seconds into the day).

    The count is Poisson around ``expected_count``; times are placed by
    inverse-CDF over the hourly intensity curve, uniform within each hour.
    """
    if expected_count < 0:
        raise ValueError(f"expected_count must be non-negative, got {expected_count}")
    if len(weights) != 24:
        raise ValueError("need 24 hourly weights")
    count = int(rng.poisson(expected_count))
    if count == 0:
        return np.empty(0)
    hourly = np.asarray(weights, dtype=float)
    hour_probs = hourly / hourly.sum()
    hours = rng.choice(24, size=count, p=hour_probs)
    offsets = rng.random(count)
    times = (hours + offsets) * 3600.0
    times.sort()
    return times
