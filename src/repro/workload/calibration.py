"""Calibration report: the generator's analytics vs the paper's constants.

The workload generator is calibrated so that its *expected* outputs match
the quantities the paper pins down.  This module computes those
expectations analytically (no sampling), pairs them with the paper's
values, and renders the comparison — the fast first check that a
parameter change hasn't silently drifted the model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.workload.broadcast_model import BroadcastParamsModel
from repro.workload.growth import GrowthModel, MEERKAT_GROWTH, PERISCOPE_GROWTH


@dataclass(frozen=True)
class CalibrationRow:
    """One calibrated quantity."""

    quantity: str
    paper: float
    model: float
    tolerance_rel: float

    @property
    def within_tolerance(self) -> bool:
        if self.paper == 0:
            return self.model == 0
        return abs(self.model - self.paper) / abs(self.paper) <= self.tolerance_rel


def _lognormal_mean(median: float, sigma: float) -> float:
    return median * math.exp(sigma**2 / 2.0)


def _expected_audience_mean(model: BroadcastParamsModel) -> float:
    """Expected views per broadcast (body only; the viral tail adds <10%)."""
    body = _lognormal_mean(model.audience_median, model.audience_sigma)
    return (1.0 - model.zero_viewer_prob) * body


def periscope_calibration(
    growth: GrowthModel = PERISCOPE_GROWTH,
    params: BroadcastParamsModel | None = None,
) -> list[CalibrationRow]:
    """The Periscope-side calibration table."""
    model = params or BroadcastParamsModel.for_periscope()
    total_broadcasts = growth.total_broadcasts()
    audience_mean = _expected_audience_mean(model)
    return [
        CalibrationRow("total broadcasts (3 mo)", 19.6e6, total_broadcasts, 0.10),
        CalibrationRow(
            "total views (3 mo)", 705e6, total_broadcasts * audience_mean, 0.30
        ),
        CalibrationRow(
            "broadcasts under 10 min",
            0.85,
            model.expected_duration_quantile(600.0),
            0.03,
        ),
        CalibrationRow(
            "web view share", 223e6 / 705e6, model.web_view_fraction, 0.05
        ),
        CalibrationRow(
            "growth factor",
            3.2,
            growth.broadcasts_on(growth.days - 3) / growth.broadcasts_on(4),
            0.35,
        ),
    ]


def meerkat_calibration(
    growth: GrowthModel = MEERKAT_GROWTH,
    params: BroadcastParamsModel | None = None,
) -> list[CalibrationRow]:
    """The Meerkat-side calibration table."""
    model = params or BroadcastParamsModel.for_meerkat()
    total_broadcasts = growth.total_broadcasts()
    audience_mean = _expected_audience_mean(model)
    return [
        CalibrationRow("total broadcasts (1 mo)", 164e3, total_broadcasts, 0.12),
        CalibrationRow(
            "total views (1 mo)", 3.8e6, total_broadcasts * audience_mean, 0.5
        ),
        CalibrationRow("zero-viewer share", 0.60, model.zero_viewer_prob, 0.01),
        CalibrationRow(
            "broadcasts under 10 min",
            0.85,
            model.expected_duration_quantile(600.0),
            0.05,
        ),
    ]


def render_calibration(rows: list[CalibrationRow], title: str = "") -> str:
    """Plain-text calibration table with pass/fail marks."""
    lines = [title] if title else []
    width = max(len(row.quantity) for row in rows)
    for row in rows:
        mark = "ok " if row.within_tolerance else "OFF"
        lines.append(
            f"[{mark}] {row.quantity:<{width}}  paper: {row.paper:>12.4g}  "
            f"model: {row.model:>12.4g}  (tol {row.tolerance_rel:.0%})"
        )
    return "\n".join(lines)
