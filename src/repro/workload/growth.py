"""Daily-volume growth models for Periscope and Meerkat.

Calibrated to Figures 1 and 2:

* Periscope grew from roughly 70K to well over 250K daily broadcasts in the
  98-day window (>300% growth), with a visible jump after the Android app
  launched on May 26 (day 11 of the measurement) and a weekly rhythm —
  weekend peaks, Monday troughs.  Daily viewers grew 200K to over 1M with a
  roughly 10:1 viewer:broadcaster ratio.
* Meerkat's daily broadcasts roughly halved in a month, ending below 4000,
  with ~20K fluctuating daily viewers and a declining broadcaster count.

Day 0 is May 15, 2015 for Periscope (a Friday) and May 12, 2015 for
Meerkat (a Tuesday).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def weekday_of_day(day_index: int, first_weekday: int) -> int:
    """Weekday (Mon=0..Sun=6) of measurement day ``day_index``."""
    return (first_weekday + day_index) % 7


#: Weekly activity multipliers, Mon..Sun — Monday trough, weekend peak.
DEFAULT_WEEKLY_PATTERN: tuple[float, ...] = (0.88, 0.92, 0.96, 1.00, 1.04, 1.12, 1.08)


@dataclass(frozen=True)
class GrowthModel:
    """Deterministic daily-volume curves with weekly modulation.

    The underlying trend is exponential between a start and end level,
    optionally with a step jump at ``launch_day`` (Periscope's Android
    launch).  Weekly modulation multiplies the trend.
    """

    name: str
    days: int
    broadcasts_start: float
    broadcasts_end: float
    viewers_start: float
    viewers_end: float
    viewer_broadcaster_ratio: float = 10.0
    first_weekday: int = 4  # Friday
    launch_day: int | None = None
    launch_multiplier: float = 1.0
    weekly_pattern: tuple[float, ...] = field(default=DEFAULT_WEEKLY_PATTERN)

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("days must be positive")
        if min(self.broadcasts_start, self.broadcasts_end) <= 0:
            raise ValueError("broadcast levels must be positive")
        if min(self.viewers_start, self.viewers_end) <= 0:
            raise ValueError("viewer levels must be positive")
        if len(self.weekly_pattern) != 7:
            raise ValueError("weekly_pattern needs 7 entries")

    def _trend(self, day: int, start: float, end: float) -> float:
        """Exponential interpolation, with the launch step folded in."""
        if self.days == 1:
            base = start
        else:
            rate = math.log(end / start) / (self.days - 1)
            base = start * math.exp(rate * day)
        if self.launch_day is not None and day >= self.launch_day:
            base *= self.launch_multiplier
        return base

    def _weekly(self, day: int) -> float:
        return self.weekly_pattern[weekday_of_day(day, self.first_weekday)]

    def broadcasts_on(self, day: int) -> float:
        """Expected broadcast count on measurement day ``day``."""
        self._check_day(day)
        return self._trend(day, self.broadcasts_start, self.broadcasts_end) * self._weekly(day)

    def viewers_on(self, day: int) -> float:
        """Expected daily active viewers."""
        self._check_day(day)
        return self._trend(day, self.viewers_start, self.viewers_end) * self._weekly(day)

    def broadcasters_on(self, day: int) -> float:
        """Expected daily active broadcasters (viewers / ratio)."""
        return self.viewers_on(day) / self.viewer_broadcaster_ratio

    def total_broadcasts(self) -> float:
        """Expected total broadcasts over the whole measurement."""
        return sum(self.broadcasts_on(day) for day in range(self.days))

    def _check_day(self, day: int) -> None:
        if not 0 <= day < self.days:
            raise ValueError(f"day {day} outside measurement window [0, {self.days})")


#: Periscope, May 15 – Aug 20, 2015 (98 days).  The end/start levels are
#: chosen so the total lands near 19.6M broadcasts with >300% growth and
#: the Android launch step on day 11.
PERISCOPE_GROWTH = GrowthModel(
    name="Periscope",
    days=98,
    broadcasts_start=82_000.0,
    broadcasts_end=262_000.0,
    viewers_start=200_000.0,
    viewers_end=1_050_000.0,
    viewer_broadcaster_ratio=10.0,
    first_weekday=4,  # May 15, 2015 was a Friday
    launch_day=11,  # Android launch May 26
    launch_multiplier=1.28,
)

#: Meerkat, May 12 – June 15, 2015 (35 days), halving over the month.
MEERKAT_GROWTH = GrowthModel(
    name="Meerkat",
    days=35,
    broadcasts_start=6_800.0,
    broadcasts_end=3_500.0,
    viewers_start=21_000.0,
    viewers_end=18_000.0,
    viewer_broadcaster_ratio=3.0,  # Meerkat viewers ~20K, broadcasters 9K->3K
    first_weekday=1,  # May 12, 2015 was a Tuesday
)
