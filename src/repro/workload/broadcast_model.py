"""Per-broadcast parameter sampling.

Calibrated to §3.2:

* Durations are lognormal with 85% of broadcasts under 10 minutes
  (Figure 3); Meerkat's distribution is more skewed (heavier tail from a
  smaller number of long broadcasts).
* Audience sizes are a lognormal body with a rare "viral" Pareto tail up
  to ~100K viewers (Figure 4); for Meerkat, ~60% of broadcasts get zero
  viewers.
* Engagement: hearts are cheap (a viewer can tap continuously — the top
  broadcast collected 1.35M hearts), comments are throttled by the
  100-commenter cap; ~10% of Periscope broadcasts exceed 100 comments and
  1000 hearts (Figure 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.simulation.distributions import bounded_pareto, lognormal_from_median


@dataclass(frozen=True)
class BroadcastParams:
    """Sampled characteristics of one broadcast."""

    duration_s: float
    audience_size: int  # total views (mobile + web)
    web_views: int
    heart_count: int
    comment_count: int
    commenter_count: int
    is_private: bool
    excitement: float


@dataclass
class BroadcastParamsModel:
    """Samples :class:`BroadcastParams` for one application profile."""

    # Duration: 85% under 600 s.  Periscope sigma 1.0 -> median ~213 s;
    # Meerkat sigma 1.5 (more skewed) -> median ~127 s.
    duration_median_s: float = 213.0
    duration_sigma: float = 1.0
    max_duration_s: float = 24 * 3600.0
    min_duration_s: float = 5.0

    # Audience: lognormal body + rare viral Pareto tail.
    zero_viewer_prob: float = 0.01  # Meerkat: 0.60
    audience_median: float = 8.0
    audience_sigma: float = 1.6
    viral_prob: float = 0.0015
    viral_alpha: float = 0.7
    viral_min: float = 1_000.0
    audience_cap: int = 100_000

    # Web (anonymous) views: 223M of 705M total views in the paper.
    web_view_fraction: float = 0.316

    # Engagement.
    hearts_per_view_median: float = 8.0
    hearts_per_view_sigma: float = 1.2
    comment_prob_per_viewer: float = 0.45
    comments_per_commenter_mean: float = 2.5
    comment_cap: int = 100

    private_prob: float = 0.02

    def sample_duration(self, rng: np.random.Generator) -> float:
        raw = float(lognormal_from_median(rng, self.duration_median_s, self.duration_sigma))
        return float(np.clip(raw, self.min_duration_s, self.max_duration_s))

    def sample_audience(self, rng: np.random.Generator) -> int:
        if rng.random() < self.zero_viewer_prob:
            return 0
        # The viral tail only exists when the cap leaves room above its
        # floor (tiny-scale runs clamp the cap below viral_min).
        viral_possible = self.audience_cap > self.viral_min
        if viral_possible and rng.random() < self.viral_prob:
            size = float(
                bounded_pareto(
                    rng, self.viral_alpha, self.viral_min, float(self.audience_cap)
                )
            )
        else:
            size = float(lognormal_from_median(rng, self.audience_median, self.audience_sigma))
        return int(np.clip(round(size), 1, self.audience_cap))

    def sample_engagement(
        self,
        audience: int,
        mobile_views: int,
        excitement: float,
        rng: np.random.Generator,
    ) -> tuple[int, int, int]:
        """(hearts, comments, distinct commenters) for a given audience.

        Hearts scale with total views; comments only come from mobile
        viewers and are throttled by the distinct-commenter cap.
        """
        if audience:
            hearts_per_view = float(
                lognormal_from_median(
                    rng, self.hearts_per_view_median * excitement, self.hearts_per_view_sigma
                )
            )
            heart_count = int(rng.poisson(audience * hearts_per_view))
        else:
            heart_count = 0

        # Comments: capped at comment_cap distinct commenters, each
        # posting 1 + Poisson(mean) messages.
        eligible = min(mobile_views, self.comment_cap)
        if eligible:
            commenters = int(
                rng.binomial(eligible, min(1.0, self.comment_prob_per_viewer * excitement))
            )
        else:
            commenters = 0
        if commenters:
            comment_count = commenters + int(
                rng.poisson(commenters * self.comments_per_commenter_mean * excitement)
            )
        else:
            comment_count = 0
        return heart_count, comment_count, commenters

    # -- batched sampling (columnar fast path) -------------------------
    #
    # Each method makes a fixed sequence of vectorized rng calls, so the
    # draw schedule is a pure function of the batch size — the property
    # the per-day substreams rely on for schedule-independent output.

    def sample_durations(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` durations in one vectorized draw."""
        raw = lognormal_from_median(
            rng, self.duration_median_s, self.duration_sigma, size=size
        )
        return np.clip(raw, self.min_duration_s, self.max_duration_s)

    def sample_audiences(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` audience sizes; draws body and viral tail as batches.

        Unlike the scalar path, the zero/viral/body draws happen for every
        broadcast and the masks select afterwards — same distribution,
        fixed draw count.
        """
        zero_roll = rng.random(size)
        viral_possible = self.audience_cap > self.viral_min
        if viral_possible:
            viral_roll = rng.random(size)
            viral_sizes = bounded_pareto(
                rng, self.viral_alpha, self.viral_min, float(self.audience_cap), size=size
            )
        sizes = np.asarray(
            lognormal_from_median(rng, self.audience_median, self.audience_sigma, size=size)
        )
        if viral_possible:
            sizes = np.where(viral_roll < self.viral_prob, viral_sizes, sizes)
        audience = np.clip(np.rint(sizes), 1, self.audience_cap).astype(np.int64)
        audience[zero_roll < self.zero_viewer_prob] = 0
        return audience

    def sample_engagements(
        self,
        rng: np.random.Generator,
        audience: np.ndarray,
        mobile_views: np.ndarray,
        excitement: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched ``(hearts, comments, commenters)`` arrays."""
        hearts_per_view = np.asarray(
            lognormal_from_median(
                rng,
                self.hearts_per_view_median * excitement,
                self.hearts_per_view_sigma,
                size=len(audience),
            )
        )
        heart_count = rng.poisson(audience * hearts_per_view)
        eligible = np.minimum(mobile_views, self.comment_cap)
        commenters = rng.binomial(
            eligible, np.minimum(1.0, self.comment_prob_per_viewer * excitement)
        )
        # rng.poisson(0) is 0, so zero-commenter rows get zero comments.
        comment_count = commenters + rng.poisson(
            commenters * self.comments_per_commenter_mean * excitement
        )
        return (
            heart_count.astype(np.int64),
            comment_count.astype(np.int64),
            commenters.astype(np.int64),
        )

    def sample(self, rng: np.random.Generator) -> BroadcastParams:
        """Sample one broadcast's full parameter set."""
        duration = self.sample_duration(rng)
        audience = self.sample_audience(rng)
        excitement = float(rng.lognormal(mean=0.0, sigma=0.6))

        web_views = int(rng.binomial(audience, self.web_view_fraction)) if audience else 0
        mobile_views = audience - web_views
        heart_count, comment_count, commenters = self.sample_engagement(
            audience, mobile_views, excitement, rng
        )

        return BroadcastParams(
            duration_s=duration,
            audience_size=audience,
            web_views=web_views,
            heart_count=heart_count,
            comment_count=comment_count,
            commenter_count=commenters,
            is_private=bool(rng.random() < self.private_prob),
            excitement=excitement,
        )

    @classmethod
    def for_periscope(cls, audience_cap: int = 100_000) -> "BroadcastParamsModel":
        return cls(audience_cap=audience_cap)

    @classmethod
    def for_meerkat(cls, audience_cap: int = 10_000) -> "BroadcastParamsModel":
        """Meerkat: 60% zero-viewer broadcasts, more skewed durations."""
        return cls(
            duration_median_s=127.0,
            duration_sigma=1.5,
            zero_viewer_prob=0.60,
            audience_median=12.0,
            audience_sigma=1.8,
            viral_prob=0.0008,
            viral_min=500.0,
            audience_cap=audience_cap,
            web_view_fraction=0.18,
            hearts_per_view_median=2.0,
            comment_prob_per_viewer=0.20,
            comment_cap=1_000_000,
        )

    def expected_duration_quantile(self, duration_s: float) -> float:
        """Analytic CDF of the (untruncated) duration lognormal."""
        if duration_s <= 0:
            return 0.0
        z = math.log(duration_s / self.duration_median_s) / self.duration_sigma
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
