"""Sharded, multi-process workload-trace generation.

The paper's Periscope dataset is 19.6M broadcasts / 705M views; a
single-process generation loop is only practical around ``scale=0.001``,
which hides scaling bugs and keeps every figure pipeline toy-sized.  This
module fans generation out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* the day range is partitioned into deterministic shards
  (:func:`repro.parallel.sharding.plan_shards`),
* every day draws from its own seed-derived substream, so results are
  schedule-independent — ``workers=1`` and ``workers=N`` produce
  byte-identical datasets for the same config,
* the frozen :class:`~repro.workload.trace.ShardContext` ships to workers
  through a page-aligned mmap'd file (:mod:`repro.crawler.arrayfile`) that
  each worker attaches read-only — no per-process unpickling of the pool
  and CDF buffers — and workers return their day columns the same way,
  through per-shard array files the parent maps back (the legacy
  ``transport="pickle"`` path is kept for comparison and testing),
* workloads too small to amortize pool startup fall back to the
  in-process walk (``MIN_BROADCASTS_PER_WORKER``) — the fallback only
  changes scheduling, never bytes,
* shard outputs are merged with a stable argsort on
  ``(start_time, broadcast_id)`` and globally re-keyed IDs
  (:func:`repro.workload.trace.assemble_dataset_columns`),
* an optional on-disk cache (:class:`repro.crawler.storage.DatasetCache`,
  keyed by :meth:`TraceConfig.cache_key`) lets figure experiments reuse
  generated traces across processes.  The cache is probed *before* any
  precompute, so a hit costs a read, not a graph build; the follow graph
  itself is cached next to the datasets as a mappable array file.

Per-phase wall times (graph build, context, generation, merge), shard
timings, and cache traffic are published through the :mod:`repro.obs`
registry passed in (no-op by default).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from itertools import repeat
from pathlib import Path
from typing import Optional, Union

from repro.obs import NULL_REGISTRY
from repro.crawler.arrayfile import read_arrays, write_arrays
from repro.parallel.sharding import ShardSpec, plan_shards
from repro.social.graph import CompiledGraph
from repro.workload.trace import (
    BroadcastColumns,
    BroadcastDataset,
    ShardContext,
    TraceConfig,
    WorkloadTrace,
    assemble_dataset_columns,
    build_follow_graph,
    build_trace_context,
    generate_day_columns,
)

#: Worker transports: ``"mmap"`` ships context and results through
#: page-aligned array files workers attach with ``np.memmap``;
#: ``"pickle"`` is the legacy initargs/return-value path.
TRANSPORTS = ("mmap", "pickle")

#: Below this expected per-worker broadcast volume a process pool costs
#: more than it saves, so generation stays in-process.  Overridable via
#: ``REPRO_TRACE_MIN_PER_WORKER`` (tests set ``0`` to force the pool).
MIN_BROADCASTS_PER_WORKER = 20_000

#: ShardContext array fields shipped through the mmap transport (the
#: remaining fields — config and audience_cap — travel as initargs).
_CONTEXT_ARRAY_FIELDS = (
    "broadcaster_ids",
    "viewer_ids",
    "broadcaster_cdf",
    "viewer_cdf",
    "follower_counts",
)

#: BroadcastColumns array fields, in serialization order.
_COLUMN_FIELDS = (
    "broadcast_id",
    "broadcaster_id",
    "start_time",
    "duration_s",
    "web_views",
    "heart_count",
    "comment_count",
    "commenter_count",
    "is_private",
    "broadcaster_followers",
    "viewer_indptr",
    "viewer_ids",
)

#: Per-worker-process shard context (set by the pool initializer, or
#: inherited from the parent on fork start methods).
_WORKER_CONTEXT: Optional[ShardContext] = None


def _init_worker(context: ShardContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _init_worker_mapped(config: TraceConfig, audience_cap: int, context_path: str) -> None:
    """Attach read-only mapped views of the parent's context arrays."""
    arrays, _meta = read_arrays(context_path)
    _init_worker(
        ShardContext(
            config=config,
            audience_cap=audience_cap,
            **{name: arrays[name] for name in _CONTEXT_ARRAY_FIELDS},
        )
    )


def _run_shard(
    spec: ShardSpec, context: Optional[ShardContext] = None
) -> tuple[int, list[BroadcastColumns], float]:
    """Generate one shard's day range; returns (shard_id, day columns, seconds)."""
    ctx = context if context is not None else _WORKER_CONTEXT
    if ctx is None:
        raise RuntimeError("worker process has no shard context (initializer not run)")
    started = time.perf_counter()
    day_columns = [generate_day_columns(ctx, day) for day in spec.days()]
    return spec.shard_id, day_columns, time.perf_counter() - started


def _run_shard_mapped(spec: ShardSpec, out_dir: str) -> tuple[int, str, int, float]:
    """Generate one shard and write its day columns to an array file.

    Returns ``(shard_id, path, n_days, seconds)`` — only metadata crosses
    the process boundary; the parent maps the columns back.
    """
    shard_id, day_columns, seconds = _run_shard(spec)
    arrays = {}
    for position, columns in enumerate(day_columns):
        for field in _COLUMN_FIELDS:
            arrays[f"{position:03d}/{field}"] = getattr(columns, field)
    path = Path(out_dir) / f"shard-{spec.shard_id:05d}.arrays"
    write_arrays(path, arrays, meta={"n_days": len(day_columns)})
    return shard_id, str(path), len(day_columns), seconds


def _read_shard_columns(path: str, app_name: str) -> list[BroadcastColumns]:
    """Map a worker's shard file back as per-day column batches."""
    arrays, meta = read_arrays(path)
    return [
        BroadcastColumns(
            app_name=app_name,
            **{field: arrays[f"{position:03d}/{field}"] for field in _COLUMN_FIELDS},
        )
        for position in range(int(meta["n_days"]))
    ]


def effective_workers(config: TraceConfig, n_shards: int) -> int:
    """Worker processes generation will actually use.

    ``config.workers`` capped by the shard count, then collapsed to 1
    when the expected broadcast volume per worker is below
    ``MIN_BROADCASTS_PER_WORKER`` — pool startup would dominate.  Purely
    a scheduling decision; the generated bytes never depend on it.
    """
    workers = min(config.workers, n_shards)
    if workers <= 1:
        return 1
    floor = int(os.environ.get("REPRO_TRACE_MIN_PER_WORKER", MIN_BROADCASTS_PER_WORKER))
    expected = config.growth.total_broadcasts() * config.scale
    if expected < floor * workers:
        return 1
    return workers


def generate_dataset(
    config: TraceConfig,
    context: ShardContext,
    registry=NULL_REGISTRY,
    transport: Optional[str] = None,
) -> BroadcastDataset:
    """Generate the broadcast dataset from a prebuilt context.

    Honours ``config.shards`` / ``config.workers``; the output is
    independent of both (test-enforced).  ``transport`` picks how context
    and results cross the process boundary (``"mmap"`` default,
    ``"pickle"`` legacy; env override ``REPRO_TRACE_TRANSPORT``) and is
    equally output-invariant.
    """
    transport = transport or os.environ.get("REPRO_TRACE_TRANSPORT", "mmap")
    if transport not in TRANSPORTS:
        raise ValueError(f"unknown transport {transport!r}; expected one of {TRANSPORTS}")

    specs = plan_shards(config.growth.days, shards=config.shards, workers=config.workers)
    workers = effective_workers(config, len(specs))

    registry.gauge("trace.workers", "worker processes used for generation").set(workers)
    registry.gauge("trace.shards", "day-range shards generated").set(len(specs))
    shard_seconds = registry.histogram(
        "trace.shard_seconds", "wall seconds per generation shard"
    )

    generate_started = time.perf_counter()
    results: dict[int, list[BroadcastColumns]] = {}
    if workers <= 1:
        # In-process fallback: same shard walk, no executor.
        for spec in specs:
            shard_id, day_columns, seconds = _run_shard(spec, context)
            results[shard_id] = day_columns
            shard_seconds.observe(seconds)
    elif transport == "pickle":
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker, initargs=(context,)
        ) as pool:
            for shard_id, day_columns, seconds in pool.map(_run_shard, specs):
                results[shard_id] = day_columns
                shard_seconds.observe(seconds)
    else:
        # Zero-copy transport: context goes out as one mapped file, day
        # columns come back as per-shard files.  The temp dir is removed
        # as soon as the columns are mapped — on POSIX the mappings (and
        # thus the merged dataset) survive the unlink.
        with tempfile.TemporaryDirectory(prefix="repro-trace-") as tmp:
            context_path = Path(tmp) / "context.arrays"
            write_arrays(
                context_path,
                {name: getattr(context, name) for name in _CONTEXT_ARRAY_FIELDS},
            )
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker_mapped,
                initargs=(config, context.audience_cap, str(context_path)),
            ) as pool:
                for shard_id, path, _n_days, seconds in pool.map(
                    _run_shard_mapped, specs, repeat(tmp)
                ):
                    results[shard_id] = _read_shard_columns(path, config.app_name)
                    shard_seconds.observe(seconds)
    registry.gauge(
        "trace.generate_seconds", "wall seconds in per-day generation (all shards)"
    ).set(time.perf_counter() - generate_started)

    merge_started = time.perf_counter()
    ordered_days = [
        day_columns for shard_id in sorted(results) for day_columns in results[shard_id]
    ]
    dataset = assemble_dataset_columns(config, ordered_days)
    registry.gauge(
        "trace.merge_seconds", "wall seconds merging and re-keying shard output"
    ).set(time.perf_counter() - merge_started)
    registry.counter("trace.broadcasts", "broadcast records generated").inc(len(dataset))
    return dataset


def _graph_cache_key(config: TraceConfig) -> str:
    """Hash of everything that determines the follow graph's bytes."""
    basis = f"graph|{config.seed}|{config.total_users}|{config.graph_mean_out_degree}"
    return hashlib.sha256(basis.encode("ascii")).hexdigest()[:16]


def load_or_build_graph(
    config: TraceConfig,
    cache_dir: Optional[Union[str, Path]] = None,
    registry=NULL_REGISTRY,
) -> Optional[CompiledGraph]:
    """The config's follow graph, via the mappable graph cache.

    With a ``cache_dir``, a previously built graph is attached as
    read-only ``np.memmap`` views — milliseconds instead of the full
    generation — and a fresh build is stored back (atomically) for the
    next run.  Corrupt cache files are discarded and rebuilt.
    """
    if not config.with_social_graph:
        return None
    path = None
    if cache_dir is not None:
        path = Path(cache_dir) / f"graph-{_graph_cache_key(config)}.arrays"
        if path.exists():
            try:
                arrays, _meta = read_arrays(path)
                graph = CompiledGraph(
                    arrays["node_ids"],
                    arrays["indptr"],
                    arrays["indices"],
                    arrays["rindptr"],
                    arrays["rindices"],
                )
                registry.counter("trace.graph_cache_hits", "follow-graph cache hits").inc()
                return graph
            except (ValueError, OSError, KeyError):
                path.unlink(missing_ok=True)

    graph = build_follow_graph(config)
    if path is not None and graph is not None:
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(path.name + f".tmp{os.getpid()}")
        try:
            write_arrays(
                temp,
                {
                    "node_ids": graph.node_ids,
                    "indptr": graph.indptr,
                    "indices": graph.indices,
                    "rindptr": graph.rindptr,
                    "rindices": graph.rindices,
                },
            )
            os.replace(temp, path)
        finally:
            temp.unlink(missing_ok=True)
    return graph


def generate_trace(
    config: TraceConfig,
    cache_dir: Optional[Union[str, Path]] = None,
    registry=NULL_REGISTRY,
    cache_format: str = "v2",
) -> WorkloadTrace:
    """Generate (or load from cache) a full :class:`WorkloadTrace`.

    The dataset cache is probed *first*: a hit costs the read plus the
    cheap population pools (their substream is independent of the
    graph's), and the follow graph becomes a lazy attribute — built, or
    attached from the graph cache, only if an analysis actually touches
    ``trace.graph``.  Only on a miss does the full precompute run.
    ``cache_format`` picks the cache serialization (``"v2"`` binary
    columnar, ``"v1"`` gzipped JSONL, ``"mmap"`` uncompressed mappable
    columns); all store the identical dataset.
    """
    cache = None
    dataset: Optional[BroadcastDataset] = None
    if cache_dir is not None:
        # Imported here: storage has no dependency on this module.
        from repro.crawler.storage import DatasetCache

        cache = DatasetCache(cache_dir, fmt=cache_format)
        dataset = cache.get(config.cache_key())

    if dataset is not None:
        registry.counter("trace.cache_hits", "dataset cache hits").inc()
        # Pools draw from their own substream, so skipping the graph
        # changes nothing about them; follower counts are only consumed
        # by generation, which a hit bypasses.
        context, _ = build_trace_context(config, graph=None)
        return WorkloadTrace(
            config=config,
            dataset=dataset,
            graph=lambda: load_or_build_graph(config, cache_dir, registry),
            broadcaster_ids=context.broadcaster_ids,
            viewer_ids=context.viewer_ids,
        )

    if cache is not None:
        registry.counter("trace.cache_misses", "dataset cache misses").inc()

    graph_started = time.perf_counter()
    graph = load_or_build_graph(config, cache_dir, registry)
    graph_seconds = time.perf_counter() - graph_started
    registry.gauge(
        "trace.graph_seconds", "wall seconds building the follow graph"
    ).set(graph_seconds)

    context_started = time.perf_counter()
    context, graph = build_trace_context(config, graph=graph)
    registry.gauge(
        "trace.context_seconds", "wall seconds in precompute (graph + pools)"
    ).set(graph_seconds + (time.perf_counter() - context_started))

    dataset = generate_dataset(config, context, registry=registry)
    if cache is not None:
        cache.put(config.cache_key(), dataset)

    return WorkloadTrace(
        config=config,
        dataset=dataset,
        graph=graph,
        broadcaster_ids=context.broadcaster_ids,
        viewer_ids=context.viewer_ids,
    )
