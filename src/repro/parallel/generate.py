"""Sharded, multi-process workload-trace generation.

The paper's Periscope dataset is 19.6M broadcasts / 705M views; a
single-process generation loop is only practical around ``scale=0.001``,
which hides scaling bugs and keeps every figure pipeline toy-sized.  This
module fans generation out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* the day range is partitioned into deterministic shards
  (:func:`repro.parallel.sharding.plan_shards`),
* every day draws from its own seed-derived substream, so results are
  schedule-independent — ``workers=1`` and ``workers=N`` produce
  byte-identical datasets for the same config,
* the frozen :class:`~repro.workload.trace.ShardContext` ships to workers
  through a page-aligned mmap'd file (:mod:`repro.crawler.arrayfile`) that
  each worker attaches read-only — no per-process unpickling of the pool
  and CDF buffers — and workers return their day columns the same way,
  through per-shard array files the parent maps back (the legacy
  ``transport="pickle"`` path is kept for comparison and testing),
* the pool loop *survives its workers*: shards are submitted individually
  and retried with capped backoff on failure, a per-shard deadline
  (``REPRO_TRACE_SHARD_DEADLINE``) convicts hung workers, a
  ``BrokenProcessPool`` rebuilds the pool and resubmits only unfinished
  shards, and after ``REPRO_TRACE_POOL_REBUILDS`` rebuilds generation
  degrades to the in-process walk rather than give up — all of which is
  output-invariant because re-run shards are byte-identical by
  construction,
* with a ``run_dir``, every finished shard is checkpointed through
  :class:`repro.parallel.checkpoint.RunCheckpoint` (atomic shard files +
  manifest), so an interrupted run resumes without repeating done shards,
* workloads too small to amortize pool startup fall back to the
  in-process walk (``MIN_BROADCASTS_PER_WORKER``) — the fallback only
  changes scheduling, never bytes,
* shard outputs are merged either in memory — a stable argsort on
  ``(start_time, broadcast_id)`` plus globally re-keyed IDs
  (:func:`repro.workload.trace.assemble_dataset_columns`) — or, by
  default whenever shard files already exist on disk (``run_dir`` or a
  dataset cache), *out of core*: the streaming merge
  (:mod:`repro.parallel.merge`) copies shard files straight into the
  final ``mmap`` cache format in bounded windows, so peak RSS never
  holds the whole dataset.  Both merges produce byte-identical files
  (test-enforced); ``REPRO_TRACE_MERGE`` overrides the choice,
* an optional on-disk cache (:class:`repro.crawler.storage.DatasetCache`,
  keyed by :meth:`TraceConfig.cache_key`) lets figure experiments reuse
  generated traces across processes.  The cache is probed *before* any
  precompute, so a hit costs a read, not a graph build; the follow graph
  itself is cached next to the datasets as a mappable array file.

Recovery paths are provable: the :mod:`repro.parallel.faults` harness
(``REPRO_TRACE_FAULTS``) injects worker kills, hangs, task failures, and
shard-file corruption on demand, and the crash-path tests assert the
faulted output stays byte-identical to a clean run.

Per-phase wall times (graph build, context, generation, merge), shard
timings, retry/rebuild/resume counts, and cache traffic are published
through the :mod:`repro.obs` registry passed in (no-op by default).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import time
from collections import deque
from contextlib import ExitStack
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from repro.obs import NULL_REGISTRY, peak_rss_mb
from repro.crawler.arrayfile import atomic_output, read_arrays, write_arrays
from repro.parallel.checkpoint import RunCheckpoint, shard_filename
from repro.parallel.merge import stream_merge_shards
from repro.parallel.faults import (
    PERSIST_FAULT_KINDS,
    PipelineFault,
    fault_plan_from_env,
    inject_persist_fault,
    inject_worker_fault,
)
from repro.parallel.sharding import ShardSpec, plan_shards
from repro.social.graph import CompiledGraph
from repro.workload.trace import (
    BroadcastColumns,
    BroadcastDataset,
    ShardContext,
    TraceConfig,
    WorkloadTrace,
    assemble_dataset_columns,
    build_follow_graph,
    build_trace_context,
    generate_day_columns,
)

#: Worker transports: ``"mmap"`` ships context and results through
#: page-aligned array files workers attach with ``np.memmap``;
#: ``"pickle"`` is the legacy initargs/return-value path.
TRANSPORTS = ("mmap", "pickle")
TRANSPORT_ENV = "REPRO_TRACE_TRANSPORT"

#: Merge strategies: ``"stream"`` runs the out-of-core streaming merge
#: (:mod:`repro.parallel.merge`) over shard files on disk; ``"memory"``
#: concatenates every shard's columns in RAM
#: (:func:`~repro.workload.trace.assemble_dataset_columns`).  Identical
#: bytes either way; the default depends on whether shard files exist
#: anyway (run dir or dataset cache present → ``"stream"``).
MERGES = ("memory", "stream")
MERGE_ENV = "REPRO_TRACE_MERGE"

#: Below this expected per-worker broadcast volume a process pool costs
#: more than it saves, so generation stays in-process.  Overridable via
#: ``REPRO_TRACE_MIN_PER_WORKER`` (tests set ``0`` to force the pool).
MIN_BROADCASTS_PER_WORKER = 20_000
MIN_PER_WORKER_ENV = "REPRO_TRACE_MIN_PER_WORKER"

#: Per-shard retry budget: a shard may fail this many times (worker
#: exception, killed worker, blown deadline) before the run errors out.
#: Kept above the pool-rebuild cap so shards that merely *shared a pool*
#: with a crashing one never exhaust their budget before degradation.
DEFAULT_SHARD_RETRIES = 4
SHARD_RETRIES_ENV = "REPRO_TRACE_SHARD_RETRIES"

#: Per-shard wall-clock deadline in seconds, measured from when the
#: shard's future is first observed running; ``0`` (the default)
#: disables it.  A blown deadline is treated as a pool failure — the
#: hung worker cannot be cancelled, only its pool killed.
DEFAULT_SHARD_DEADLINE = 0.0
SHARD_DEADLINE_ENV = "REPRO_TRACE_SHARD_DEADLINE"

#: How many times the pool is rebuilt after breaking before generation
#: degrades to the in-process walk for the remaining shards.
DEFAULT_POOL_REBUILDS = 3
POOL_REBUILDS_ENV = "REPRO_TRACE_POOL_REBUILDS"

#: Retry backoff: ``min(base * 2**(attempt-1), cap)`` seconds before a
#: shard's re-submission — enough to let a transient (fd pressure, a
#: dying sibling) clear, bounded so chaos tests stay fast.
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 1.0

#: Poll interval for the deadline clock; only paid when a deadline is set.
_POLL_SECONDS = 0.05

#: ShardContext array fields shipped through the mmap transport (the
#: remaining fields — config and audience_cap — travel as initargs).
_CONTEXT_ARRAY_FIELDS = (
    "broadcaster_ids",
    "viewer_ids",
    "broadcaster_cdf",
    "viewer_cdf",
    "follower_counts",
)

#: BroadcastColumns array fields, in serialization order.
_COLUMN_FIELDS = (
    "broadcast_id",
    "broadcaster_id",
    "start_time",
    "duration_s",
    "web_views",
    "heart_count",
    "comment_count",
    "commenter_count",
    "is_private",
    "broadcaster_followers",
    "viewer_indptr",
    "viewer_ids",
)

#: Per-worker-process shard context (set by the pool initializer, or
#: inherited from the parent on fork start methods).
_WORKER_CONTEXT: Optional[ShardContext] = None


# -- env knobs ----------------------------------------------------------


def _env_int(name: str, default: int) -> int:
    """An integer env knob; raises ``ValueError`` naming the variable."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"invalid {name}={raw!r}: expected an integer (default {default})"
        ) from None


def _env_float(name: str, default: float) -> float:
    """A float env knob; raises ``ValueError`` naming the variable."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"invalid {name}={raw!r}: expected a number (default {default})"
        ) from None


def resolve_transport(transport: Optional[str] = None) -> str:
    """Validate a transport choice, naming its source in the error.

    ``None`` consults ``REPRO_TRACE_TRANSPORT`` (default ``"mmap"``); an
    unknown value — passed or from the environment — raises a
    ``ValueError`` listing the accepted transports.
    """
    source = "transport argument"
    if transport is None:
        transport = os.environ.get(TRANSPORT_ENV, "mmap")
        source = f"{TRANSPORT_ENV} environment variable"
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r} (from {source}); "
            f"expected one of {TRANSPORTS}"
        )
    return transport


def resolve_merge(merge: Optional[str] = None, default: str = "memory") -> str:
    """Validate a merge-strategy choice, naming its source in the error.

    ``None`` consults ``REPRO_TRACE_MERGE``, falling back to ``default``
    (callers pass the context-appropriate one: ``"stream"`` when shard
    files will exist on disk anyway, ``"memory"`` otherwise).  An
    unknown value — passed or from the environment — raises a
    ``ValueError`` listing the accepted strategies.
    """
    source = "merge argument"
    if merge is None:
        merge = os.environ.get(MERGE_ENV) or default
        source = f"{MERGE_ENV} environment variable"
    if merge not in MERGES:
        raise ValueError(
            f"unknown merge strategy {merge!r} (from {source}); "
            f"expected one of {MERGES}"
        )
    return merge


def validate_environment() -> None:
    """Fail fast on malformed generation env knobs.

    Called at the top of :func:`generate_trace` so a typo'd
    ``REPRO_TRACE_*`` variable errors out before the graph build, not
    minutes into it.  Each check raises ``ValueError`` naming the
    variable and the accepted values.
    """
    resolve_transport()
    resolve_merge()
    fault_plan_from_env()
    _env_int(MIN_PER_WORKER_ENV, MIN_BROADCASTS_PER_WORKER)
    _env_int(SHARD_RETRIES_ENV, DEFAULT_SHARD_RETRIES)
    _env_float(SHARD_DEADLINE_ENV, DEFAULT_SHARD_DEADLINE)
    _env_int(POOL_REBUILDS_ENV, DEFAULT_POOL_REBUILDS)


# -- worker-side shard execution ---------------------------------------


def _init_worker(context: ShardContext) -> None:
    global _WORKER_CONTEXT
    # Written exactly once per worker process, by the pool initializer,
    # before any shard runs — worker-local configuration, not shared state.
    _WORKER_CONTEXT = context  # repro: allow[worker-global-mutation] set once by the pool initializer before any shard task runs


def _init_worker_mapped(config: TraceConfig, audience_cap: int, context_path: str) -> None:
    """Attach read-only mapped views of the parent's context arrays."""
    arrays, _meta = read_arrays(context_path)
    _init_worker(
        ShardContext(
            config=config,
            audience_cap=audience_cap,
            **{name: arrays[name] for name in _CONTEXT_ARRAY_FIELDS},
        )
    )


def _run_shard(
    spec: ShardSpec, context: Optional[ShardContext] = None, attempt: int = 0
) -> tuple[int, list[BroadcastColumns], float]:
    """Generate one shard's day range; returns (shard_id, day columns, seconds).

    Worker-side pipeline faults fire only on the pooled path (``context``
    is ``None``) — an injected ``os._exit`` must kill a *worker*, never
    the parent running the in-process fallback.
    """
    ctx = context if context is not None else _WORKER_CONTEXT
    if ctx is None:
        raise RuntimeError("worker process has no shard context (initializer not run)")
    if context is None:
        inject_worker_fault(fault_plan_from_env(), spec.shard_id, attempt)
    started = time.perf_counter()
    day_columns = [generate_day_columns(ctx, day) for day in spec.days()]
    return spec.shard_id, day_columns, time.perf_counter() - started


def _columns_to_arrays(day_columns: list[BroadcastColumns]) -> dict[str, np.ndarray]:
    """Flatten per-day column batches into array-file entries."""
    arrays = {}
    for position, columns in enumerate(day_columns):
        for field in _COLUMN_FIELDS:
            arrays[f"{position:03d}/{field}"] = getattr(columns, field)
    return arrays


def _run_shard_mapped(
    spec: ShardSpec, out_dir: str, attempt: int = 0
) -> tuple[int, str, int, float]:
    """Generate one shard and write its day columns to an array file.

    The file is written under a ``.tmp<pid>`` name — the parent promotes
    it with ``os.replace`` (directly, or through the run checkpoint), so
    a worker killed mid-write can never leave a plausible-looking shard
    file behind.  Returns ``(shard_id, temp_path, n_days, seconds)`` —
    only metadata crosses the process boundary; the parent maps the
    columns back.
    """
    shard_id, day_columns, seconds = _run_shard(spec, attempt=attempt)
    temp = Path(out_dir) / f"{shard_filename(spec.shard_id)}.tmp{os.getpid()}"
    write_arrays(temp, _columns_to_arrays(day_columns), meta={"n_days": len(day_columns)})
    return shard_id, str(temp), len(day_columns), seconds


def _read_shard_columns(
    path: Union[str, Path], app_name: str, copy: bool = False
) -> list[BroadcastColumns]:
    """Map a shard file back as per-day column batches.

    ``copy=True`` materializes the columns in RAM instead of leaving them
    as ``np.memmap`` views — required before deliberately damaging the
    file (persist-fault injection), where a mapped view would SIGBUS.
    """
    arrays, meta = read_arrays(path)
    if copy:
        arrays = {name: np.array(array, copy=True) for name, array in arrays.items()}
    return [
        BroadcastColumns(
            app_name=app_name,
            **{field: arrays[f"{position:03d}/{field}"] for field in _COLUMN_FIELDS},
        )
        for position in range(int(meta["n_days"]))
    ]


def effective_workers(config: TraceConfig, n_shards: int) -> int:
    """Worker processes generation will actually use.

    ``config.workers`` capped by the shard count, then collapsed to 1
    when the expected broadcast volume per worker is below
    ``MIN_BROADCASTS_PER_WORKER`` — pool startup would dominate.  Purely
    a scheduling decision; the generated bytes never depend on it.
    """
    workers = min(config.workers, n_shards)
    if workers <= 1:
        return 1
    floor = _env_int(MIN_PER_WORKER_ENV, MIN_BROADCASTS_PER_WORKER)
    expected = config.growth.total_broadcasts() * config.scale
    if expected < floor * workers:
        return 1
    return workers


# -- resilient pool loop ------------------------------------------------


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now* — hung or crashed workers included."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def _persist_fault_pending(
    plan: tuple[PipelineFault, ...], shard_id: int, attempt: int
) -> bool:
    return any(
        fault.kind in PERSIST_FAULT_KINDS and fault.matches(shard_id, attempt)
        for fault in plan
    )


def _run_shards_resilient(
    pending: list[ShardSpec],
    make_pool: Callable[[], ProcessPoolExecutor],
    submit_shard: Callable[[ProcessPoolExecutor, ShardSpec, int], Future],
    handle_result: Callable[[ShardSpec, int, tuple], None],
    run_inline: Callable[[ShardSpec, int], None],
    registry,
) -> None:
    """Drive shard futures to completion through worker failures.

    Individual task failures are retried with capped backoff up to
    ``REPRO_TRACE_SHARD_RETRIES`` extra attempts.  Pool-level failures —
    a ``BrokenProcessPool`` (crashed worker) or a shard blowing the
    ``REPRO_TRACE_SHARD_DEADLINE`` clock — kill the pool, bump the
    attempt count of every in-flight shard (their work died with the
    pool), and rebuild; after ``REPRO_TRACE_POOL_REBUILDS`` rebuilds the
    remaining shards run in-process instead.  None of this can change
    the merged bytes: a re-run shard regenerates the exact same columns.
    """
    max_retries = _env_int(SHARD_RETRIES_ENV, DEFAULT_SHARD_RETRIES)
    deadline = _env_float(SHARD_DEADLINE_ENV, DEFAULT_SHARD_DEADLINE)
    rebuild_cap = _env_int(POOL_REBUILDS_ENV, DEFAULT_POOL_REBUILDS)

    retries_counter = registry.counter(
        "trace.shard_retries", "shard generation attempts retried"
    )
    failures_counter = registry.counter(
        "trace.worker_failures", "pool-level worker failures (crash or deadline)"
    )
    rebuilds_counter = registry.counter(
        "trace.pool_rebuilds", "process pools rebuilt after worker failures"
    )

    queue = deque(sorted(pending, key=lambda spec: spec.shard_id))
    attempts: dict[int, int] = {spec.shard_id: 0 for spec in pending}
    inflight: dict[Future, tuple[ShardSpec, int]] = {}
    running_since: dict[Future, float] = {}
    rebuilds = 0
    pool = make_pool()

    def _charge(spec: ShardSpec, cause: BaseException | str) -> None:
        """Bill one failed attempt to ``spec``; error out past the budget."""
        attempts[spec.shard_id] += 1
        if attempts[spec.shard_id] > max_retries:
            raise RuntimeError(
                f"shard {spec.shard_id} failed after {attempts[spec.shard_id]} "
                f"attempts (last failure: {cause}); raise {SHARD_RETRIES_ENV} "
                "or inspect the worker logs"
            ) from (cause if isinstance(cause, BaseException) else None)
        queue.append(spec)

    try:
        while queue or inflight:
            broken = False
            while queue and not broken:
                spec = queue.popleft()
                attempt = attempts[spec.shard_id]
                if attempt:
                    time.sleep(min(_BACKOFF_BASE * 2 ** (attempt - 1), _BACKOFF_CAP))
                try:
                    future = submit_shard(pool, spec, attempt)
                except BrokenProcessPool:
                    queue.appendleft(spec)
                    broken = True
                else:
                    inflight[future] = (spec, attempt)

            hung = False
            if not broken and inflight:
                done, _ = wait(
                    set(inflight),
                    timeout=_POLL_SECONDS if deadline else None,
                    return_when=FIRST_COMPLETED,
                )
                now = time.perf_counter()
                for future in done:
                    spec, attempt = inflight.pop(future)
                    running_since.pop(future, None)
                    error = future.exception()
                    if error is None:
                        handle_result(spec, attempt, future.result())
                    elif isinstance(error, BrokenProcessPool):
                        # The pool died under this shard; the common
                        # requeue below charges it with the rest.
                        inflight[future] = (spec, attempt)
                        broken = True
                    else:
                        retries_counter.inc()
                        _charge(spec, error)
                if deadline and not broken:
                    for future in inflight:
                        if not future.running():
                            continue
                        started = running_since.setdefault(future, now)
                        if now - started > deadline:
                            hung = True
                    broken = hung

            if broken:
                failures_counter.inc()
                _kill_pool(pool)
                # Harvest in-flight futures that actually finished before
                # the pool died; everything else is charged and requeued.
                casualties = []
                for future, (spec, attempt) in inflight.items():
                    if future.done() and future.exception() is None:
                        handle_result(spec, attempt, future.result())
                    else:
                        casualties.append(spec)
                inflight.clear()
                running_since.clear()
                for spec in casualties:
                    retries_counter.inc()
                    _charge(spec, "deadline exceeded" if hung else "worker crashed")
                rebuilds += 1
                if rebuilds > rebuild_cap:
                    # The pool keeps dying — finish in-process, which no
                    # worker fault can touch.  Same bytes, no parallelism.
                    registry.counter(
                        "trace.pool_degraded",
                        "generation runs degraded to in-process after repeated "
                        "pool failures",
                    ).inc()
                    while queue:
                        spec = queue.popleft()
                        run_inline(spec, attempts[spec.shard_id])
                    return
                rebuilds_counter.inc()
                pool = make_pool()
        pool.shutdown(wait=True)
        pool = None
    finally:
        if pool is not None:
            _kill_pool(pool)


# -- dataset generation -------------------------------------------------


def generate_dataset(
    config: TraceConfig,
    context: ShardContext,
    registry=NULL_REGISTRY,
    transport: Optional[str] = None,
    run_dir: Optional[Union[str, Path]] = None,
    resume: bool = True,
    merge: Optional[str] = None,
    merge_path: Optional[Union[str, Path]] = None,
) -> BroadcastDataset:
    """Generate the broadcast dataset from a prebuilt context.

    Honours ``config.shards`` / ``config.workers``; the output is
    independent of both (test-enforced).  ``transport`` picks how context
    and results cross the process boundary (``"mmap"`` default,
    ``"pickle"`` legacy; env override ``REPRO_TRACE_TRANSPORT``) and is
    equally output-invariant.

    With a ``run_dir``, finished shards are checkpointed there
    (:class:`~repro.parallel.checkpoint.RunCheckpoint`) and — when
    ``resume`` is true — shards already journaled ``done`` are loaded
    from disk instead of regenerated, so an interrupted run repeats no
    finished work.  Checkpointing never changes the merged bytes.

    ``merge`` picks the shard-merge strategy (:data:`MERGES`; env
    override ``REPRO_TRACE_MERGE``).  ``None`` defaults to the streaming
    out-of-core merge whenever shard files exist on disk anyway
    (``run_dir`` or ``merge_path`` given), in-memory otherwise — either
    way the dataset bytes are identical.  ``merge_path`` names where the
    streamed merge publishes its ``mmap``-format file (this is how
    :func:`generate_trace` streams straight into the dataset-cache
    entry); default is ``<run_dir>/merged.cols``, or a scratch file when
    neither is given.
    """
    merge = resolve_merge(
        merge,
        default="stream" if (run_dir is not None or merge_path is not None) else "memory",
    )
    stream = merge == "stream"
    transport = resolve_transport(transport)
    fault_plan = fault_plan_from_env()

    specs = plan_shards(config.growth.days, shards=config.shards, workers=config.workers)
    workers = effective_workers(config, len(specs))

    checkpoint: Optional[RunCheckpoint] = None
    if run_dir is not None:
        checkpoint = RunCheckpoint.open(
            run_dir, config.cache_key(), specs, resume=resume
        )

    registry.gauge("trace.workers", "worker processes used for generation").set(workers)
    registry.gauge("trace.shards", "day-range shards generated").set(len(specs))
    shard_seconds = registry.histogram(
        "trace.shard_seconds", "wall seconds per generation shard"
    )

    generate_started = time.perf_counter()
    results: dict[int, list[BroadcastColumns]] = {}
    shard_files: dict[int, Path] = {}

    # Scratch space and the mmap transport dir are stack-managed so that
    # in stream mode the shard files survive until the merge has read
    # them; on POSIX the merged dataset's mappings survive the cleanup
    # unlink, so the returned dataset outlives the stack.
    with ExitStack() as stack:
        scratch: Optional[Path] = None
        if stream:
            scratch = Path(
                stack.enter_context(tempfile.TemporaryDirectory(prefix="repro-trace-merge-"))
            )

        if checkpoint is not None and checkpoint.done_shards:
            for shard_id in sorted(checkpoint.done_shards):
                if stream:
                    shard_files[shard_id] = checkpoint.shard_path(shard_id)
                else:
                    results[shard_id] = _read_shard_columns(
                        checkpoint.shard_path(shard_id), config.app_name
                    )
            registry.counter(
                "trace.shards_resumed", "checkpointed shards loaded instead of regenerated"
            ).inc(checkpoint.resumed)
        pending = [
            spec
            for spec in specs
            if spec.shard_id not in results and spec.shard_id not in shard_files
        ]

        def _persist_columns(
            spec: ShardSpec, attempt: int, day_columns: list[BroadcastColumns]
        ) -> None:
            """Persist parent-held columns (in-process and pickle paths).

            Journals to the checkpoint when there is one; in stream mode
            additionally guarantees a *clean* shard file for the merge to
            read — the checkpoint copy when no persist fault is about to
            damage it, a scratch copy otherwise.
            """
            path = None
            if checkpoint is not None:
                path = checkpoint.write_shard(
                    spec.shard_id,
                    _columns_to_arrays(day_columns),
                    meta={"n_days": len(day_columns)},
                )
            if stream:
                will_fault = path is not None and _persist_fault_pending(
                    fault_plan, spec.shard_id, attempt
                )
                if path is None or will_fault:
                    clean = scratch / shard_filename(spec.shard_id)
                    write_arrays(
                        clean,
                        _columns_to_arrays(day_columns),
                        meta={"n_days": len(day_columns)},
                    )
                    shard_files[spec.shard_id] = clean
                else:
                    shard_files[spec.shard_id] = path
            if path is not None:
                inject_persist_fault(fault_plan, spec.shard_id, attempt, path)

        def _finish_inline(spec: ShardSpec, attempt: int = 0) -> None:
            """Generate one shard in-process (fallback and degraded modes)."""
            shard_id, day_columns, seconds = _run_shard(spec, context)
            _persist_columns(spec, attempt, day_columns)
            if not stream:
                results[shard_id] = day_columns
            shard_seconds.observe(seconds)

        if workers <= 1:
            # In-process fallback: same shard walk, no executor.
            for spec in pending:
                _finish_inline(spec)
        elif not pending:
            pass  # fully resumed: nothing left to schedule
        elif transport == "pickle":

            def _handle_pickle(spec: ShardSpec, attempt: int, result: tuple) -> None:
                shard_id, day_columns, seconds = result
                _persist_columns(spec, attempt, day_columns)
                if not stream:
                    results[shard_id] = day_columns
                shard_seconds.observe(seconds)

            _run_shards_resilient(
                pending,
                make_pool=lambda: ProcessPoolExecutor(
                    max_workers=workers, initializer=_init_worker, initargs=(context,)
                ),
                submit_shard=lambda pool, spec, attempt: pool.submit(
                    _run_shard, spec, None, attempt
                ),
                handle_result=_handle_pickle,
                run_inline=_finish_inline,
                registry=registry,
            )
        else:
            # Zero-copy transport: context goes out as one mapped file, day
            # columns come back as per-shard files.  With a checkpoint the
            # shard files live (and stay) in the run dir; otherwise they sit
            # in a stack-scoped temp dir — on POSIX the mappings (and thus
            # the merged dataset) survive the cleanup unlink.
            tmp = stack.enter_context(tempfile.TemporaryDirectory(prefix="repro-trace-"))
            context_path = Path(tmp) / "context.arrays"
            write_arrays(
                context_path,
                {name: getattr(context, name) for name in _CONTEXT_ARRAY_FIELDS},
            )
            out_dir = str(checkpoint.root) if checkpoint is not None else tmp

            def _handle_mapped(spec: ShardSpec, attempt: int, result: tuple) -> None:
                shard_id, temp_path, _n_days, seconds = result
                if checkpoint is not None:
                    path = checkpoint.publish_shard(shard_id, temp_path)
                else:
                    path = Path(tmp) / shard_filename(shard_id)
                    os.replace(temp_path, path)
                # A persist fault about to damage this file means a mapped
                # view would SIGBUS (memory merge) and the merge input would
                # be corrupt (streamed) — take a private clean copy first.
                will_fault = checkpoint is not None and _persist_fault_pending(
                    fault_plan, shard_id, attempt
                )
                if stream:
                    if will_fault:
                        clean = scratch / shard_filename(shard_id)
                        shutil.copyfile(path, clean)
                        shard_files[shard_id] = clean
                    else:
                        shard_files[shard_id] = path
                else:
                    results[shard_id] = _read_shard_columns(
                        path, config.app_name, copy=will_fault
                    )
                if checkpoint is not None:
                    inject_persist_fault(fault_plan, shard_id, attempt, path)
                shard_seconds.observe(seconds)

            _run_shards_resilient(
                pending,
                make_pool=lambda: ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_worker_mapped,
                    initargs=(config, context.audience_cap, str(context_path)),
                ),
                submit_shard=lambda pool, spec, attempt: pool.submit(
                    _run_shard_mapped, spec, out_dir, attempt
                ),
                handle_result=_handle_mapped,
                run_inline=_finish_inline,
                registry=registry,
            )
        registry.gauge(
            "trace.generate_seconds", "wall seconds in per-day generation (all shards)"
        ).set(time.perf_counter() - generate_started)

        merge_started = time.perf_counter()
        if stream:
            if merge_path is not None:
                out_path = Path(merge_path)
            elif checkpoint is not None:
                out_path = checkpoint.root / "merged.cols"
            else:
                out_path = scratch / "merged.cols"
            dataset = stream_merge_shards(
                config,
                [shard_files[shard_id] for shard_id in sorted(shard_files)],
                out_path,
            )
        else:
            ordered_days = [
                day_columns
                for shard_id in sorted(results)
                for day_columns in results[shard_id]
            ]
            dataset = assemble_dataset_columns(config, ordered_days)
    registry.gauge(
        "trace.merge_seconds", "wall seconds merging and re-keying shard output"
    ).set(time.perf_counter() - merge_started)
    registry.gauge(
        "trace.merge_streamed",
        "1 when the out-of-core streaming merge produced the dataset, 0 in-memory",
    ).set(1.0 if stream else 0.0)
    rss = peak_rss_mb()
    if rss is not None:
        registry.gauge(
            "trace.peak_rss_mb", "process peak RSS high-water mark (MiB, ru_maxrss)"
        ).set(rss)
    registry.counter("trace.broadcasts", "broadcast records generated").inc(len(dataset))
    return dataset


def _graph_cache_key(config: TraceConfig) -> str:
    """Hash of everything that determines the follow graph's bytes."""
    basis = f"graph|{config.seed}|{config.total_users}|{config.graph_mean_out_degree}"
    return hashlib.sha256(basis.encode("ascii")).hexdigest()[:16]


def load_or_build_graph(
    config: TraceConfig,
    cache_dir: Optional[Union[str, Path]] = None,
    registry=NULL_REGISTRY,
) -> Optional[CompiledGraph]:
    """The config's follow graph, via the mappable graph cache.

    With a ``cache_dir``, a previously built graph is attached as
    read-only ``np.memmap`` views — milliseconds instead of the full
    generation — and a fresh build is stored back (atomically) for the
    next run.  Corrupt cache files are discarded and rebuilt.
    """
    if not config.with_social_graph:
        return None
    path = None
    if cache_dir is not None:
        path = Path(cache_dir) / f"graph-{_graph_cache_key(config)}.arrays"
        if path.exists():
            try:
                arrays, _meta = read_arrays(path)
                graph = CompiledGraph(
                    arrays["node_ids"],
                    arrays["indptr"],
                    arrays["indices"],
                    arrays["rindptr"],
                    arrays["rindices"],
                )
                registry.counter("trace.graph_cache_hits", "follow-graph cache hits").inc()
                return graph
            except (ValueError, OSError, KeyError):
                path.unlink(missing_ok=True)

    graph = build_follow_graph(config)
    if path is not None and graph is not None:
        path.parent.mkdir(parents=True, exist_ok=True)
        with atomic_output(path) as temp:
            write_arrays(
                temp,
                {
                    "node_ids": graph.node_ids,
                    "indptr": graph.indptr,
                    "indices": graph.indices,
                    "rindptr": graph.rindptr,
                    "rindices": graph.rindices,
                },
            )
    return graph


def generate_trace(
    config: TraceConfig,
    cache_dir: Optional[Union[str, Path]] = None,
    registry=NULL_REGISTRY,
    cache_format: str = "v2",
    run_dir: Optional[Union[str, Path]] = None,
    resume: bool = True,
    merge: Optional[str] = None,
) -> WorkloadTrace:
    """Generate (or load from cache) a full :class:`WorkloadTrace`.

    The environment knobs are validated *first* (a garbage
    ``REPRO_TRACE_*`` value fails here, not mid-run), then the dataset
    cache is probed: a hit costs the read plus the cheap population
    pools (their substream is independent of the graph's), and the
    follow graph becomes a lazy attribute — built, or attached from the
    graph cache, only if an analysis actually touches ``trace.graph``.
    Only on a miss does the full precompute run.  ``cache_format`` picks
    the cache serialization (``"v2"`` binary columnar, ``"v1"`` gzipped
    JSONL, ``"mmap"`` uncompressed mappable columns); all store the
    identical dataset.

    ``run_dir`` / ``resume`` enable shard checkpointing — see
    :func:`generate_dataset` and :mod:`repro.parallel.checkpoint`.

    ``merge`` picks the shard-merge strategy (:data:`MERGES`, env
    override ``REPRO_TRACE_MERGE``); ``None`` defaults to the streaming
    out-of-core merge whenever a ``cache_dir`` or ``run_dir`` is given.
    When the merge streams *and* the cache's format is ``mmap``, the
    merged file is published directly as the cache entry (atomically,
    under the same temp-name discipline the cache sweeps) — the
    post-merge ``cache.put`` copy is skipped entirely, so the dataset is
    serialized exactly once.  Other cache formats are an explicit
    compression choice, so the streamed merge file stays local and
    ``put`` stores the requested format as usual.
    """
    validate_environment()

    cache = None
    dataset: Optional[BroadcastDataset] = None
    if cache_dir is not None:
        # Imported here: storage has no dependency on this module.
        from repro.crawler.storage import DatasetCache

        cache = DatasetCache(cache_dir, fmt=cache_format)
        dataset = cache.get(config.cache_key())

    if dataset is not None:
        registry.counter("trace.cache_hits", "dataset cache hits").inc()
        # Pools draw from their own substream, so skipping the graph
        # changes nothing about them; follower counts are only consumed
        # by generation, which a hit bypasses.
        context, _ = build_trace_context(config, graph=None)
        return WorkloadTrace(
            config=config,
            dataset=dataset,
            graph=lambda: load_or_build_graph(config, cache_dir, registry),
            broadcaster_ids=context.broadcaster_ids,
            viewer_ids=context.viewer_ids,
        )

    if cache is not None:
        registry.counter("trace.cache_misses", "dataset cache misses").inc()

    graph_started = time.perf_counter()
    graph = load_or_build_graph(config, cache_dir, registry)
    graph_seconds = time.perf_counter() - graph_started
    registry.gauge(
        "trace.graph_seconds", "wall seconds building the follow graph"
    ).set(graph_seconds)

    context_started = time.perf_counter()
    context, graph = build_trace_context(config, graph=graph)
    registry.gauge(
        "trace.context_seconds", "wall seconds in precompute (graph + pools)"
    ).set(graph_seconds + (time.perf_counter() - context_started))

    merge = resolve_merge(
        merge,
        default="stream" if (cache_dir is not None or run_dir is not None) else "memory",
    )
    merge_path = None
    if merge == "stream" and cache is not None and cache.fmt == "mmap":
        # Stream the merge straight into the cache entry — the streamed
        # output IS the mmap format.  ArrayFileWriter stages the file as
        # `trace-<key>.cols.tmp<pid>`, which matches the cache's stale
        # temp sweep, and publishes with the same os.replace the cache
        # itself uses — the entry appears whole or not at all.  Other
        # cache formats are compression choices the user made explicitly,
        # so there the streamed merge file stays in the run dir (or
        # scratch) and `put` serializes the requested format as before.
        merge_path = cache.path_for(config.cache_key())

    dataset = generate_dataset(
        config,
        context,
        registry=registry,
        run_dir=run_dir,
        resume=resume,
        merge=merge,
        merge_path=merge_path,
    )
    if cache is not None and merge_path is None:
        cache.put(config.cache_key(), dataset)

    return WorkloadTrace(
        config=config,
        dataset=dataset,
        graph=graph,
        broadcaster_ids=context.broadcaster_ids,
        viewer_ids=context.viewer_ids,
    )
