"""Sharded, multi-process workload-trace generation.

The paper's Periscope dataset is 19.6M broadcasts / 705M views; a
single-process generation loop is only practical around ``scale=0.001``,
which hides scaling bugs and keeps every figure pipeline toy-sized.  This
module fans generation out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* the day range is partitioned into deterministic shards
  (:func:`repro.parallel.sharding.plan_shards`),
* every day draws from its own seed-derived substream, so results are
  schedule-independent — ``workers=1`` and ``workers=N`` produce
  byte-identical datasets for the same config,
* workers return packed :class:`~repro.crawler.dataset.BroadcastColumns`
  (a dozen numpy arrays per day) instead of pickled record objects, so
  the process-boundary cost is a few buffer copies,
* shard outputs are merged with a stable argsort on
  ``(start_time, broadcast_id)`` and globally re-keyed IDs
  (:func:`repro.workload.trace.assemble_dataset_columns`),
* an optional on-disk cache (:class:`repro.crawler.storage.DatasetCache`,
  keyed by :meth:`TraceConfig.cache_key`) lets figure experiments reuse
  generated traces across processes.

Per-phase wall times (graph build, context, generation, merge), shard
timings, and cache traffic are published through the :mod:`repro.obs`
registry passed in (no-op by default).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Optional, Union

from repro.obs import NULL_REGISTRY
from repro.parallel.sharding import ShardSpec, plan_shards
from repro.workload.trace import (
    BroadcastColumns,
    BroadcastDataset,
    ShardContext,
    TraceConfig,
    WorkloadTrace,
    assemble_dataset_columns,
    build_follow_graph,
    build_trace_context,
    generate_day_columns,
)

#: Per-worker-process shard context (set by the pool initializer, or
#: inherited from the parent on fork start methods).
_WORKER_CONTEXT: Optional[ShardContext] = None


def _init_worker(context: ShardContext) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


def _run_shard(
    spec: ShardSpec, context: Optional[ShardContext] = None
) -> tuple[int, list[BroadcastColumns], float]:
    """Generate one shard's day range; returns (shard_id, day columns, seconds)."""
    ctx = context if context is not None else _WORKER_CONTEXT
    if ctx is None:
        raise RuntimeError("worker process has no shard context (initializer not run)")
    started = time.perf_counter()
    day_columns = [generate_day_columns(ctx, day) for day in spec.days()]
    return spec.shard_id, day_columns, time.perf_counter() - started


def generate_dataset(
    config: TraceConfig,
    context: ShardContext,
    registry=NULL_REGISTRY,
) -> BroadcastDataset:
    """Generate the broadcast dataset from a prebuilt context.

    Honours ``config.shards`` / ``config.workers``; the output is
    independent of both (test-enforced).
    """
    specs = plan_shards(config.growth.days, shards=config.shards, workers=config.workers)
    workers = min(config.workers, len(specs))

    registry.gauge("trace.workers", "worker processes used for generation").set(workers)
    registry.gauge("trace.shards", "day-range shards generated").set(len(specs))
    shard_seconds = registry.histogram(
        "trace.shard_seconds", "wall seconds per generation shard"
    )

    generate_started = time.perf_counter()
    results: dict[int, list[BroadcastColumns]] = {}
    if workers <= 1:
        # In-process fallback: same shard walk, no executor.
        for spec in specs:
            shard_id, day_columns, seconds = _run_shard(spec, context)
            results[shard_id] = day_columns
            shard_seconds.observe(seconds)
    else:
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker, initargs=(context,)
        ) as pool:
            for shard_id, day_columns, seconds in pool.map(_run_shard, specs):
                results[shard_id] = day_columns
                shard_seconds.observe(seconds)
    registry.gauge(
        "trace.generate_seconds", "wall seconds in per-day generation (all shards)"
    ).set(time.perf_counter() - generate_started)

    merge_started = time.perf_counter()
    ordered_days = [
        day_columns for shard_id in sorted(results) for day_columns in results[shard_id]
    ]
    dataset = assemble_dataset_columns(config, ordered_days)
    registry.gauge(
        "trace.merge_seconds", "wall seconds merging and re-keying shard output"
    ).set(time.perf_counter() - merge_started)
    registry.counter("trace.broadcasts", "broadcast records generated").inc(len(dataset))
    return dataset


def generate_trace(
    config: TraceConfig,
    cache_dir: Optional[Union[str, Path]] = None,
    registry=NULL_REGISTRY,
    cache_format: str = "v2",
) -> WorkloadTrace:
    """Generate (or load from cache) a full :class:`WorkloadTrace`.

    The population pools and follow graph are deterministic precomputes
    and are always rebuilt (they are needed by social analyses either
    way); only the broadcast dataset — the expensive, shardable part —
    goes through the on-disk cache.  ``cache_format`` picks the cache
    serialization (``"v2"`` binary columnar, ``"v1"`` gzipped JSONL);
    both store the identical dataset.
    """
    graph_started = time.perf_counter()
    graph = build_follow_graph(config)
    graph_seconds = time.perf_counter() - graph_started
    registry.gauge(
        "trace.graph_seconds", "wall seconds building the follow graph"
    ).set(graph_seconds)

    context_started = time.perf_counter()
    context, graph = build_trace_context(config, graph=graph)
    registry.gauge(
        "trace.context_seconds", "wall seconds in precompute (graph + pools)"
    ).set(graph_seconds + (time.perf_counter() - context_started))

    dataset: Optional[BroadcastDataset] = None
    cache = None
    if cache_dir is not None:
        # Imported here: storage has no dependency on this module.
        from repro.crawler.storage import DatasetCache

        cache = DatasetCache(cache_dir, fmt=cache_format)
        dataset = cache.get(config.cache_key())
        if dataset is not None:
            registry.counter("trace.cache_hits", "dataset cache hits").inc()

    if dataset is None:
        if cache is not None:
            registry.counter("trace.cache_misses", "dataset cache misses").inc()
        dataset = generate_dataset(config, context, registry=registry)
        if cache is not None:
            cache.put(config.cache_key(), dataset)

    return WorkloadTrace(
        config=config,
        dataset=dataset,
        graph=graph,
        broadcaster_ids=context.broadcaster_ids,
        viewer_ids=context.viewer_ids,
    )
