"""Deterministic fault injection for the generation pipeline itself.

:mod:`repro.faults` makes the *simulated* livestreaming system breakable
on purpose; this module applies the same philosophy to the machinery that
generates its workload traces.  A fault plan — parsed from the
``REPRO_TRACE_FAULTS`` environment variable so it reaches pool worker
processes for free — names exactly which shard fails, how, and on which
attempt, so the recovery paths in :mod:`repro.parallel.generate` are
provable instead of hoped-for.

Syntax: comma-separated ``kind@shard=N`` specs; each spec may add
``&attempt=K`` (default ``0``: only the first try fails, so a retry
succeeds) with ``*`` meaning *every* shard / attempt::

    REPRO_TRACE_FAULTS="kill-worker@shard=3,truncate-shard@shard=5"
    REPRO_TRACE_FAULTS="hang@shard=2"
    REPRO_TRACE_FAULTS="kill-worker@shard=*&attempt=*"   # pool never survives

Kinds — the first three fire *inside a pool worker* just before the
shard generates (they never fire on the in-process path, so graceful
degradation is always a way out); the last two fire in the parent after
a shard file is published to a checkpointed run directory, manufacturing
exactly the on-disk damage a resume must detect:

``kill-worker``
    the worker dies with ``os._exit(1)`` — the parent sees a
    ``BrokenProcessPool`` and must rebuild the pool and resubmit.
``hang``
    the worker sleeps far past any sane deadline — the parent's
    per-shard deadline must kill and rebuild the pool.
``fail``
    the worker raises :class:`PipelineFaultError` — an ordinary task
    failure the per-shard retry must absorb.
``truncate-shard``
    the published ``shard-NNNNN.arrays`` file is cut in half — a resume
    must spot the short file and regenerate the shard.
``corrupt-shard``
    one data byte of the published shard file is flipped, size
    unchanged — only the checksum footer can catch this one.

Because every day draws from its own seed-derived substream, a re-run
shard is byte-identical to the one that failed, so none of these faults
can change the merged dataset — the chaos-pipeline check asserts it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Optional, Union

#: Environment variable holding the pipeline fault plan (parsed lazily,
#: per shard attempt, so pool workers pick it up through inheritance).
FAULTS_ENV = "REPRO_TRACE_FAULTS"

#: Fault kinds injected inside a pool worker, before shard generation.
WORKER_FAULT_KINDS = ("kill-worker", "hang", "fail")
#: Fault kinds injected in the parent, after a shard file is published.
PERSIST_FAULT_KINDS = ("truncate-shard", "corrupt-shard")
FAULT_KINDS = WORKER_FAULT_KINDS + PERSIST_FAULT_KINDS

#: How long a ``hang`` fault sleeps — far past any deadline a test or
#: chaos run configures, short enough that a leaked worker eventually
#: exits on its own.
HANG_SECONDS = 3600.0


class PipelineFaultError(RuntimeError):
    """The injected, retriable worker failure raised by a ``fail`` fault."""


@dataclass(frozen=True)
class PipelineFault:
    """One injected pipeline fault: what, which shard, which attempt."""

    kind: str
    shard_id: Optional[int]  # None = every shard
    attempt: Optional[int] = 0  # None = every attempt

    def matches(self, shard_id: int, attempt: int) -> bool:
        if self.shard_id is not None and self.shard_id != shard_id:
            return False
        return self.attempt is None or self.attempt == attempt


def _parse_field(spec: str, key: str, value: str) -> Optional[int]:
    if value == "*":
        return None
    try:
        parsed = int(value)
    except ValueError:
        raise ValueError(
            f"bad pipeline fault spec {spec!r}: {key} must be an integer or '*', "
            f"got {value!r}"
        ) from None
    if parsed < 0:
        raise ValueError(f"bad pipeline fault spec {spec!r}: {key} must be >= 0")
    return parsed


def parse_fault_plan(text: str) -> tuple[PipelineFault, ...]:
    """Parse a fault plan string; raises ``ValueError`` with the offending
    spec and the accepted syntax on any malformed input."""
    faults = []
    for spec in filter(None, (part.strip() for part in text.split(","))):
        kind, at, fields = spec.partition("@")
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown pipeline fault kind {kind!r} in {spec!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if not at:
            raise ValueError(
                f"bad pipeline fault spec {spec!r}: expected 'kind@shard=N[&attempt=K]'"
            )
        shard_id: Optional[int] = 0
        attempt: Optional[int] = 0
        seen = set()
        for item in fields.split("&"):
            key, eq, value = item.partition("=")
            if not eq or key not in ("shard", "attempt") or key in seen:
                raise ValueError(
                    f"bad pipeline fault spec {spec!r}: expected "
                    f"'kind@shard=N[&attempt=K]', got field {item!r}"
                )
            seen.add(key)
            if key == "shard":
                shard_id = _parse_field(spec, key, value)
            else:
                attempt = _parse_field(spec, key, value)
        if "shard" not in seen:
            raise ValueError(f"bad pipeline fault spec {spec!r}: missing shard=N")
        faults.append(PipelineFault(kind=kind, shard_id=shard_id, attempt=attempt))
    return tuple(faults)


@lru_cache(maxsize=8)
def _cached_plan(text: str) -> tuple[PipelineFault, ...]:
    try:
        return parse_fault_plan(text)
    except ValueError as error:
        raise ValueError(f"invalid {FAULTS_ENV}: {error}") from None


def fault_plan_from_env() -> tuple[PipelineFault, ...]:
    """The active fault plan from ``REPRO_TRACE_FAULTS`` (usually empty).

    Raises ``ValueError`` naming the variable on malformed input, so a
    typo'd plan fails the run up front instead of silently injecting
    nothing.
    """
    return _cached_plan(os.environ.get(FAULTS_ENV, ""))


def inject_worker_fault(
    plan: tuple[PipelineFault, ...], shard_id: int, attempt: int
) -> None:
    """Fire any matching worker-side fault.  Called from pool workers only
    — never from the in-process path, where ``kill-worker`` would take the
    parent down with it."""
    for fault in plan:
        if fault.kind not in WORKER_FAULT_KINDS or not fault.matches(shard_id, attempt):
            continue
        if fault.kind == "kill-worker":
            os._exit(1)
        if fault.kind == "hang":
            time.sleep(HANG_SECONDS)
        raise PipelineFaultError(
            f"injected pipeline fault: shard {shard_id} attempt {attempt}"
        )


def inject_persist_fault(
    plan: tuple[PipelineFault, ...],
    shard_id: int,
    attempt: int,
    path: Union[str, Path],
) -> bool:
    """Damage a just-published shard file per the plan; True if it fired.

    ``truncate-shard`` halves the file (a short write / full disk);
    ``corrupt-shard`` flips one byte inside the *first non-empty array
    block* — found through the file's own header so the flip never lands
    in padding, where no checksum covers it — leaving the size intact so
    only the checksum footer can convict the file.
    """
    path = Path(path)
    fired = False
    for fault in plan:
        if fault.kind not in PERSIST_FAULT_KINDS or not fault.matches(shard_id, attempt):
            continue
        data = bytearray(path.read_bytes())
        if fault.kind == "truncate-shard":
            del data[len(data) // 2 :]
        else:
            header_end = data.index(b"\n") + 1
            header = json.loads(data[:header_end])
            entry = next(e for e in header["arrays"] if e["shape"] != [0])
            data[header_end + int(entry["offset"])] ^= 0xFF
        path.write_bytes(bytes(data))
        fired = True
    return fired
