"""Sharded, multi-process trace generation (schedule-independent).

Public API::

    from repro.parallel import generate_trace, plan_shards

    trace = generate_trace(TraceConfig.periscope(scale=0.01, workers=4))
"""

from repro.parallel.generate import generate_dataset, generate_trace
from repro.parallel.sharding import AUTO_SHARDS_PER_WORKER, ShardSpec, plan_shards

__all__ = [
    "AUTO_SHARDS_PER_WORKER",
    "ShardSpec",
    "generate_dataset",
    "generate_trace",
    "plan_shards",
]
