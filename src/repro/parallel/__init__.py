"""Sharded, multi-process trace generation (schedule-independent).

Public API::

    from repro.parallel import generate_trace, plan_shards

    trace = generate_trace(TraceConfig.periscope(scale=0.01, workers=4))

Generation is crash-resilient: pass ``run_dir=`` to checkpoint finished
shards (:class:`RunCheckpoint`) and resume interrupted runs, and set
``REPRO_TRACE_FAULTS`` to inject deterministic pipeline faults
(:func:`parse_fault_plan`) when proving the recovery paths.
"""

from repro.parallel.checkpoint import RunCheckpoint, RunDirError, read_manifest
from repro.parallel.faults import (
    PipelineFault,
    PipelineFaultError,
    parse_fault_plan,
)
from repro.parallel.generate import (
    generate_dataset,
    generate_trace,
    resolve_merge,
    resolve_transport,
    validate_environment,
)
from repro.parallel.merge import stream_merge_shards
from repro.parallel.sharding import AUTO_SHARDS_PER_WORKER, ShardSpec, plan_shards

__all__ = [
    "AUTO_SHARDS_PER_WORKER",
    "PipelineFault",
    "PipelineFaultError",
    "RunCheckpoint",
    "RunDirError",
    "ShardSpec",
    "generate_dataset",
    "generate_trace",
    "parse_fault_plan",
    "plan_shards",
    "read_manifest",
    "resolve_merge",
    "resolve_transport",
    "stream_merge_shards",
    "validate_environment",
]
