"""Out-of-core streaming merge: shard files flow straight into the
``mmap`` cache format.

The in-memory merge (:func:`repro.workload.trace.assemble_dataset_columns`)
is the one phase where every shard's columns coexist in RAM — at the
paper's full scale (~19.6M broadcasts / 705M views) the viewer CSR alone
is ~5.6 GB of int64, and ``DatasetCache.put`` then serializes a second
full copy.  This module replaces that with a sequential file-to-file
copy whose peak heap is one bounded window (:data:`STREAM_CHUNK_BYTES`),
regardless of dataset size.

Why a *sequential* merge is the *sorted* merge: shards are contiguous
day ranges, rows within a day are sorted by ``start_time`` (ties broken
by day-local ID, which equals storage order), and day offsets never
cross a day boundary — so concatenating shards in shard order **is** the
global ``(start_time, id)`` order the in-memory path produces with its
lexsort.  Only two per-shard fixups remain, both computable from a
running scalar:

* ``broadcast_id`` — globally re-keyed ``1..N``, so the column is simply
  *generated* as ranges (never even read from the shards);
* ``viewer_indptr`` — each day's CSR offsets shifted by the running
  viewer count (one leading ``0``, then every day's ``indptr[1:]``).

Everything else is a raw block copy.  The output is written with
:class:`~repro.crawler.arrayfile.ArrayFileWriter` — checksums accumulate
incrementally and the file publishes atomically — and is **byte-identical**
to ``save_dataset_mapped`` of the in-memory merge (test-enforced for
every shards/workers/transport choice), which is what lets
:func:`repro.parallel.generate.generate_trace` publish the merge output
directly *as* the dataset-cache entry and skip ``put`` entirely.

Reads go through bounded ``file.read`` windows rather than ``np.memmap``
on purpose: resident file-backed mappings count toward RSS, so a mapped
merge would look exactly like the in-memory one to the
``trace.peak_rss_mb`` gate in ``scripts/check.sh bench``.
"""

from __future__ import annotations

from contextlib import ExitStack
from pathlib import Path
from typing import BinaryIO, Sequence, Union

import numpy as np

from repro.crawler.arrayfile import ArrayEntry, ArrayFileWriter, read_array_index
from repro.crawler.dataset import BroadcastDataset
from repro.crawler.storage import (
    COLUMN_LAYOUT,
    load_dataset_mapped,
    mapped_dataset_meta,
)
from repro.workload.trace import TraceConfig

__all__ = ["STREAM_CHUNK_BYTES", "stream_merge_shards"]

PathLike = Union[str, Path]

#: Upper bound on one copy window's bytes — the merge's working set is a
#: small multiple of this (source buffer + dtype-converted view), never
#: a function of dataset size.  32 MiB keeps syscall overhead negligible
#: while staying far below a single paper-scale shard.
STREAM_CHUNK_BYTES = 32 << 20


def _shard_day_entries(
    path: Path, field: str, index: dict[str, ArrayEntry], n_days: int
) -> list[ArrayEntry]:
    """``field``'s per-day entries of one shard file, in day order."""
    entries = []
    for position in range(n_days):
        name = f"{position:03d}/{field}"
        entry = index.get(name)
        if entry is None:
            raise ValueError(f"{path}: shard file is missing array {name!r}")
        entries.append(entry)
    return entries


def _copy_window(
    writer: ArrayFileWriter,
    field: str,
    handle: BinaryIO,
    entry: ArrayEntry,
    start: int = 0,
) -> None:
    """Copy ``entry``'s elements from ``start`` on, in bounded windows."""
    itemsize = entry.dtype.itemsize
    window = max(itemsize, STREAM_CHUNK_BYTES // itemsize * itemsize)
    offset = entry.offset + start * itemsize
    remaining = entry.nbytes - start * itemsize
    handle.seek(offset)
    while remaining > 0:
        take = min(window, remaining)
        buffer = handle.read(take)
        if len(buffer) != take:
            raise ValueError(f"shard array {entry.name!r} truncated mid-copy")
        writer.append(field, np.frombuffer(buffer, dtype=entry.dtype))
        remaining -= take


def _append_ranges(writer: ArrayFileWriter, field: str, start: int, count: int) -> None:
    """Append ``start .. start+count-1`` as int64, in bounded windows."""
    window = max(1, STREAM_CHUNK_BYTES // 8)
    position = start
    end = start + count
    while position < end:
        take = min(window, end - position)
        writer.append(field, np.arange(position, position + take, dtype=np.int64))
        position += take


def stream_merge_shards(
    config: TraceConfig,
    shard_paths: Sequence[PathLike],
    out_path: PathLike,
    verify_order: bool = True,
) -> BroadcastDataset:
    """Merge shard files into one ``mmap``-format dataset file, out of core.

    ``shard_paths`` must be the run's shard files in shard (= day) order —
    checkpointed ``shard-NNNNN.arrays`` files or their transport
    equivalents.  The merged file is staged and published atomically at
    ``out_path``; the returned dataset attaches it as read-only
    ``np.memmap`` views (valid even if ``out_path`` is later unlinked, so
    scratch-directory merges work).

    ``verify_order`` cross-checks the sortedness invariant the sequential
    merge rests on (non-decreasing ``start_time`` across every window
    boundary) while the bytes stream past — it costs nothing extra to
    read and turns a violated generator invariant into a hard error
    instead of a silently mis-sorted dataset.
    """
    paths = [Path(path) for path in shard_paths]
    if not paths:
        raise ValueError("no shard files to merge")

    # Pass 1 — headers only: learn every day's row/viewer counts, so the
    # complete output schema (and thus the header) is known up front.
    shards: list[tuple[Path, dict[str, ArrayEntry], int]] = []
    total_days = 0
    total_rows = 0
    total_viewers = 0
    for path in paths:
        index, meta = read_array_index(path)
        n_days = int(meta["n_days"])
        for entry in _shard_day_entries(path, "broadcast_id", index, n_days):
            total_rows += entry.shape[0]
        for entry in _shard_day_entries(path, "viewer_ids", index, n_days):
            total_viewers += entry.shape[0]
        shards.append((path, index, n_days))
        total_days += n_days
    if total_days != config.growth.days:
        raise ValueError(
            f"shard files cover {total_days} days, config expects "
            f"{config.growth.days}; pass every shard of the run in order"
        )

    def column_length(field: str) -> int:
        if field == "viewer_indptr":
            return total_rows + 1
        if field == "viewer_ids":
            return total_viewers
        return total_rows

    writer = ArrayFileWriter(
        out_path,
        [(field, dtype, (column_length(field),)) for field, dtype in COLUMN_LAYOUT],
        meta=mapped_dataset_meta(
            config.app_name, config.growth.days, total_rows, total_viewers
        ),
    )

    # Pass 2 — one sequential sweep per column (the output file is laid
    # out column-major), every shard held open once.
    try:
        with ExitStack() as stack:
            handles = [stack.enter_context(path.open("rb")) for path, _, _ in shards]
            last_start_time = -np.inf
            for field, _dtype in COLUMN_LAYOUT:
                if field == "broadcast_id":
                    # Generated, not copied: the global re-key is just 1..N.
                    _append_ranges(writer, field, 1, total_rows)
                    continue
                if field == "viewer_indptr":
                    writer.append(field, np.zeros(1, dtype=np.int64))
                viewer_base = 0
                for handle, (path, index, n_days) in zip(handles, shards):
                    for entry in _shard_day_entries(path, field, index, n_days):
                        if field == "viewer_indptr":
                            # Day-local CSR offsets, shifted by the viewers
                            # already merged; the day's own leading 0 is
                            # dropped (the global column has exactly one).
                            day_indptr = np.frombuffer(
                                _read_entry(handle, entry), dtype=entry.dtype
                            )
                            writer.append(field, day_indptr[1:] + np.int64(viewer_base))
                            viewer_base += int(day_indptr[-1])
                        elif field == "start_time" and verify_order:
                            last_start_time = _copy_verifying_order(
                                writer, field, handle, entry, last_start_time
                            )
                        else:
                            _copy_window(writer, field, handle, entry)
        merged_path = writer.finalize()
    except BaseException:
        writer.abort()
        raise
    return load_dataset_mapped(merged_path)


def _read_entry(handle: BinaryIO, entry: ArrayEntry) -> bytes:
    """Read one whole array block (used for per-day ``viewer_indptr``,
    whose size is bounded by a single day's row count)."""
    handle.seek(entry.offset)
    buffer = handle.read(entry.nbytes)
    if len(buffer) != entry.nbytes:
        raise ValueError(f"shard array {entry.name!r} truncated mid-copy")
    return buffer


def _copy_verifying_order(
    writer: ArrayFileWriter,
    field: str,
    handle: BinaryIO,
    entry: ArrayEntry,
    last_value: float,
) -> float:
    """Copy a float64 block in windows, checking it never decreases."""
    itemsize = entry.dtype.itemsize
    window = max(itemsize, STREAM_CHUNK_BYTES // itemsize * itemsize)
    handle.seek(entry.offset)
    remaining = entry.nbytes
    while remaining > 0:
        take = min(window, remaining)
        buffer = handle.read(take)
        if len(buffer) != take:
            raise ValueError(f"shard array {entry.name!r} truncated mid-copy")
        values = np.frombuffer(buffer, dtype=entry.dtype)
        if len(values) and (
            values[0] < last_value or np.any(values[1:] < values[:-1])
        ):
            raise ValueError(
                f"{entry.name!r} is not sorted across shard day ranges; "
                "the sequential streaming merge requires sorted day shards "
                "(generator invariant violated)"
            )
        writer.append(field, values)
        if len(values):
            last_value = float(values[-1])
        remaining -= take
    return last_value
