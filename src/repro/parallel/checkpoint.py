"""Resumable run directories for sharded trace generation.

A scale-1.0 generation run is a multi-hour job; without checkpoints a
worker OOM at shard 47/64 — or a plain SIGTERM to the parent — throws
every finished shard away.  A :class:`RunCheckpoint` turns a directory
into a durable journal of shard progress:

* ``manifest.json`` — one atomic JSON document (written to a
  ``.tmp<pid>`` sibling, then ``os.replace``d) recording the config's
  cache key, the shard plan, and which shard ids are ``done``,
* ``shard-NNNNN.arrays`` — each completed shard's day columns in the
  checksummed :mod:`repro.crawler.arrayfile` format, also published
  atomically, so a file either exists whole or not at all.

Opening an existing run directory *validates* rather than trusts it:
the manifest must match the requested config's cache key and shard plan
(a run dir belongs to exactly one run), every ``done`` shard's file is
re-verified against its checksum footer — corrupt or truncated files
are deleted and the shard demoted to pending — and shard files that
were published but never journaled (a crash between ``os.replace`` and
the manifest flush) are adopted as done.  Stale ``*.tmp<pid>`` files
from dead writers are swept with the same liveness probe the dataset
cache uses (:func:`repro.crawler.storage.sweep_stale_temps`).

Because every day draws from its own seed-derived substream, the shards
a resume regenerates are byte-identical to the ones a crash destroyed —
resumed output equals single-shot output, which the crash-path tests
assert byte for byte.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.crawler.arrayfile import atomic_output, read_arrays, write_arrays
from repro.crawler.storage import sweep_stale_temps
from repro.parallel.sharding import ShardSpec

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
_MANIFEST_MAGIC = "repro-trace-run"
MANIFEST_VERSION = 1


class RunDirError(ValueError):
    """The run directory cannot serve the requested run (wrong config,
    wrong shard plan, or an existing run opened without ``resume``)."""


def shard_filename(shard_id: int) -> str:
    """Canonical name of a checkpointed shard file."""
    return f"shard-{shard_id:05d}.arrays"


def read_manifest(root: PathLike) -> Optional[dict]:
    """Best-effort read of a run directory's manifest (for status display).

    Returns ``None`` when the manifest is absent or unreadable — callers
    wanting hard validation open a :class:`RunCheckpoint` instead.
    """
    path = Path(root) / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text("utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or manifest.get("format") != _MANIFEST_MAGIC:
        return None
    return manifest


class RunCheckpoint:
    """Journal of per-shard progress inside one run directory.

    Construct via :meth:`open`; mutate only through :meth:`publish_shard`
    / :meth:`write_shard`, which mark the shard done and flush the
    manifest atomically.  ``resumed`` counts the shards already done when
    the directory was opened — the work a restart did *not* repeat.
    """

    def __init__(
        self,
        root: Path,
        cache_key: str,
        plan: list[list[int]],
        done: set[int],
        resumed: int,
    ) -> None:
        self.root = root
        self.cache_key = cache_key
        self._plan = plan
        self._done = done
        self.resumed = resumed

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def open(
        cls,
        root: PathLike,
        cache_key: str,
        specs: Sequence[ShardSpec],
        resume: bool = True,
    ) -> "RunCheckpoint":
        """Open (creating if needed) a run directory for this shard plan.

        Raises :class:`RunDirError` when the directory already journals a
        *different* run (cache key or shard plan mismatch), or when it
        journals any run and ``resume`` is false — silently restarting
        over an existing journal would be indistinguishable from resuming
        it.
        """
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        sweep_stale_temps(root, "*.tmp*")
        plan = [[spec.day_start, spec.day_end] for spec in specs]

        manifest = read_manifest(root)
        if manifest is None and (root / MANIFEST_NAME).exists():
            raise RunDirError(f"{root}: unreadable run manifest; use a fresh --run-dir")
        if manifest is not None:
            if not resume:
                raise RunDirError(
                    f"{root}: already contains a run ({len(manifest.get('done', []))} "
                    "shards done); pass resume/--resume to continue it or use a "
                    "fresh --run-dir"
                )
            if int(manifest.get("format_version", 0)) != MANIFEST_VERSION:
                raise RunDirError(
                    f"{root}: unsupported run manifest version "
                    f"{manifest.get('format_version')!r}"
                )
            if manifest.get("cache_key") != cache_key:
                raise RunDirError(
                    f"{root}: run directory belongs to a different config "
                    f"(cache key {manifest.get('cache_key')!r} != {cache_key!r})"
                )
            if manifest.get("shard_plan") != plan:
                raise RunDirError(
                    f"{root}: run directory was planned with different shards; "
                    "re-run with the original shards/workers or use a fresh --run-dir"
                )
            done = {int(shard_id) for shard_id in manifest.get("done", [])}
        else:
            done = set()

        checkpoint = cls(root, cache_key, plan, done, resumed=0)
        if manifest is not None:
            checkpoint._validate_done_shards()
        checkpoint.resumed = len(checkpoint._done)
        checkpoint.flush()
        return checkpoint

    def _validate_done_shards(self) -> None:
        """Re-verify journaled shards; demote corrupt ones, adopt orphans.

        A ``done`` shard whose file is missing, truncated, or fails its
        checksum footer goes back to pending (and the bad file is
        removed).  A shard file that exists and verifies but was never
        journaled — the parent died between publishing the file and
        flushing the manifest — is adopted as done.
        """
        for shard_id in range(len(self._plan)):
            path = self.shard_path(shard_id)
            journaled = shard_id in self._done
            if not journaled and not path.exists():
                continue
            try:
                read_arrays(path, verify=True)
            except (OSError, ValueError):
                self._done.discard(shard_id)
                path.unlink(missing_ok=True)
            else:
                self._done.add(shard_id)

    # -- paths ---------------------------------------------------------

    def shard_path(self, shard_id: int) -> Path:
        return self.root / shard_filename(shard_id)

    def temp_path(self, shard_id: int) -> Path:
        """Private temp name for this process; published via ``os.replace``."""
        return self.root / f"{shard_filename(shard_id)}.tmp{os.getpid()}"

    # -- progress ------------------------------------------------------

    @property
    def done_shards(self) -> frozenset[int]:
        return frozenset(self._done)

    @property
    def total_shards(self) -> int:
        return len(self._plan)

    def is_done(self, shard_id: int) -> bool:
        return shard_id in self._done

    def publish_shard(self, shard_id: int, temp_path: PathLike) -> Path:
        """Atomically promote a finished temp file and journal the shard."""
        path = self.shard_path(shard_id)
        os.replace(temp_path, path)
        self._done.add(shard_id)
        self.flush()
        return path

    def write_shard(
        self,
        shard_id: int,
        arrays: Mapping[str, np.ndarray],
        meta: Optional[dict] = None,
    ) -> Path:
        """Checkpoint a shard generated in the parent (non-mmap transports)."""
        path = self.shard_path(shard_id)
        with atomic_output(path) as temp:
            write_arrays(temp, arrays, meta=meta)
        self._done.add(shard_id)
        self.flush()
        return path

    def flush(self) -> None:
        """Write the manifest atomically (tmp + ``os.replace``)."""
        manifest = {
            "format": _MANIFEST_MAGIC,
            "format_version": MANIFEST_VERSION,
            "cache_key": self.cache_key,
            "shard_plan": self._plan,
            "done": sorted(self._done),
        }
        encoded = json.dumps(manifest, sort_keys=True, indent=1)
        with atomic_output(self.root / MANIFEST_NAME) as temp:
            temp.write_text(encoded + "\n", "utf-8")
