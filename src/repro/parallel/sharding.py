"""Deterministic partitioning of the measurement day range into shards.

A shard is a contiguous ``[day_start, day_end)`` range of measurement
days.  Because every day draws from its own named substream (see
:mod:`repro.workload.trace`), shard boundaries are pure scheduling — any
plan over the same day range yields the same merged dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Shards dispatched per worker when ``shards`` is auto (0): small enough
#: to keep per-task overhead negligible, large enough that an unlucky
#: slow shard (weekend peak days) does not stall the pool tail.
AUTO_SHARDS_PER_WORKER = 4


@dataclass(frozen=True)
class ShardSpec:
    """One generation work unit: a contiguous day range."""

    shard_id: int
    day_start: int
    day_end: int  # exclusive

    def __post_init__(self) -> None:
        if self.day_start < 0 or self.day_end <= self.day_start:
            raise ValueError(f"invalid shard range [{self.day_start}, {self.day_end})")

    @property
    def n_days(self) -> int:
        return self.day_end - self.day_start

    def days(self) -> range:
        return range(self.day_start, self.day_end)


def plan_shards(days: int, shards: int = 0, workers: int = 1) -> list[ShardSpec]:
    """Partition ``range(days)`` into contiguous, near-equal shards.

    ``shards = 0`` picks automatically: one shard for a single worker,
    otherwise :data:`AUTO_SHARDS_PER_WORKER` per worker.  The shard count
    is always clamped to ``days`` (a shard spans at least one day).
    """
    if days <= 0:
        raise ValueError("days must be positive")
    if shards < 0:
        raise ValueError("shards must be >= 0 (0 = auto)")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if shards == 0:
        shards = 1 if workers == 1 else workers * AUTO_SHARDS_PER_WORKER
    shards = min(shards, days)

    base, extra = divmod(days, shards)
    specs: list[ShardSpec] = []
    start = 0
    for shard_id in range(shards):
        length = base + (1 if shard_id < extra else 0)
        specs.append(ShardSpec(shard_id=shard_id, day_start=start, day_end=start + length))
        start += length
    return specs
