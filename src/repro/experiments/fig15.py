"""Figure 15: Wowza-to-Fastly delay by datacenter distance."""

from __future__ import annotations

import numpy as np

from repro.analysis.delay_stats import colocation_gap_s, geolocation_cdfs
from repro.analysis.plots import ascii_cdf
from repro.analysis.report import render_cdf_summary
from repro.core.geolocation import geolocation_study
from repro.experiments.registry import ExperimentResult, experiment
from repro.geo.latency import DISTANCE_BUCKETS


@experiment(
    "fig15",
    "Figure 15: Wowza-to-Fastly delay by DC-pair distance",
    "Delay grows with pair distance, and co-located pairs are >0.25 s faster "
    "than even nearby (<500 km) pairs — the footprint of gateway-based chunk "
    "distribution.",
)
def run(
    seed: int = 15, broadcasts_per_pair: int = 10, chunks_per_broadcast: int = 40
) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    samples = geolocation_study(
        rng,
        broadcasts_per_pair=broadcasts_per_pair,
        chunks_per_broadcast=chunks_per_broadcast,
    )
    cdfs = geolocation_cdfs(samples)
    gap = colocation_gap_s(samples)

    ordered = {
        label: cdfs[label] for label, _, _ in DISTANCE_BUCKETS if label in cdfs
    }
    medians = {label: cdf.median for label, cdf in ordered.items()}
    data = {"samples": samples, "cdfs": ordered, "medians": medians, "colocation_gap_s": gap}
    text = "\n".join(
        [
            ascii_cdf(ordered, title="Figure 15 — CDF of Wowza2Fastly delay by distance (s)", x_max=2.0),
            render_cdf_summary(ordered, title="Figure 15 — Wowza2Fastly delay (s) by distance"),
            f"Co-located vs <500 km median gap: {gap:.2f}s (paper: >0.25s)",
        ]
    )
    return ExperimentResult(
        experiment_id="fig15",
        title="Figure 15: Wowza-to-Fastly delay by DC-pair distance",
        data=data,
        text=text,
    )
