"""Figure 3: CDF of broadcast length."""

from __future__ import annotations

from repro.analysis.broadcast_stats import broadcast_length_cdf
from repro.analysis.plots import ascii_cdf
from repro.analysis.report import render_cdf_summary
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED, meerkat_trace, periscope_trace
from repro.experiments.registry import ExperimentResult, experiment

TEN_MINUTES_S = 600.0


@experiment(
    "fig3",
    "Figure 3: CDF of broadcast length",
    "85% of broadcasts last under 10 minutes on both apps; Meerkat's "
    "distribution is more skewed (a few much longer streams).",
)
def run(scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED) -> ExperimentResult:
    periscope_cdf = broadcast_length_cdf(periscope_trace(scale, seed).dataset)
    meerkat_cdf = broadcast_length_cdf(meerkat_trace(scale, seed).dataset)

    data = {
        "periscope_under_10min": periscope_cdf.at(TEN_MINUTES_S),
        "meerkat_under_10min": meerkat_cdf.at(TEN_MINUTES_S),
        "periscope_p99_s": periscope_cdf.quantile(0.99),
        "meerkat_p99_s": meerkat_cdf.quantile(0.99),
        "periscope_cdf": periscope_cdf,
        "meerkat_cdf": meerkat_cdf,
    }
    text = "\n".join(
        [
            ascii_cdf(
                {"Periscope": periscope_cdf, "Meerkat": meerkat_cdf},
                title="Figure 3 — CDF of broadcast length (s, log x)",
                log_x=True,
            ),
            render_cdf_summary(
                {"Periscope (s)": periscope_cdf, "Meerkat (s)": meerkat_cdf},
                title="Figure 3 — broadcast length CDF",
            ),
            f"Periscope under 10 min: {data['periscope_under_10min']:.1%} (paper: ~85%)",
            f"Meerkat under 10 min: {data['meerkat_under_10min']:.1%} (paper: ~85%)",
        ]
    )
    return ExperimentResult(
        experiment_id="fig3",
        title="Figure 3: CDF of broadcast length",
        data=data,
        text=text,
    )
