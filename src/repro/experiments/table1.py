"""Table 1: basic statistics of the broadcast datasets."""

from __future__ import annotations

from repro.analysis.broadcast_stats import table1_rows
from repro.analysis.report import format_table
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED, meerkat_trace, periscope_trace
from repro.experiments.registry import ExperimentResult, experiment

#: Paper values (full scale), used to report the re-scaled comparison.
PAPER_TABLE1 = {
    "Periscope": {
        "broadcasts": 19_600_000,
        "broadcasters": 1_850_000,
        "total_views": 705_000_000,
        "unique_viewers": 7_650_000,
    },
    "Meerkat": {
        "broadcasts": 164_000,
        "broadcasters": 57_000,
        "total_views": 3_800_000,
        "unique_viewers": 183_000,
    },
}


@experiment(
    "table1",
    "Table 1: basic statistics of the broadcast datasets",
    "Periscope (3 months): 19.6M broadcasts / 1.85M broadcasters / 705M views / "
    "7.65M unique viewers.  Meerkat (1 month): 164K / 57K / 3.8M / 183K.",
)
def run(scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED) -> ExperimentResult:
    periscope = periscope_trace(scale, seed)
    meerkat = meerkat_trace(scale, seed)
    measured = table1_rows([periscope.dataset, meerkat.dataset])
    # Each trace carries its own generation scale (Meerkat is crawled at a
    # boosted relative scale for statistical resolution).
    app_scales = {
        periscope.app_name: periscope.config.scale,
        meerkat.app_name: meerkat.config.scale,
    }

    rows: dict[str, dict[str, object]] = {}
    for app, row in measured.items():
        app_scale = app_scales[app]
        rows[f"{app} (scale={app_scale:g})"] = row
        rows[f"{app} (rescaled x{1 / app_scale:g})"] = {
            key: int(value / app_scale) for key, value in row.items()
        }
        rows[f"{app} (paper)"] = PAPER_TABLE1[app]

    rescaled = {
        app: {key: int(value / app_scales[app]) for key, value in row.items()}
        for app, row in measured.items()
    }
    text = format_table(rows, title="Table 1 — dataset statistics", row_header="dataset")
    return ExperimentResult(
        experiment_id="table1",
        title="Table 1: basic statistics of the broadcast datasets",
        data={
            "measured": measured,
            "rescaled": rescaled,
            "paper": PAPER_TABLE1,
            "scale": scale,
            "app_scales": app_scales,
        },
        text=text,
    )
