"""Figure 4: CDF of total viewers per broadcast."""

from __future__ import annotations

from repro.analysis.broadcast_stats import hls_broadcast_fractions, viewers_per_broadcast_cdf
from repro.analysis.plots import ascii_cdf
from repro.analysis.report import render_cdf_summary
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED, meerkat_trace, periscope_trace
from repro.experiments.registry import ExperimentResult, experiment


@experiment(
    "fig4",
    "Figure 4: total # of viewers per broadcast",
    "Meerkat: ~60% of broadcasts get zero viewers.  Periscope: nearly all get "
    "at least one; the popular tail reaches ~100K viewers; 5.77% of broadcasts "
    "spill beyond the ~100-viewer RTMP tier.",
)
def run(scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED) -> ExperimentResult:
    periscope = periscope_trace(scale, seed).dataset
    meerkat = meerkat_trace(scale, seed).dataset
    periscope_cdf = viewers_per_broadcast_cdf(periscope)
    meerkat_cdf = viewers_per_broadcast_cdf(meerkat)
    spillover = hls_broadcast_fractions(periscope)

    data = {
        "periscope_zero_viewer_fraction": periscope_cdf.at(0.0),
        "meerkat_zero_viewer_fraction": meerkat_cdf.at(0.0),
        "periscope_max_viewers": periscope_cdf.values[-1],
        "periscope_some_hls_fraction": spillover["some_hls"],
        "periscope_cdf": periscope_cdf,
        "meerkat_cdf": meerkat_cdf,
    }
    text = "\n".join(
        [
            ascii_cdf(
                {"Periscope": periscope_cdf, "Meerkat": meerkat_cdf},
                title="Figure 4 — CDF of viewers per broadcast (log x)",
                log_x=True,
            ),
            render_cdf_summary(
                {"Periscope": periscope_cdf, "Meerkat": meerkat_cdf},
                title="Figure 4 — viewers per broadcast CDF",
            ),
            f"Meerkat zero-viewer broadcasts: {data['meerkat_zero_viewer_fraction']:.1%}"
            " (paper: ~60%)",
            f"Periscope zero-viewer broadcasts: {data['periscope_zero_viewer_fraction']:.1%}"
            " (paper: near 0%)",
            f"Periscope broadcasts beyond the RTMP tier (>100 viewers): "
            f"{data['periscope_some_hls_fraction']:.2%} (paper: 5.77%)",
        ]
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="Figure 4: total # of viewers per broadcast",
        data=data,
        text=text,
    )
