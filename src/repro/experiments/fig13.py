"""Figure 13: CDF of polling-delay variance (std) per broadcast."""

from __future__ import annotations

import numpy as np

from repro.analysis.delay_stats import polling_cdfs
from repro.analysis.plots import ascii_cdf
from repro.analysis.report import render_cdf_summary
from repro.core.polling import simulate_polling
from repro.experiments.context import DEFAULT_CAMPAIGN_BROADCASTS, DEFAULT_SEED, delay_traces
from repro.experiments.fig12 import POLL_INTERVALS_S
from repro.experiments.registry import ExperimentResult, experiment


@experiment(
    "fig13",
    "Figure 13: CDF of polling delay variance per broadcast",
    "Polling delay varies largely within each broadcast (viewers cannot "
    "predict chunk arrivals); non-resonant intervals cycle through the full "
    "[0, interval) range (std ~ interval/sqrt(12)) while the resonant 3 s "
    "interval drifts slowly.",
)
def run(
    n_broadcasts: int = DEFAULT_CAMPAIGN_BROADCASTS, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    traces = [t.chunk_availability for t in delay_traces(n_broadcasts, seed)]
    rng = np.random.default_rng(seed + 13)
    stats = simulate_polling(traces, POLL_INTERVALS_S, rng)
    cdfs = polling_cdfs(stats, quantity="std")

    data = {
        "stats": stats,
        "cdfs": cdfs,
        "median_std": {
            interval: float(np.median([s.std_delay_s for s in per_interval]))
            for interval, per_interval in stats.items()
        },
    }
    text = "\n".join(
        [
            ascii_cdf(cdfs, title="Figure 13 — CDF of polling delay std per broadcast (s)"),
            render_cdf_summary(cdfs, title="Figure 13 — polling delay std per broadcast (s)"),
            "Median per-broadcast std: "
            + ", ".join(
                f"{interval:g}s -> {value:.2f}s"
                for interval, value in sorted(data["median_std"].items())
            )
            + "  (uniform-cycling reference: 2s->0.58, 4s->1.15)",
        ]
    )
    return ExperimentResult(
        experiment_id="fig13",
        title="Figure 13: CDF of polling delay variance per broadcast",
        data=data,
        text=text,
    )
