"""Figure 10: the RTMP/HLS end-to-end delay breakdown diagram.

The original annotates the journey of one frame (RTMP) and one chunk
(HLS) with numbered timestamps ①–⑰.  This runner regenerates the diagram
quantitatively: it runs one controlled session and prints the actual
timeline of a mid-broadcast frame and chunk, with the gap each hop
contributes.
"""

from __future__ import annotations

from repro.core.delay_breakdown import ControlledExperiment
from repro.experiments.registry import ExperimentResult, experiment

#: Human labels for the numbered timestamps.
LABELS = {
    "1_capture": "① captured on the broadcaster's phone",
    "2_wowza_arrival": "② arrives at Wowza (upload)",
    "3_viewer_arrival": "③ arrives at the RTMP viewer (last mile)",
    "4_played": "④ played (client buffering)",
    "5_capture": "⑤ first frame captured",
    "6_wowza_arrival": "⑥ first frame at Wowza (upload)",
    "7_chunk_ready": "⑦ chunk assembled at Wowza (chunking)",
    "11_fastly_available": "⑪ chunk cached at Fastly (Wowza2Fastly)",
    "14_viewer_poll": "⑭ viewer's poll finds it (polling)",
    "15_viewer_arrival": "⑮ chunk at the viewer (last mile)",
    "17_played": "⑰ played (client buffering)",
}


def _render_path(name: str, stamps: dict[str, float]) -> list[str]:
    lines = [f"{name} path:"]
    ordered = sorted(stamps.items(), key=lambda item: item[1])
    origin = ordered[0][1]
    previous = origin
    for key, value in ordered:
        gap = value - previous
        lines.append(
            f"  t={value - origin:7.3f}s  (+{gap:6.3f}s)  {LABELS[key]}"
        )
        previous = value
    total = ordered[-1][1] - origin
    lines.append(f"  end-to-end: {total:.2f}s")
    return lines


@experiment(
    "fig10",
    "Figure 10: RTMP/HLS end-to-end delay breakdown diagram",
    "A frame travels capture → Wowza → RTMP viewer → play in ~1.4 s; the same "
    "content as an HLS chunk pays chunking at Wowza, a gateway hop to Fastly, "
    "the viewer's polling interval, and ~9 s of client pre-buffer.",
)
def run(seed: int = 7, duration_s: float = 90.0) -> ExperimentResult:
    timeline = ControlledExperiment(seed=seed, duration_s=duration_s).run_timeline()
    lines = []
    lines.extend(_render_path("RTMP (per frame)", timeline["rtmp"]))
    lines.append("")
    lines.extend(_render_path("HLS (per chunk)", timeline["hls"]))
    rtmp_total = timeline["rtmp"]["4_played"] - timeline["rtmp"]["1_capture"]
    hls_total = timeline["hls"]["17_played"] - timeline["hls"]["5_capture"]
    lines.append("")
    lines.append(
        f"The same moment reaches an RTMP viewer {rtmp_total:.1f}s and an HLS "
        f"viewer {hls_total:.1f}s after it happened."
    )
    return ExperimentResult(
        experiment_id="fig10",
        title="Figure 10: RTMP/HLS end-to-end delay breakdown diagram",
        data={
            "timeline": timeline,
            "rtmp_total_s": rtmp_total,
            "hls_total_s": hls_total,
        },
        text="\n".join(lines),
    )
