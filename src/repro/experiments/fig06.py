"""Figure 6: distribution of broadcast views and creations over users."""

from __future__ import annotations

from repro.analysis.broadcast_stats import (
    creations_per_user_cdf,
    viewer_activity_skew,
    views_per_user_cdf,
)
from repro.analysis.plots import ascii_cdf
from repro.analysis.report import render_cdf_summary
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED, meerkat_trace, periscope_trace
from repro.experiments.registry import ExperimentResult, experiment


@experiment(
    "fig6",
    "Figure 6: distribution of broadcast views and creation over users",
    "User activity is highly skewed on both apps; the top 15% of Periscope "
    "viewers watch ~10x more broadcasts than the median viewer.",
)
def run(scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED) -> ExperimentResult:
    periscope = periscope_trace(scale, seed).dataset
    meerkat = meerkat_trace(scale, seed).dataset

    p_views = views_per_user_cdf(periscope)
    p_creates = creations_per_user_cdf(periscope)
    m_views = views_per_user_cdf(meerkat)
    m_creates = creations_per_user_cdf(meerkat)
    skew = viewer_activity_skew(periscope, top_fraction=0.15)

    data = {
        "periscope_top15_vs_median": skew,
        "periscope_views_cdf": p_views,
        "periscope_creates_cdf": p_creates,
        "meerkat_views_cdf": m_views,
        "meerkat_creates_cdf": m_creates,
    }
    text = "\n".join(
        [
            ascii_cdf(
                {"views/user": p_views, "creates/user": p_creates},
                title="Figure 6 — CDF of per-user activity (Periscope, log x)",
                log_x=True,
            ),
            render_cdf_summary(
                {
                    "Periscope views/user": p_views,
                    "Periscope creates/user": p_creates,
                    "Meerkat views/user": m_views,
                    "Meerkat creates/user": m_creates,
                },
                title="Figure 6 — per-user activity CDF",
            ),
            f"Top-15% Periscope viewers watch {skew:.1f}x the median viewer"
            " (paper: ~10x)",
        ]
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Figure 6: distribution of broadcast views and creation over users",
        data=data,
        text=text,
    )
