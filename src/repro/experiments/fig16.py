"""Figure 16: RTMP pre-buffer size vs stalling and buffering delay."""

from __future__ import annotations

import numpy as np

from repro.analysis.cdf import Cdf
from repro.analysis.plots import ascii_cdf
from repro.analysis.report import render_cdf_summary
from repro.core.pipeline import rtmp_viewer_traces
from repro.core.playback import sweep_prebuffer
from repro.experiments.context import DEFAULT_CAMPAIGN_BROADCASTS, DEFAULT_SEED, delay_traces
from repro.experiments.registry import ExperimentResult, experiment

RTMP_PREBUFFERS_S = [0.0, 0.5, 1.0]
FRAME_INTERVAL_S = 0.040


@experiment(
    "fig16",
    "Figure 16: RTMP pre-buffer impact on stalling and buffering delay",
    "RTMP playback is already smooth, so bigger pre-buffers barely improve "
    "stalling while (slightly) raising delay; ~10% of broadcasts see >5 s "
    "buffering delay caused by bursty frame uploads.",
)
def run(
    n_broadcasts: int = DEFAULT_CAMPAIGN_BROADCASTS, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    traces = rtmp_viewer_traces(list(delay_traces(n_broadcasts, seed)))
    sweep = sweep_prebuffer(traces, RTMP_PREBUFFERS_S, FRAME_INTERVAL_S)

    stall_cdfs = {f"P={p:g}s stall": Cdf(v["stall_ratio"]) for p, v in sweep.items()}
    delay_cdfs = {f"P={p:g}s delay": Cdf(v["buffering_delay"]) for p, v in sweep.items()}

    long_delay_fraction = float(
        np.mean(sweep[1.0]["buffering_delay"] > 5.0)
    )
    data = {
        "sweep": sweep,
        "stall_cdfs": stall_cdfs,
        "delay_cdfs": delay_cdfs,
        "long_delay_fraction_p1": long_delay_fraction,
        "median_stall": {p: float(np.median(v["stall_ratio"])) for p, v in sweep.items()},
    }
    text = "\n".join(
        [
            ascii_cdf(stall_cdfs, title="Figure 16(a) — CDF of RTMP stalling ratio", x_max=0.1),
            ascii_cdf(delay_cdfs, title="Figure 16(b) — CDF of RTMP buffering delay (s)", x_max=10.0),
            render_cdf_summary(stall_cdfs, title="Figure 16(a) — RTMP stalling ratio"),
            render_cdf_summary(delay_cdfs, title="Figure 16(b) — RTMP buffering delay (s)"),
            f"Broadcasts with >5s buffering delay at P=1s: {long_delay_fraction:.1%}"
            " (paper: ~10%, from bursty uploads)",
        ]
    )
    return ExperimentResult(
        experiment_id="fig16",
        title="Figure 16: RTMP pre-buffer impact",
        data=data,
        text=text,
    )
