"""Figure 9: Wowza and Fastly server locations.

Figure 8 (the CDN architecture diagram) is encoded in the package
structure itself; Figure 9 is regenerated here from the datacenter
catalogs, together with the §4.1 co-location facts the paper derived from
its PlanetLab experiment.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.registry import ExperimentResult, experiment
from repro.geo.datacenters import (
    FASTLY_DATACENTERS,
    WOWZA_DATACENTERS,
    colocated_fastly,
    colocated_pairs,
)


@experiment(
    "fig9",
    "Figure 9: Wowza and Fastly server locations",
    "8 Wowza (EC2) DCs and 23 Fastly POPs; 6/8 Wowza DCs co-located with a "
    "Fastly POP in the same city, 7/8 on the same continent; the exception is "
    "South America (no Fastly POP).",
)
def run() -> ExperimentResult:
    pairs = colocated_pairs()
    same_city = {wowza.name for wowza, _ in pairs}
    same_continent = {
        wowza.name
        for wowza in WOWZA_DATACENTERS
        if any(f.continent == wowza.continent for f in FASTLY_DATACENTERS)
    }
    rows = {}
    for wowza in WOWZA_DATACENTERS:
        gateway = colocated_fastly(wowza)
        rows[wowza.name] = {
            "city": wowza.city,
            "continent": wowza.continent,
            "colocated_fastly": gateway.name if wowza.name in same_city else "-",
            "gateway_pop": gateway.name,
        }
    data = {
        "wowza_count": len(WOWZA_DATACENTERS),
        "fastly_count": len(FASTLY_DATACENTERS),
        "colocated_count": len(same_city),
        "same_continent_count": len(same_continent),
        "fastly_cities": sorted(dc.city for dc in FASTLY_DATACENTERS),
    }
    text = "\n".join(
        [
            format_table(rows, title="Figure 9 — Wowza ingest DCs", row_header="wowza"),
            f"Fastly POPs ({len(FASTLY_DATACENTERS)}): "
            + ", ".join(data["fastly_cities"]),
            f"Co-located Wowza/Fastly pairs: {data['colocated_count']}/8 (paper: 6/8)",
            f"Same-continent Wowza DCs: {data['same_continent_count']}/8 (paper: 7/8)",
        ]
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="Figure 9: Wowza and Fastly server locations",
        data=data,
        text=text,
    )
