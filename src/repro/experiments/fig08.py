"""Figure 8: the Periscope CDN infrastructure (architecture diagram).

The original is a block diagram of the three channels — control (HTTPS to
the Periscope server), video (RTMP to Wowza / HLS from Fastly) and
messages (HTTPS to PubNub).  This runner renders the diagram and verifies
the architectural facts against the implementation: which protocol and
component serves each channel, and the latency class of each path.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import ExperimentResult, experiment
from repro.geo.datacenters import FASTLY_DATACENTERS, WOWZA_DATACENTERS
from repro.platform.apps import PERISCOPE_PROFILE
from repro.protocols.messages import MessageChannel

ARCHITECTURE = r"""
      (a) Control channel             (b) Video channel                (c) Message channel

   Broadcaster    Viewers        Broadcaster                          Broadcaster   Viewers
        \            /                |  RTMP (push, 40ms frames)          \           /
       HTTPS      HTTPS               v                                   HTTPS     HTTPS
          \        /              [ Wowza x8 ]---gateway POP---+             \       /
       [ Periscope server ]        |        \                  |            [ PubNub ]
        tokens, global list,       | RTMP    \ chunks (~3s)    v          comments + hearts,
        join / comment policy      v          \            [ Fastly x23 ]  merged client-side
                               first ~100      \               |  HLS (poll 2-2.8s)
                               viewers          +----------->  v
                                                           later viewers
"""


@experiment(
    "fig8",
    "Figure 8: Periscope CDN infrastructure",
    "Three independent channels: HTTPS control via the Periscope server, video "
    "via Wowza (RTMP push, first ~100 viewers) and Fastly (HLS poll, the rest), "
    "messages via PubNub over HTTPS — merged with video client-side by timestamp.",
)
def run() -> ExperimentResult:
    profile = PERISCOPE_PROFILE
    channel = MessageChannel(broadcast_id=0)
    rng = np.random.default_rng(8)
    message_latency = float(
        np.median([channel.delivery_latency(rng) for _ in range(2000)])
    )
    facts = {
        "video ingest protocol": profile.ingest_protocol,
        "video ingest servers": f"{len(WOWZA_DATACENTERS)} Wowza DCs",
        "video edge servers": f"{len(FASTLY_DATACENTERS)} Fastly POPs",
        "push tier size": f"first ~{profile.rtmp_viewer_threshold} viewers",
        "chunk duration": f"{profile.chunk_duration_s:g}s",
        "client poll interval": (
            f"{profile.polling_interval_range_s[0]:g}-"
            f"{profile.polling_interval_range_s[1]:g}s"
        ),
        "comment policy": f"first {profile.comment_cap} viewers only",
        "message channel median latency": f"{message_latency:.2f}s",
        "video channel encrypted": str(profile.encrypted_video),
    }
    lines = [ARCHITECTURE.strip("\n"), ""]
    width = max(len(k) for k in facts)
    for key, value in facts.items():
        lines.append(f"{key:<{width}}  {value}")
    return ExperimentResult(
        experiment_id="fig8",
        title="Figure 8: Periscope CDN infrastructure",
        data={"facts": facts, "message_latency_s": message_latency},
        text="\n".join(lines),
    )
