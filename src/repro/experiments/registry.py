"""Experiment registry.

Maps experiment IDs to runner callables.  Runners are registered by the
modules in this package via the :func:`experiment` decorator; importing
:mod:`repro.experiments.registry` pulls them all in.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable

_RUNNERS: dict[str, "RegisteredExperiment"] = {}

#: Modules that register experiments on import.
_EXPERIMENT_MODULES = (
    "repro.experiments.table1",
    "repro.experiments.table2",
    "repro.experiments.fig01",
    "repro.experiments.fig02",
    "repro.experiments.fig03",
    "repro.experiments.fig04",
    "repro.experiments.fig05",
    "repro.experiments.fig06",
    "repro.experiments.fig07",
    "repro.experiments.fig08",
    "repro.experiments.fig09",
    "repro.experiments.fig10",
    "repro.experiments.fig11",
    "repro.experiments.fig12",
    "repro.experiments.fig13",
    "repro.experiments.fig14",
    "repro.experiments.fig15",
    "repro.experiments.fig16",
    "repro.experiments.fig17",
    "repro.experiments.fig18",
    "repro.experiments.faultsweep",
    "repro.experiments.serving",
)


@dataclass(frozen=True)
class ExperimentResult:
    """The output of one experiment run."""

    experiment_id: str
    title: str
    data: dict[str, Any]
    text: str
    paper_expectation: str = ""

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True)
class RegisteredExperiment:
    experiment_id: str
    title: str
    runner: Callable[..., ExperimentResult]
    paper_expectation: str = ""


def experiment(
    experiment_id: str, title: str, paper_expectation: str = ""
) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Decorator registering a runner under ``experiment_id``."""

    def decorate(runner: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if experiment_id in _RUNNERS:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _RUNNERS[experiment_id] = RegisteredExperiment(
            experiment_id=experiment_id,
            title=title,
            runner=runner,
            paper_expectation=paper_expectation,
        )
        return runner

    return decorate


def _ensure_loaded() -> None:
    for module in _EXPERIMENT_MODULES:
        importlib.import_module(module)


def list_experiments() -> list[str]:
    """All registered experiment IDs, in paper order."""
    _ensure_loaded()
    return list(_RUNNERS)


def get_experiment(experiment_id: str) -> RegisteredExperiment:
    """Look up one registered experiment by ID (raises KeyError if unknown)."""
    _ensure_loaded()
    if experiment_id not in _RUNNERS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(_RUNNERS)}"
        )
    return _RUNNERS[experiment_id]


def run_experiment(experiment_id: str, **kwargs: Any) -> ExperimentResult:
    """Run one experiment by ID."""
    return get_experiment(experiment_id).runner(**kwargs)
