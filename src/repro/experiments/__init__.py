"""Experiment runners: one per table/figure of the paper.

Each runner regenerates the rows/series its table or figure reports, on
synthetic traces at a configurable scale, and returns an
:class:`~repro.experiments.registry.ExperimentResult` carrying both the
raw data and a rendered text report.  The registry maps experiment IDs
("table1", "fig12", ...) to runners::

    from repro import run_experiment
    result = run_experiment("fig11")
    print(result.text)
"""

from repro.experiments.registry import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
