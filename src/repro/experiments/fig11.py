"""Figure 11: HLS/RTMP end-to-end delay breakdown."""

from __future__ import annotations

from repro.analysis.delay_stats import breakdown_rows
from repro.analysis.plots import ascii_stacked_bars
from repro.analysis.report import format_table
from repro.core.delay_breakdown import ControlledExperiment
from repro.experiments.registry import ExperimentResult, experiment

#: The paper's measured component means (seconds).
PAPER_BREAKDOWN = {
    "rtmp (paper)": {"upload": 0.2, "last_mile": 0.15, "buffering": 1.05, "total": 1.4},
    "hls (paper)": {
        "upload": 0.2,
        "chunking": 3.0,
        "wowza2fastly": 0.3,
        "polling": 1.2,
        "last_mile": 0.15,
        "buffering": 6.9,
        "total": 11.7,
    },
}


@experiment(
    "fig11",
    "Figure 11: HLS/RTMP end-to-end delay breakdown",
    "RTMP total ~1.4 s; HLS total ~11.7 s dominated by client buffering "
    "(6.9 s), chunking (3 s) and polling (1.2 s); Wowza2Fastly ~0.3 s.",
)
def run(repetitions: int = 10, seed: int = 7, duration_s: float = 120.0) -> ExperimentResult:
    experiment_run = ControlledExperiment(seed=seed, duration_s=duration_s)
    rtmp, hls = experiment_run.run(repetitions=repetitions)

    rows: dict[str, dict[str, float]] = {}
    measured = breakdown_rows([rtmp, hls])
    rows["rtmp (measured)"] = measured["rtmp"]
    rows["rtmp (paper)"] = PAPER_BREAKDOWN["rtmp (paper)"]
    rows["hls (measured)"] = measured["hls"]
    rows["hls (paper)"] = PAPER_BREAKDOWN["hls (paper)"]

    data = {
        "rtmp": rtmp,
        "hls": hls,
        "rtmp_total_s": rtmp.total_s,
        "hls_total_s": hls.total_s,
        "hls_rtmp_ratio": hls.total_s / rtmp.total_s,
    }
    text = "\n".join(
        [
            ascii_stacked_bars(
                {"rtmp": rtmp.components, "hls": hls.components},
                title="Figure 11 — end-to-end delay breakdown",
            ),
            format_table(
                rows,
                title="Figure 11 — end-to-end delay breakdown (seconds)",
                row_header="protocol",
            ),
            f"HLS/RTMP total delay ratio: {data['hls_rtmp_ratio']:.1f}x (paper: ~8.4x)",
        ]
    )
    return ExperimentResult(
        experiment_id="fig11",
        title="Figure 11: HLS/RTMP end-to-end delay breakdown",
        data=data,
        text=text,
    )
