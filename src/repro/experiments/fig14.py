"""Figure 14: server CPU usage for RTMP vs HLS by audience size."""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.cdn.server_load import ServerLoadModel
from repro.core.scalability import scalability_sweep
from repro.experiments.registry import ExperimentResult, experiment

VIEWER_COUNTS = [100, 200, 300, 400, 500]


@experiment(
    "fig14",
    "Figure 14: CPU usage of server using RTMP and HLS",
    "RTMP needs much more CPU than HLS at every audience size, and the gap "
    "grows with viewers — RTMP does per-frame work (25 ops/s/viewer) vs HLS's "
    "per-poll work (~0.4 ops/s/viewer).",
)
def run(viewer_counts: tuple[int, ...] = tuple(VIEWER_COUNTS)) -> ExperimentResult:
    model = ServerLoadModel()
    curves = scalability_sweep(list(viewer_counts), model)

    rows = {}
    for rtmp_point, hls_point in zip(curves["rtmp"], curves["hls"]):
        rows[str(rtmp_point.viewers)] = {
            "rtmp_cpu_%": rtmp_point.cpu_percent,
            "hls_cpu_%": hls_point.cpu_percent,
            "gap_%": rtmp_point.cpu_percent - hls_point.cpu_percent,
            "rtmp_mem_mb": rtmp_point.memory_mb,
            "hls_mem_mb": hls_point.memory_mb,
        }
    data = {
        "curves": curves,
        "max_rtmp_viewers_at_95pct": model.max_rtmp_viewers(),
        "max_hls_viewers_at_95pct": model.max_hls_viewers(),
    }
    text = "\n".join(
        [
            format_table(rows, title="Figure 14 — server load vs viewers", row_header="viewers"),
            f"Viewers sustainable at 95% CPU: RTMP {data['max_rtmp_viewers_at_95pct']}"
            f" vs HLS {data['max_hls_viewers_at_95pct']} — the wall behind "
            "Periscope's ~100-viewer RTMP threshold.",
        ]
    )
    return ExperimentResult(
        experiment_id="fig14",
        title="Figure 14: CPU usage of server using RTMP and HLS",
        data=data,
        text=text,
    )
