"""Figure 5: CDF of comments and hearts per broadcast."""

from __future__ import annotations

from repro.analysis.broadcast_stats import comments_cdf, hearts_cdf
from repro.analysis.plots import ascii_cdf
from repro.analysis.report import render_cdf_summary
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED, meerkat_trace, periscope_trace
from repro.experiments.registry import ExperimentResult, experiment


@experiment(
    "fig5",
    "Figure 5: total # of comments (hearts) per broadcast",
    "~10% of Periscope broadcasts get >100 comments and >1000 hearts; the "
    "100-commenter cap flattens the comment tail while hearts run to 1.35M.",
)
def run(scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED) -> ExperimentResult:
    periscope = periscope_trace(scale, seed).dataset
    meerkat = meerkat_trace(scale, seed).dataset

    p_hearts = hearts_cdf(periscope)
    p_comments = comments_cdf(periscope)
    m_hearts = hearts_cdf(meerkat)
    m_comments = comments_cdf(meerkat)

    data = {
        "periscope_over_1000_hearts": p_hearts.fraction_above(1000.0),
        "periscope_over_100_comments": p_comments.fraction_above(100.0),
        "periscope_max_hearts": p_hearts.values[-1],
        "hearts_comment_tail_ratio": p_hearts.quantile(0.99) / max(p_comments.quantile(0.99), 1.0),
        "periscope_hearts_cdf": p_hearts,
        "periscope_comments_cdf": p_comments,
        "meerkat_hearts_cdf": m_hearts,
        "meerkat_comments_cdf": m_comments,
    }
    text = "\n".join(
        [
            ascii_cdf(
                {"P hearts": p_hearts, "P comments": p_comments},
                title="Figure 5 — CDF of engagement per broadcast (log x)",
                log_x=True,
            ),
            render_cdf_summary(
                {
                    "Periscope hearts": p_hearts,
                    "Periscope comments": p_comments,
                    "Meerkat hearts": m_hearts,
                    "Meerkat comments": m_comments,
                },
                title="Figure 5 — engagement per broadcast CDF",
            ),
            f"Periscope broadcasts with >1000 hearts: "
            f"{data['periscope_over_1000_hearts']:.1%} (paper: ~10%)",
            f"Periscope broadcasts with >100 comments: "
            f"{data['periscope_over_100_comments']:.1%} (paper: ~10%)",
            "Comment tail is capped by the 100-commenter limit; hearts are not "
            f"(p99 hearts/comments ratio: {data['hearts_comment_tail_ratio']:.0f}x).",
        ]
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Figure 5: total # of comments (hearts) per broadcast",
        data=data,
        text=text,
    )
