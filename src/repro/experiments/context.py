"""Shared, cached experiment inputs.

Table 1 and Figures 1–7 all consume the same generated workload traces;
Figures 12, 13, 16 and 17 all consume the same delay-crawl traces.
Generating them once per process keeps the benchmark suite honest about
what each experiment itself costs.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Optional

from repro.core.pipeline import BroadcastTrace, DelayMeasurementCampaign
from repro.parallel import generate_trace
from repro.workload.trace import TraceConfig, WorkloadTrace

#: Default scale for trace experiments: 1/2000 of Periscope's real volume
#: (~10K broadcasts over 98 days) keeps every figure runnable in seconds.
DEFAULT_SCALE = 0.0005
DEFAULT_SEED = 2016

#: Default delay-crawl campaign size (the paper crawled 16,013 broadcasts;
#: shapes stabilize well before 100 here).
DEFAULT_CAMPAIGN_BROADCASTS = 60


def _trace_workers() -> int:
    """Worker processes for trace generation (env ``REPRO_TRACE_WORKERS``).

    Defaults to 1: experiment runs at the default scale are dominated by
    analysis, and tests stay hermetic.  Larger-scale figure runs set this
    (or use ``repro trace``) to fan generation out.
    """
    return max(1, int(os.environ.get("REPRO_TRACE_WORKERS", "1")))


def _trace_cache_dir() -> Optional[str]:
    """On-disk dataset cache directory (env ``REPRO_TRACE_CACHE``), if any."""
    return os.environ.get("REPRO_TRACE_CACHE") or None


@lru_cache(maxsize=4)
def periscope_trace(
    scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED
) -> WorkloadTrace:
    config = TraceConfig.periscope(scale=scale, seed=seed, workers=_trace_workers())
    return generate_trace(config, cache_dir=_trace_cache_dir())


#: Meerkat's absolute volume is ~120x smaller than Periscope's; crawling it
#: at the same relative scale leaves too few broadcasts for stable daily
#: statistics, so its trace is generated at a boosted relative scale and
#: every per-app comparison rescales by the trace's own config.scale.
MEERKAT_SCALE_BOOST = 20.0


@lru_cache(maxsize=4)
def meerkat_trace(scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED) -> WorkloadTrace:
    boosted = min(1.0, scale * MEERKAT_SCALE_BOOST)
    config = TraceConfig.meerkat(scale=boosted, seed=seed, workers=_trace_workers())
    return generate_trace(config, cache_dir=_trace_cache_dir())


@lru_cache(maxsize=4)
def delay_traces(
    n_broadcasts: int = DEFAULT_CAMPAIGN_BROADCASTS, seed: int = DEFAULT_SEED
) -> tuple[BroadcastTrace, ...]:
    campaign = DelayMeasurementCampaign(n_broadcasts=n_broadcasts, seed=seed)
    return tuple(campaign.run())


def clear_caches() -> None:
    """Drop all cached inputs (used by tests that vary parameters)."""
    periscope_trace.cache_clear()
    meerkat_trace.cache_clear()
    delay_traces.cache_clear()
