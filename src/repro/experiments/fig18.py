"""Figure 18: the stream-tampering proof of concept (and the defense)."""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.registry import ExperimentResult, experiment
from repro.security.experiment import run_attack_matrix


@experiment(
    "fig18",
    "Figure 18: broadcaster/viewer views before and after the attack",
    "After the ARP-spoofing MITM starts, the viewer sees black frames while "
    "the broadcaster's preview shows the original video; the §7.2 signature "
    "defense detects and drops every tampered frame.",
)
def run() -> ExperimentResult:
    matrix = run_attack_matrix()
    rows = {}
    for scenario, result in matrix.items():
        rows[scenario] = {
            "frames_sent": result.frames_sent,
            "tampered": result.tampered_count,
            "viewer_black": result.viewer_black_frames,
            "broadcaster_black": result.broadcaster_black_frames,
            "detected": result.tampered_detected,
            "attack_succeeded": result.attack_succeeded,
            "token_leaked": bool(result.tokens_leaked),
        }
    data = {"matrix": matrix, "rows": rows}
    text = "\n".join(
        [
            format_table(
                rows,
                title="Figure 18 — tampering PoC outcomes",
                row_header="scenario",
            ),
            "attack: viewer sees black frames, broadcaster preview unchanged, "
            "broadcast token captured in plaintext (paper's §7.1 result).",
            "attack_with_defense: every tampered frame rejected by signature "
            "verification (paper's §7.2 countermeasure).",
            "attack_with_rtmps: full encryption (Facebook Live's choice) makes "
            "the stream unparseable — no token leak, no tampering — at ~2-3x "
            "the client CPU cost (see the defense-overhead ablation).",
        ]
    )
    return ExperimentResult(
        experiment_id="fig18",
        title="Figure 18: stream-tampering proof of concept",
        data=data,
        text=text,
    )
