"""Figure 2: number of daily active users (viewers and broadcasters)."""

from __future__ import annotations

import numpy as np

from repro.analysis.plots import ascii_series
from repro.analysis.report import render_series
from repro.analysis.timeseries import DailySeries
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED, meerkat_trace, periscope_trace
from repro.experiments.registry import ExperimentResult, experiment


@experiment(
    "fig2",
    "Figure 2: # of daily active users",
    "Periscope viewers grow 200K to >1M with ~10:1 viewer:broadcaster ratio; "
    "Meerkat viewers hover ~20K while its broadcasters decline.",
)
def run(scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED) -> ExperimentResult:
    periscope = periscope_trace(scale, seed)
    meerkat = meerkat_trace(scale, seed)

    p_viewers, p_broadcasters = periscope.dataset.daily_active_users()
    m_viewers, m_broadcasters = meerkat.dataset.daily_active_users()

    viewer_series = DailySeries(p_viewers, "Periscope viewers")
    broadcaster_series = DailySeries(p_broadcasters, "Periscope broadcasters")
    ratio = viewer_series.ratio_to(broadcaster_series)

    data = {
        "periscope_viewers": p_viewers,
        "periscope_broadcasters": p_broadcasters,
        "meerkat_viewers": m_viewers,
        "meerkat_broadcasters": m_broadcasters,
        "periscope_viewer_growth": viewer_series.growth_factor(),
        "median_viewer_broadcaster_ratio": float(np.nanmedian(ratio)),
        "meerkat_broadcaster_decline": DailySeries(m_broadcasters).growth_factor(),
    }
    text = "\n".join(
        [
            ascii_series(
                {
                    "p_viewers": p_viewers,
                    "p_broadcasters": p_broadcasters,
                    "m_viewers": m_viewers,
                },
                title="Figure 2 — daily active users (normalized)",
                normalize=True,
            ),
            render_series(
                {
                    "p_viewers": p_viewers,
                    "p_broadcstr": p_broadcasters,
                    "m_viewers": m_viewers,
                    "m_broadcstr": m_broadcasters,
                },
                title="Figure 2 — daily active users (sampled days)",
            ),
            f"Periscope viewer growth: {data['periscope_viewer_growth']:.2f}x (paper: ~5x)",
            "Periscope viewer:broadcaster ratio (median): "
            f"{data['median_viewer_broadcaster_ratio']:.1f} (paper: ~10:1; note mobile-"
            "registered viewers only appear in our daily counts)",
            f"Meerkat broadcaster trend: {data['meerkat_broadcaster_decline']:.2f}x (paper: declining)",
        ]
    )
    return ExperimentResult(
        experiment_id="fig2",
        title="Figure 2: # of daily active users",
        data=data,
        text=text,
    )
