"""Fault sweep: graceful degradation of the resilient system vs the naive one.

Not a paper figure — a robustness experiment over the reproduced system:
sweep fault intensity and run the chaos scenario twice per point (naive and
resilient postures, identical seeds and fault schedules), then compare
crawler coverage and end-to-end chunk delay.  The claim under test: the
resilience layer (:mod:`repro.faults`) strictly dominates the naive system
on coverage, delivery ratio, and censored p99 delay at every intensity,
while a zero-intensity run reproduces the faultless baseline exactly.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.registry import ExperimentResult, experiment
from repro.faults.scenario import run_chaos_pair

INTENSITIES = (0.0, 0.5, 1.0, 1.5)


@experiment(
    "faultsweep",
    "Fault sweep: resilient vs naive degradation under injected chaos",
    "Coverage and delivery degrade gracefully with fault intensity for the "
    "resilient system and sharply for the naive one; the resilient posture "
    "strictly dominates at every non-zero intensity, and at intensity 0 the "
    "two are byte-identical.",
)
def run(
    seed: int = 7, intensities: tuple[float, ...] = INTENSITIES
) -> ExperimentResult:
    rows = {}
    points = []
    dominated_everywhere = True
    baseline_identical = True
    for intensity in intensities:
        naive, resilient = run_chaos_pair(seed=seed, fault_intensity=intensity)
        points.append({"naive": naive, "resilient": resilient})
        rows[f"{intensity:g}"] = {
            "cov_naive": naive.coverage,
            "cov_resil": resilient.coverage,
            "deliv_naive": naive.delivery_ratio,
            "deliv_resil": resilient.delivery_ratio,
            "p99_naive_s": naive.p99_e2e_delay_s,
            "p99_resil_s": resilient.p99_e2e_delay_s,
            "failovers": resilient.viewer_failovers,
            "retries": resilient.viewer_retries + resilient.crawler_retries,
        }
        if intensity == 0.0:
            baseline_identical = (
                naive.coverage == resilient.coverage
                and naive.chunks_delivered == resilient.chunks_delivered
                and naive.p99_e2e_delay_s == resilient.p99_e2e_delay_s
            )
        elif not resilient.dominates(naive):
            dominated_everywhere = False

    data = {
        "points": points,
        "dominated_everywhere": dominated_everywhere,
        "baseline_identical": baseline_identical,
    }
    verdict = []
    verdict.append(
        "Resilient strictly dominates naive (coverage, delivery, p99) at "
        + ("every" if dominated_everywhere else "NOT every")
        + " non-zero intensity."
    )
    verdict.append(
        "Zero-intensity run "
        + ("matches" if baseline_identical else "DOES NOT match")
        + " the faultless baseline exactly."
    )
    text = "\n".join(
        [
            format_table(
                rows,
                title="Fault sweep — naive vs resilient (censored p99 delay)",
                row_header="intensity",
            ),
            *verdict,
        ]
    )
    return ExperimentResult(
        experiment_id="faultsweep",
        title="Fault sweep: resilient vs naive degradation under injected chaos",
        data=data,
        text=text,
    )
