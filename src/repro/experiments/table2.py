"""Table 2: structure of the Periscope follow graph vs Facebook/Twitter."""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.social_stats import table2_rows
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED, periscope_trace
from repro.experiments.registry import ExperimentResult, experiment


@experiment(
    "table2",
    "Table 2: basic statistics of the social graphs",
    "Periscope: avg degree 38.6, clustering 0.130, avg path 3.74, assortativity "
    "-0.057 — Twitter-like (negative assortativity), not Facebook-like.",
)
def run(scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED) -> ExperimentResult:
    trace = periscope_trace(scale, seed)
    if trace.graph is None:
        raise RuntimeError("Periscope trace was generated without a graph")
    rng = np.random.default_rng(seed)
    rows = table2_rows(trace.graph, rng)
    text = format_table(rows, title="Table 2 — social graph statistics", row_header="network")
    return ExperimentResult(
        experiment_id="table2",
        title="Table 2: basic statistics of the social graphs",
        data={"rows": rows, "scale": scale},
        text=text,
    )
