"""Figure 1: number of daily broadcasts over the measurement window."""

from __future__ import annotations

import numpy as np

from repro.analysis.plots import ascii_series
from repro.analysis.report import render_series
from repro.analysis.timeseries import DailySeries
from repro.crawler.dataset import DowntimeWindow
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED, meerkat_trace, periscope_trace
from repro.experiments.registry import ExperimentResult, experiment

#: The paper's crawler outage: Aug 7–9, 2015 = days 84–86, losing ~4.5% of
#: that period's broadcasts.
CRAWLER_DOWNTIME = DowntimeWindow(start_day=84.0, end_day=86.0, loss_fraction=0.9)


@experiment(
    "fig1",
    "Figure 1: # of daily broadcasts",
    "Periscope grows >300% in 3 months with weekend peaks / Monday troughs and a "
    "jump at the Android launch (day 11); Meerkat nearly halves in a month; a "
    "crawler outage dents days 84-86.",
)
def run(scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED) -> ExperimentResult:
    periscope = periscope_trace(scale, seed)
    meerkat = meerkat_trace(scale, seed)

    observed = periscope.dataset.apply_downtime(
        CRAWLER_DOWNTIME, np.random.default_rng(seed)
    )
    periscope_daily = DailySeries(observed.daily_broadcast_counts(), "Periscope")
    meerkat_daily = DailySeries(meerkat.dataset.daily_broadcast_counts(), "Meerkat")

    data = {
        "periscope_daily": periscope_daily.values,
        "meerkat_daily": meerkat_daily.values,
        "periscope_growth": periscope_daily.growth_factor(),
        "meerkat_growth": meerkat_daily.growth_factor(),
        "periscope_weekend_ratio": periscope_daily.weekend_weekday_ratio(first_weekday=4),
    }
    text = "\n".join(
        [
            ascii_series(
                {
                    "periscope": periscope_daily.values,
                    "meerkat": meerkat_daily.values,
                },
                title="Figure 1 — daily broadcasts (each normalized to its own max)",
                normalize=True,
            ),
            render_series(
                {
                    "periscope": periscope_daily.values,
                    "meerkat": meerkat_daily.values,
                },
                title="Figure 1 — daily broadcasts (sampled days)",
            ),
            f"Periscope growth factor (weekly-smoothed): {data['periscope_growth']:.2f}x"
            " (paper: >3x)",
            f"Meerkat growth factor: {data['meerkat_growth']:.2f}x (paper: ~0.5x)",
            f"Periscope weekend/weekday ratio: {data['periscope_weekend_ratio']:.2f}"
            " (paper: weekend peaks)",
        ]
    )
    return ExperimentResult(
        experiment_id="fig1",
        title="Figure 1: # of daily broadcasts",
        data=data,
        text=text,
    )
