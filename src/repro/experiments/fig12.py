"""Figure 12: CDF of average polling delay per broadcast."""

from __future__ import annotations

import numpy as np

from repro.analysis.delay_stats import polling_cdfs
from repro.analysis.plots import ascii_cdf
from repro.analysis.report import render_cdf_summary
from repro.core.polling import simulate_polling
from repro.experiments.context import DEFAULT_CAMPAIGN_BROADCASTS, DEFAULT_SEED, delay_traces
from repro.experiments.registry import ExperimentResult, experiment

POLL_INTERVALS_S = [2.0, 3.0, 4.0]


@experiment(
    "fig12",
    "Figure 12: CDF of average polling delay per broadcast",
    "Mean polling delay is ~interval/2 for 2 s and 4 s intervals; at 3 s — "
    "resonant with the ~3 s chunk inter-arrival — per-broadcast means spread "
    "out, varying largely between 1 s and 2 s.",
)
def run(
    n_broadcasts: int = DEFAULT_CAMPAIGN_BROADCASTS, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    traces = [t.chunk_availability for t in delay_traces(n_broadcasts, seed)]
    rng = np.random.default_rng(seed + 12)
    stats = simulate_polling(traces, POLL_INTERVALS_S, rng)
    cdfs = polling_cdfs(stats, quantity="mean")

    data = {
        "stats": stats,
        "cdfs": cdfs,
        "mean_of_means": {
            interval: float(np.mean([s.mean_delay_s for s in per_interval]))
            for interval, per_interval in stats.items()
        },
        "spread_3s": float(
            np.std([s.mean_delay_s for s in stats[3.0]])
        ),
    }
    text = "\n".join(
        [
            ascii_cdf(cdfs, title="Figure 12 — CDF of mean polling delay per broadcast (s)"),
            render_cdf_summary(cdfs, title="Figure 12 — mean polling delay per broadcast (s)"),
            "Mean of per-broadcast means: "
            + ", ".join(
                f"{interval:g}s -> {value:.2f}s"
                for interval, value in sorted(data["mean_of_means"].items())
            )
            + "  (paper: 2s->1.0, 4s->2.0, 3s varies 1-2)",
        ]
    )
    return ExperimentResult(
        experiment_id="fig12",
        title="Figure 12: CDF of average polling delay per broadcast",
        data=data,
        text=text,
    )
