"""Figure 7: broadcaster's followers vs viewers per broadcast."""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.social_stats import (
    follower_viewer_correlation,
    mean_viewers_by_follower_bucket,
)
from repro.experiments.context import DEFAULT_SCALE, DEFAULT_SEED, periscope_trace
from repro.experiments.registry import ExperimentResult, experiment


@experiment(
    "fig7",
    "Figure 7: broadcaster's followers vs # of viewers (Periscope)",
    "Users with more followers generate more popular broadcasts (follower "
    "notifications create built-in audiences).",
)
def run(scale: float = DEFAULT_SCALE, seed: int = DEFAULT_SEED) -> ExperimentResult:
    dataset = periscope_trace(scale, seed).dataset
    correlation = follower_viewer_correlation(dataset)
    buckets = mean_viewers_by_follower_bucket(dataset)

    data = {"rank_correlation": correlation, "mean_viewers_by_bucket": buckets}
    rows = {bucket: {"mean_viewers": value} for bucket, value in buckets.items()}
    text = "\n".join(
        [
            format_table(
                rows,
                title="Figure 7 — mean viewers by broadcaster follower count",
                row_header="followers",
            ),
            f"Follower-viewer rank correlation: {correlation:.3f} (paper: clearly positive)",
        ]
    )
    return ExperimentResult(
        experiment_id="fig7",
        title="Figure 7: broadcaster's followers vs # of viewers",
        data=data,
        text=text,
    )
