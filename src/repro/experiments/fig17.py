"""Figure 17: HLS pre-buffer size vs stalling and buffering delay.

This is the paper's optimization headline: Periscope ships P=9 s for HLS,
but P=6 s achieves near-identical stalling while cutting buffering delay
by ~50% (~3 s saved).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cdf import Cdf
from repro.analysis.plots import ascii_cdf
from repro.analysis.report import render_cdf_summary
from repro.core.pipeline import hls_viewer_traces
from repro.core.playback import sweep_prebuffer
from repro.experiments.context import DEFAULT_CAMPAIGN_BROADCASTS, DEFAULT_SEED, delay_traces
from repro.experiments.registry import ExperimentResult, experiment

HLS_PREBUFFERS_S = [0.0, 3.0, 6.0, 9.0]
CHUNK_DURATION_S = 3.0
VIEWER_POLL_INTERVAL_S = 2.8


@experiment(
    "fig17",
    "Figure 17: HLS pre-buffer impact on stalling and buffering delay",
    "HLS needs 6-9 s of pre-buffer to play smoothly; P=6 s gives similar "
    "stalling to Periscope's configured P=9 s while halving buffering delay.",
)
def run(
    n_broadcasts: int = DEFAULT_CAMPAIGN_BROADCASTS, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    rng = np.random.default_rng(seed + 17)
    traces = hls_viewer_traces(
        list(delay_traces(n_broadcasts, seed)), rng, VIEWER_POLL_INTERVAL_S
    )
    sweep = sweep_prebuffer(traces, HLS_PREBUFFERS_S, CHUNK_DURATION_S)

    stall_cdfs = {f"P={p:g}s stall": Cdf(v["stall_ratio"]) for p, v in sweep.items()}
    delay_cdfs = {f"P={p:g}s delay": Cdf(v["buffering_delay"]) for p, v in sweep.items()}

    median_stall_6 = float(np.median(sweep[6.0]["stall_ratio"]))
    median_stall_9 = float(np.median(sweep[9.0]["stall_ratio"]))
    median_delay_6 = float(np.median(sweep[6.0]["buffering_delay"]))
    median_delay_9 = float(np.median(sweep[9.0]["buffering_delay"]))
    data = {
        "sweep": sweep,
        "stall_cdfs": stall_cdfs,
        "delay_cdfs": delay_cdfs,
        "median_stall_6s": median_stall_6,
        "median_stall_9s": median_stall_9,
        "median_delay_6s": median_delay_6,
        "median_delay_9s": median_delay_9,
        "delay_saving_s": median_delay_9 - median_delay_6,
    }
    text = "\n".join(
        [
            ascii_cdf(stall_cdfs, title="Figure 17(a) — CDF of HLS stalling ratio", x_max=0.3),
            ascii_cdf(delay_cdfs, title="Figure 17(b) — CDF of HLS buffering delay (s)", x_max=10.0),
            render_cdf_summary(stall_cdfs, title="Figure 17(a) — HLS stalling ratio"),
            render_cdf_summary(delay_cdfs, title="Figure 17(b) — HLS buffering delay (s)"),
            f"P=6s vs P=9s: median stall {median_stall_6:.3f} vs {median_stall_9:.3f}; "
            f"median delay {median_delay_6:.1f}s vs {median_delay_9:.1f}s "
            f"(saving {data['delay_saving_s']:.1f}s — paper: ~3s, ~50%)",
        ]
    )
    return ExperimentResult(
        experiment_id="fig17",
        title="Figure 17: HLS pre-buffer impact",
        data=data,
        text=text,
    )
