"""Serving-layer experiment: the global-list flow under a flash crowd.

Not a paper figure — a systems experiment over the reproduced platform's
serving tier (:mod:`repro.service`).  The paper's measurements imply a
global-list endpoint that stays responsive while broadcast popularity
spikes by orders of magnitude; this experiment reproduces that flow with
the closed-loop driver and compares three postures on one seed:

* **baseline** — steady polling clients, admission control armed,
* **flash** — the same system hit by a flash crowd, admission armed,
* **unguarded** — the same flash crowd with admission disabled.

The claim under test: at baseline the admission layer is invisible (zero
shed, zero errors); under the flash crowd it sheds the excess at the door
while the p99 latency of admitted requests stays bounded, whereas the
unguarded system lets the queue grow and its tail latency blow past the
guarded run's.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.registry import ExperimentResult, experiment
from repro.service.loadgen import FlashCrowdConfig, LoadGenConfig, run_serve_bench


@experiment(
    "serving",
    "Serving tier: global-list flow under a flash crowd (admission on/off)",
    "Baseline sheds nothing and errors nothing; under the flash crowd the "
    "admission layer sheds the excess at the door while keeping the p99 of "
    "admitted requests bounded — the unguarded posture instead queues "
    "everything and its tail latency exceeds the guarded run's.",
)
def run(
    seed: int = 2016,
    n_clients: int = 16,
    duration_s: float = 60.0,
) -> ExperimentResult:
    baseline_config = LoadGenConfig(n_clients=n_clients, duration_s=duration_s)
    flash_config = LoadGenConfig(
        n_clients=n_clients,
        duration_s=duration_s,
        flash_crowd=FlashCrowdConfig(
            start_s=duration_s / 3.0,
            duration_s=duration_s / 3.0,
            extra_clients=15 * n_clients,
            think_time_s=0.15,
        ),
    )
    baseline = run_serve_bench(seed=seed, config=baseline_config)
    flash = run_serve_bench(seed=seed, config=flash_config)
    unguarded = run_serve_bench(seed=seed, config=flash_config, admission=False)

    rows = {}
    for name, report in (
        ("baseline", baseline), ("flash", flash), ("unguarded", unguarded),
    ):
        rows[name] = {
            "requests": report.requests,
            "ok": report.ok,
            "shed": report.shed,
            "errors": report.errors + report.unavailable,
            "retries": report.retries,
            "p50_ms": report.latency_p50_s * 1e3,
            "p99_ms": report.latency_p99_s * 1e3,
        }

    baseline_clean = baseline.shed == 0 and baseline.error_rate == 0.0
    admission_engaged = flash.shed > 0
    tail_bounded = flash.latency_p99_s < unguarded.latency_p99_s
    data = {
        "baseline": baseline.to_dict(),
        "flash": flash.to_dict(),
        "unguarded": unguarded.to_dict(),
        "baseline_clean": baseline_clean,
        "admission_engaged": admission_engaged,
        "tail_bounded": tail_bounded,
    }
    verdict = [
        "Baseline "
        + ("sheds nothing and errors nothing." if baseline_clean
           else "UNEXPECTEDLY shed or errored."),
        "Flash crowd "
        + ("engages admission control" if admission_engaged
           else "DOES NOT engage admission control")
        + f" ({flash.shed} shed, {flash.shed_rate:.0%} of requests).",
        "Guarded p99 "
        + ("stays below" if tail_bounded else "DOES NOT stay below")
        + f" the unguarded tail ({flash.latency_p99_s * 1e3:.1f} ms vs "
        + f"{unguarded.latency_p99_s * 1e3:.1f} ms).",
    ]
    text = "\n".join(
        [
            format_table(
                rows,
                title="Serving tier under flash crowd — admission on vs off",
                row_header="posture",
            ),
            "",
            *verdict,
        ]
    )
    return ExperimentResult(
        experiment_id="serving",
        title="Serving tier: global-list flow under a flash crowd",
        data=data,
        text=text,
    )
