"""Synthetic follow-graph generation.

The generator reproduces the structural signature the paper reports for
Periscope's follow graph (Table 2): Twitter-like rather than Facebook-like —

* heavy-tailed in-degree (celebrities with >1M followers, Figure 7),
* *negative* degree assortativity (asymmetric one-to-many follows:
  low-degree fans attach to high-degree celebrities),
* moderate clustering (0.130) from triadic closure,
* short average paths (3.74) from the broad degree distribution.

Mechanism: nodes arrive in growing chunks; each new node emits a
heavy-tailed number of follow edges.  Each edge picks its target by
preferential attachment on in-degree (with probability ``pref_prob``), by
triadic closure through one of the node's own freshly drawn followees
(``triadic_prob``), or uniformly at random.  A small fraction of edges is
reciprocated — Twitter-like graphs have low reciprocity, which keeps
assortativity negative.

The hot path is fully vectorized: every chunk samples all of its edges
with batched numpy draws against an explicit *snapshot* of the graph built
so far (attachment pool, CSR adjacency), then deduplicates with one
lexsort.  The snapshot discipline also removes a latent hazard of the old
per-edge loop, where triadic-closure draws indexed followee lists that
grew while the same node's batch was still being generated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.social.graph import CompiledGraph, FollowGraph

#: Packed-pair encoding shared with :meth:`CompiledGraph.from_packed_keys`:
#: ``(a, b)`` sorts as the int64 ``a << 32 | b``.
_PAIR_SHIFT = 32
_PAIR_MASK = np.int64((1 << _PAIR_SHIFT) - 1)

#: Vectorized generation processes arriving nodes in chunks of
#: ``max(_MIN_CHUNK, prefix * _CHUNK_FRACTION)``: small enough that the
#: snapshot each chunk samples against is at most ~20% stale, large enough
#: that the per-chunk numpy overhead amortizes (O(log n) chunks total).
_MIN_CHUNK = 32
_CHUNK_FRACTION = 0.2


@dataclass
class FollowGraphConfig:
    """Knobs for :func:`generate_follow_graph`.

    Defaults are calibrated so that the Table 2 metrics land near the
    paper's values (avg total degree ~38.6, clustering ~0.13, short paths,
    slightly negative assortativity).
    """

    n_nodes: int = 10_000
    mean_out_degree: float = 19.3  # total avg degree 38.6 = 2 * edges/node
    out_degree_sigma: float = 1.1  # lognormal sigma of per-node out-degree
    max_out_degree: int = 2_000
    pref_prob: float = 0.55  # preferential attachment on in-degree
    triadic_prob: float = 0.25  # close triangles through a followee
    reciprocation_prob: float = 0.12  # low reciprocity, Twitter-like
    seed_nodes: int = 10

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        if self.seed_nodes < 2:
            raise ValueError("need at least 2 seed nodes")
        if self.seed_nodes > self.n_nodes:
            raise ValueError("seed_nodes cannot exceed n_nodes")
        if not 0 <= self.pref_prob + self.triadic_prob <= 1:
            raise ValueError("pref_prob + triadic_prob must be within [0, 1]")
        for name in ("reciprocation_prob",):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be within [0, 1], got {value}")


def _sample_out_degrees(config: FollowGraphConfig, rng: np.random.Generator) -> np.ndarray:
    """Heavy-tailed out-degree targets for each arriving node."""
    mu = np.log(config.mean_out_degree) - config.out_degree_sigma**2 / 2
    raw = rng.lognormal(mean=mu, sigma=config.out_degree_sigma, size=config.n_nodes)
    return np.clip(np.rint(raw), 1, config.max_out_degree).astype(np.int64)


def _seed_clique(seed_nodes: int) -> tuple[np.ndarray, np.ndarray]:
    """All ordered pairs of the seed clique, grouped by follower."""
    base = np.arange(seed_nodes, dtype=np.int64)
    src = np.repeat(base, seed_nodes - 1)
    dst = np.concatenate([np.delete(base, node) for node in range(seed_nodes)])
    return src, dst


class _GrowBuffer:
    """An amortized-growth int64 append buffer (numpy has no cheap append)."""

    __slots__ = ("_data", "length")

    def __init__(self, capacity: int) -> None:
        self._data = np.empty(max(capacity, 16), dtype=np.int64)
        self.length = 0

    def append(self, values: np.ndarray) -> None:
        needed = self.length + len(values)
        if needed > len(self._data):
            grown = np.empty(max(needed, 2 * len(self._data)), dtype=np.int64)
            grown[: self.length] = self._data[: self.length]
            self._data = grown
        self._data[self.length : needed] = values
        self.length = needed

    def view(self) -> np.ndarray:
        return self._data[: self.length]


def _chunk_targets(
    config: FollowGraphConfig,
    rng: np.random.Generator,
    wanted: np.ndarray,
    prefix: int,
    pool: np.ndarray,
    fwd_indptr: np.ndarray,
    fwd_indices: np.ndarray,
    rec_indptr: np.ndarray,
    rec_indices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw every candidate target for one chunk of arriving nodes.

    ``wanted[i]`` edges are drawn for chunk-relative node ``i``; all
    targets come from the ``prefix`` snapshot (nodes ``< prefix``), whose
    adjacency is split into a forward CSR (edges drawn on arrival, grouped
    by source with no sorting needed) and a reciprocation CSR.
    Returns ``(owner_rel, target)`` with dropped triadic draws marked -1.
    """
    # owner_rel = repeat(arange(len(wanted)), wanted), built with a
    # bincount + cumsum instead of np.repeat (one less full-size gather).
    total = int(wanted.sum())
    marker = np.bincount(np.cumsum(wanted), minlength=total + 1)
    owner_rel = np.cumsum(marker[:total], dtype=np.int64) if total else np.empty(0, np.int64)
    roll = rng.random(total)
    is_pref = roll < config.pref_prob
    is_triadic = ~is_pref & (roll < config.pref_prob + config.triadic_prob)
    is_primary = ~is_triadic

    targets = np.empty(total, dtype=np.int64)
    n_pref = int(is_pref.sum())
    if n_pref:
        targets[is_pref] = pool[rng.integers(0, len(pool), size=n_pref)]
    is_uniform = is_primary & ~is_pref
    n_uniform = int(is_uniform.sum())
    if n_uniform:
        targets[is_uniform] = rng.integers(0, prefix, size=n_uniform)

    # Triadic closure against an explicit snapshot: the "via" followee is
    # one of the node's own primary draws from this same chunk (frozen
    # above), and the final target one of via's followees in the prefix
    # CSRs.  Nothing here observes edges added later in the chunk.
    n_triadic = int(is_triadic.sum())
    if n_triadic:
        primary_targets = targets[is_primary]  # grouped by owner, order kept
        primary_counts = np.bincount(owner_rel[is_primary], minlength=len(wanted))
        primary_starts = np.zeros(len(wanted) + 1, dtype=np.int64)
        np.cumsum(primary_counts, out=primary_starts[1:])

        tri_owner = owner_rel[is_triadic]
        tri_targets = np.empty(n_triadic, dtype=np.int64)
        has_via = primary_counts[tri_owner] > 0

        n_fallback = int((~has_via).sum())
        if n_fallback:
            # No primary draw to close a triangle through: fall back to a
            # uniform target, like the old loop's retry would eventually.
            tri_targets[~has_via] = rng.integers(0, prefix, size=n_fallback)
        n_via = n_triadic - n_fallback
        if n_via:
            owner_with = tri_owner[has_via]
            via = primary_targets[
                primary_starts[owner_with]
                + rng.integers(0, primary_counts[owner_with])
            ]
            fwd_degree = fwd_indptr[via + 1] - fwd_indptr[via]
            rec_degree = rec_indptr[via + 1] - rec_indptr[via]
            via_degree = fwd_degree + rec_degree
            closable = via_degree > 0
            n_closable = int(closable.sum())
            if n_closable == n_via:
                # Common case: every via node has followees — no -1 fill.
                position = rng.integers(0, via_degree)
                in_fwd = position < fwd_degree
                closed = np.empty(n_via, dtype=np.int64)
                closed[in_fwd] = fwd_indices[(fwd_indptr[via] + position)[in_fwd]]
                closed[~in_fwd] = rec_indices[
                    (rec_indptr[via] + position - fwd_degree)[~in_fwd]
                ]
            else:
                closed = np.full(n_via, -1, dtype=np.int64)
                if n_closable:
                    via_ok = via[closable]
                    position = rng.integers(0, via_degree[closable])
                    in_fwd = position < fwd_degree[closable]
                    picked = np.empty(n_closable, dtype=np.int64)
                    picked[in_fwd] = fwd_indices[
                        (fwd_indptr[via_ok] + position)[in_fwd]
                    ]
                    picked[~in_fwd] = rec_indices[
                        (rec_indptr[via_ok] + position - fwd_degree[closable])[~in_fwd]
                    ]
                    closed[closable] = picked
            tri_targets[has_via] = closed
        targets[is_triadic] = tri_targets

    return owner_rel, targets


def generate_follow_graph_compiled(
    config: FollowGraphConfig,
    rng: np.random.Generator,
) -> CompiledGraph:
    """Generate a Periscope-like follow graph as a frozen CSR snapshot.

    Runs in O(E log E) total: nodes arrive in geometrically growing
    chunks, and each chunk's edges are drawn with batched numpy sampling
    against the prefix snapshot and deduplicated with one lexsort.  The
    snapshot adjacency is kept in two parts so no per-chunk re-sort of the
    full edge set is needed: forward edges arrive already grouped by
    source (each node's batch lands in exactly one chunk), and only the
    small reciprocated set (~``reciprocation_prob`` of edges) is re-sorted
    as it grows.  Edge uniqueness across chunks is structural — forward
    edges always point from a brand-new node into the prefix, and
    reciprocation edges point back at a node that cannot have been
    targeted before — so no global dedup pass is needed.
    """
    n = config.n_nodes
    seed_nodes = min(config.seed_nodes, n)
    out_degrees = _sample_out_degrees(config, rng)

    seed_src, seed_dst = _seed_clique(seed_nodes)
    expected_edges = int(out_degrees.sum()) + len(seed_src)

    # Forward adjacency: sources arrive in ascending order, so the CSR is
    # just this buffer plus a cumsum of per-source counts — never sorted.
    fwd_src = _GrowBuffer(expected_edges)
    fwd_dst = _GrowBuffer(expected_edges)
    fwd_out_counts = np.zeros(n, dtype=np.int64)
    fwd_src.append(seed_src)
    fwd_dst.append(seed_dst)
    fwd_out_counts[:seed_nodes] = seed_nodes - 1

    # Reciprocated edges land on arbitrary old sources; kept separately
    # and re-sorted per chunk (a small, geometrically growing set).
    rec_capacity = int(expected_edges * config.reciprocation_prob * 1.1) + 64
    rec_src = _GrowBuffer(rec_capacity)
    rec_dst = _GrowBuffer(rec_capacity)

    # In-degree-proportional sampling pool: each followee once per
    # in-edge, i.e. every forward dst plus every reciprocated dst —
    # sized for both up front so it never pays a doubling copy.
    pool = _GrowBuffer(expected_edges + 2 * rec_capacity)
    pool.append(seed_dst)

    fwd_indptr = np.zeros(n + 1, dtype=np.int64)
    rec_indptr = np.zeros(n + 1, dtype=np.int64)

    prefix = seed_nodes
    while prefix < n:
        chunk = min(n - prefix, max(_MIN_CHUNK, int(prefix * _CHUNK_FRACTION)))
        end = prefix + chunk

        np.cumsum(fwd_out_counts, out=fwd_indptr[1:])
        rec_order = np.argsort(rec_src.view(), kind="stable")
        rec_indices = rec_dst.view()[rec_order]
        np.cumsum(np.bincount(rec_src.view(), minlength=n), out=rec_indptr[1:])

        wanted = np.minimum(out_degrees[prefix:end], prefix)
        owner_rel, targets = _chunk_targets(
            config, rng, wanted, prefix, pool.view(),
            fwd_indptr, fwd_dst.view(), rec_indptr, rec_indices,
        )

        # Dedup per owner (targets < prefix <= owner, so self-follows are
        # impossible and a new node has no pre-existing out-edges to
        # collide with).  Canonical order: sorted by (owner, target) —
        # realized as one packed-key sort instead of a lexsort.
        kept = targets >= 0
        pair_keys = np.left_shift(owner_rel[kept], _PAIR_SHIFT)
        np.bitwise_or(pair_keys, targets[kept], out=pair_keys)
        pair_keys.sort()
        first = np.ones(len(pair_keys), dtype=bool)
        first[1:] = pair_keys[1:] != pair_keys[:-1]
        unique_keys = pair_keys[first]
        edge_src = np.right_shift(unique_keys, _PAIR_SHIFT) + prefix
        edge_dst = np.bitwise_and(unique_keys, _PAIR_MASK)

        reciprocated = rng.random(len(edge_src)) < config.reciprocation_prob
        new_rec_src = edge_dst[reciprocated]
        new_rec_dst = edge_src[reciprocated]

        fwd_src.append(edge_src)
        fwd_dst.append(edge_dst)
        fwd_out_counts[prefix:end] = np.bincount(
            edge_src - prefix, minlength=chunk
        )
        rec_src.append(new_rec_src)
        rec_dst.append(new_rec_dst)
        pool.append(edge_dst)
        pool.append(new_rec_dst)
        prefix = end

    # Pack (src, dst) pairs straight into one key buffer — no edge-array
    # concatenation, and compilation is one int64 sort per direction.
    n_fwd, n_rec = fwd_src.length, rec_src.length
    keys = np.empty(n_fwd + n_rec, dtype=np.int64)
    np.left_shift(fwd_src.view(), _PAIR_SHIFT, out=keys[:n_fwd])
    np.bitwise_or(keys[:n_fwd], fwd_dst.view(), out=keys[:n_fwd])
    np.left_shift(rec_src.view(), _PAIR_SHIFT, out=keys[n_fwd:])
    np.bitwise_or(keys[n_fwd:], rec_dst.view(), out=keys[n_fwd:])
    # Endpoints are in-range by construction (targets are clipped and
    # deduped against [0, n)), so skip the validation pass.
    return CompiledGraph.from_packed_keys(keys, n_nodes=n, validate=False)


def generate_follow_graph(
    config: FollowGraphConfig,
    rng: np.random.Generator,
) -> FollowGraph:
    """Generate a follow graph as a mutable :class:`FollowGraph`.

    Thin wrapper over :func:`generate_follow_graph_compiled` for callers
    that go on to mutate the graph (the platform simulator's incremental
    follow/unfollow path); large read-only consumers should use the
    compiled CSR form directly.
    """
    return generate_follow_graph_compiled(config, rng).to_follow_graph()
