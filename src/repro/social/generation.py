"""Synthetic follow-graph generation.

The generator reproduces the structural signature the paper reports for
Periscope's follow graph (Table 2): Twitter-like rather than Facebook-like —

* heavy-tailed in-degree (celebrities with >1M followers, Figure 7),
* *negative* degree assortativity (asymmetric one-to-many follows:
  low-degree fans attach to high-degree celebrities),
* moderate clustering (0.130) from triadic closure,
* short average paths (3.74) from the broad degree distribution.

Mechanism: nodes arrive sequentially; each new node emits a heavy-tailed
number of follow edges.  Each edge picks its target by preferential
attachment on in-degree (with probability ``pref_prob``), by triadic
closure through an existing followee (``triadic_prob``), or uniformly at
random.  A small fraction of edges is reciprocated — Twitter-like graphs
have low reciprocity, which keeps assortativity negative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.social.graph import FollowGraph


@dataclass
class FollowGraphConfig:
    """Knobs for :func:`generate_follow_graph`.

    Defaults are calibrated so that the Table 2 metrics land near the
    paper's values (avg total degree ~38.6, clustering ~0.13, short paths,
    slightly negative assortativity).
    """

    n_nodes: int = 10_000
    mean_out_degree: float = 19.3  # total avg degree 38.6 = 2 * edges/node
    out_degree_sigma: float = 1.1  # lognormal sigma of per-node out-degree
    max_out_degree: int = 2_000
    pref_prob: float = 0.55  # preferential attachment on in-degree
    triadic_prob: float = 0.25  # close triangles through a followee
    reciprocation_prob: float = 0.12  # low reciprocity, Twitter-like
    seed_nodes: int = 10

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        if self.seed_nodes < 2:
            raise ValueError("need at least 2 seed nodes")
        if self.seed_nodes > self.n_nodes:
            raise ValueError("seed_nodes cannot exceed n_nodes")
        if not 0 <= self.pref_prob + self.triadic_prob <= 1:
            raise ValueError("pref_prob + triadic_prob must be within [0, 1]")
        for name in ("reciprocation_prob",):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be within [0, 1], got {value}")


def _sample_out_degrees(config: FollowGraphConfig, rng: np.random.Generator) -> np.ndarray:
    """Heavy-tailed out-degree targets for each arriving node."""
    mu = np.log(config.mean_out_degree) - config.out_degree_sigma**2 / 2
    raw = rng.lognormal(mean=mu, sigma=config.out_degree_sigma, size=config.n_nodes)
    return np.clip(np.rint(raw), 1, config.max_out_degree).astype(np.int64)


def generate_follow_graph(
    config: FollowGraphConfig,
    rng: np.random.Generator,
) -> FollowGraph:
    """Generate a follow graph with Periscope-like structure.

    Runs in O(edges) with a repeated-node list for preferential attachment
    (each target appended once per in-edge, so sampling from the list is
    in-degree-proportional).
    """
    graph = FollowGraph()
    out_degrees = _sample_out_degrees(config, rng)

    # In-degree-proportional sampling pool: node i appears once per in-edge.
    attachment_pool: list[int] = []

    # Seed clique so early preferential draws have targets.
    for node in range(config.seed_nodes):
        graph.add_node(node)
    for node in range(config.seed_nodes):
        for other in range(config.seed_nodes):
            if node != other and graph.add_follow(node, other):
                attachment_pool.append(other)

    followees_list: dict[int, list[int]] = {
        node: sorted(graph.followees_of(node)) for node in range(config.seed_nodes)
    }

    def add_edge(follower: int, followee: int) -> bool:
        if follower == followee or graph.follows(follower, followee):
            return False
        graph.add_follow(follower, followee)
        attachment_pool.append(followee)
        followees_list.setdefault(follower, []).append(followee)
        return True

    for node in range(config.seed_nodes, config.n_nodes):
        graph.add_node(node)
        wanted = min(int(out_degrees[node]), node)  # cannot follow more than exist
        added = 0
        attempts = 0
        my_followees = followees_list.setdefault(node, [])
        while added < wanted and attempts < wanted * 10:
            attempts += 1
            roll = rng.random()
            target: int
            if roll < config.pref_prob and attachment_pool:
                target = attachment_pool[int(rng.integers(len(attachment_pool)))]
            elif roll < config.pref_prob + config.triadic_prob and my_followees:
                # Triadic closure: follow someone my followee follows.
                via = my_followees[int(rng.integers(len(my_followees)))]
                candidates = followees_list.get(via, [])
                if not candidates:
                    continue
                target = candidates[int(rng.integers(len(candidates)))]
            else:
                target = int(rng.integers(node))
            if add_edge(node, target):
                added += 1
                if rng.random() < config.reciprocation_prob:
                    add_edge(target, node)
    return graph
