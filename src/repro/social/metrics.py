"""Graph metrics for Table 2.

Computes the statistics the paper reports for the Periscope follow graph
and compares against its Facebook/Twitter reference rows: node and edge
counts, average (total) degree, average clustering coefficient, average
shortest-path length, and degree assortativity.

Clustering and path length are estimated on random node samples — exact
computation is quadratic and the paper's own numbers for 12M-node graphs
are necessarily sampled too.  Assortativity (Pearson correlation of total
degrees across directed edges, the convention the referenced
Twitter/Facebook studies use) is exact on small graphs and switches to a
seeded source-node sampling estimator above
:data:`ASSORTATIVITY_EXACT_MAX_NODES` nodes, where the all-edges scan
made scale >= 0.01 graphs intractable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.social.graph import AnyFollowGraph, CompiledGraph, FollowGraph


@dataclass(frozen=True)
class GraphMetrics:
    """The Table 2 row for one social graph."""

    nodes: int
    edges: int
    avg_degree: float
    clustering_coefficient: float
    avg_path_length: float
    assortativity: float

    def as_row(self) -> dict[str, float]:
        return {
            "nodes": self.nodes,
            "edges": self.edges,
            "avg_degree": round(self.avg_degree, 2),
            "clustering_coef": round(self.clustering_coefficient, 3),
            "avg_path": round(self.avg_path_length, 2),
            "assortativity": round(self.assortativity, 3),
        }


#: Reference rows from Table 2 of the paper.
TABLE2_REFERENCE: dict[str, dict[str, float]] = {
    "Periscope": {
        "nodes": 12_000_000,
        "edges": 231_000_000,
        "avg_degree": 38.6,
        "clustering_coef": 0.130,
        "avg_path": 3.74,
        "assortativity": -0.057,
    },
    "Facebook": {
        "nodes": 1_220_000,
        "edges": 121_000_000,
        "avg_degree": 199.6,
        "clustering_coef": 0.175,
        "avg_path": 5.13,
        "assortativity": 0.17,
    },
    "Twitter": {
        "nodes": 1_620_000,
        "edges": 11_300_000,
        "avg_degree": 13.99,
        "clustering_coef": 0.065,
        "avg_path": 6.49,
        "assortativity": -0.19,
    },
}


#: Neighbor-set size above which a hub is skipped in clustering counts.
CLUSTERING_HUB_CUTOFF = 50_000


def _node_array(graph: AnyFollowGraph) -> np.ndarray:
    """All node IDs as an int64 array (zero-copy for compiled graphs)."""
    if isinstance(graph, CompiledGraph):
        return graph.node_ids
    return np.fromiter(graph.nodes(), dtype=np.int64, count=graph.node_count)


def _degree_values(graph: AnyFollowGraph, kind: str) -> np.ndarray:
    """Per-node degrees of the requested ``kind`` ("in"/"out"/"total")."""
    if isinstance(graph, CompiledGraph):
        if kind == "in":
            return graph.in_degrees()
        if kind == "out":
            return graph.out_degrees()
        if kind == "total":
            return graph.total_degrees()
        raise ValueError(f"unknown degree kind {kind!r}")
    if kind == "in":
        return np.array([graph.follower_count(n) for n in graph.nodes()])
    if kind == "out":
        return np.array([graph.followee_count(n) for n in graph.nodes()])
    if kind == "total":
        return np.array([graph.degree(n) for n in graph.nodes()])
    raise ValueError(f"unknown degree kind {kind!r}")


def local_clustering(graph: AnyFollowGraph, node: int) -> float:
    """Undirected local clustering coefficient of ``node``."""
    neighbors = graph.undirected_neighbors(node)
    k = len(neighbors)
    if k < 2:
        return 0.0
    neighbor_list = list(neighbors)
    links = 0
    for i, u in enumerate(neighbor_list):
        u_neighbors = graph.undirected_neighbors(u)
        # Guard against huge hubs dominating runtime.  (This check used to
        # sit *after* the pair loop as a no-op ``continue`` — the hub's
        # neighbor set was already materialized and scanned by then.)
        if len(u_neighbors) > CLUSTERING_HUB_CUTOFF:
            continue
        # Count pairs once: only neighbors later in the list.
        for v in neighbor_list[i + 1 :]:
            if v in u_neighbors:
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(
    graph: AnyFollowGraph,
    rng: np.random.Generator,
    sample_size: int = 1_000,
) -> float:
    """Average local clustering over a random node sample."""
    nodes = _node_array(graph)
    if len(nodes) == 0:
        return 0.0
    if len(nodes) <= sample_size:
        sample = nodes
    else:
        sample = rng.choice(nodes, size=sample_size, replace=False)
    return float(np.mean([local_clustering(graph, int(node)) for node in sample]))


def _bfs_distances(graph: AnyFollowGraph, source: int, cutoff: int = 50) -> dict[int, int]:
    """Undirected BFS distances from ``source`` up to ``cutoff`` hops."""
    distances = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if depth >= cutoff:
            continue
        for neighbor in graph.undirected_neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
    return distances


def average_path_length(
    graph: AnyFollowGraph,
    rng: np.random.Generator,
    sample_size: int = 50,
) -> float:
    """Mean shortest-path length estimated from BFS on sampled sources.

    Paths are measured on the undirected version of the graph (the
    convention of the studies Table 2 cites).  Unreachable pairs are
    excluded.
    """
    nodes = _node_array(graph)
    if len(nodes) < 2:
        return 0.0
    sources = (
        nodes if len(nodes) <= sample_size else rng.choice(nodes, size=sample_size, replace=False)
    )
    total = 0
    count = 0
    for source in sources:
        distances = _bfs_distances(graph, int(source))
        for node, distance in distances.items():
            if node != source:
                total += distance
                count += 1
    return total / count if count else 0.0


#: Above this many nodes the exact all-edges assortativity scan (a Python
#: loop over every directed edge) becomes the bottleneck of Table 2 at
#: scale >= 0.01; the estimator samples source nodes instead.
ASSORTATIVITY_EXACT_MAX_NODES = 50_000

#: Source nodes drawn by the sampling estimator — every out-edge of a
#: sampled source enters the correlation, so the effective edge sample is
#: ~``mean_out_degree`` times larger.
ASSORTATIVITY_SOURCE_SAMPLE = 20_000


def _assortativity_of_arrays(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation of two degree arrays (0.0 when degenerate)."""
    if len(x) < 2:
        return 0.0
    x = x.astype(float)
    y = y.astype(float)
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def _compiled_assortativity(
    graph: CompiledGraph,
    rng: np.random.Generator | None,
    max_exact_nodes: int,
    source_sample: int,
) -> float:
    """Assortativity over CSR arrays: no per-edge Python loop either way."""
    degrees = graph.total_degrees()
    if rng is None or graph.node_count <= max_exact_nodes:
        src_idx = np.repeat(
            np.arange(graph.node_count, dtype=np.int64), graph.out_degrees()
        )
        return _assortativity_of_arrays(degrees[src_idx], degrees[graph.indices])
    sample_size = min(source_sample, graph.node_count)
    sources = rng.choice(
        np.arange(graph.node_count, dtype=np.int64), size=sample_size, replace=False
    )
    counts = graph.indptr[sources + 1] - graph.indptr[sources]
    src_idx = np.repeat(sources, counts)
    # Ragged gather of every sampled source's out-neighbor slice.
    total = int(counts.sum())
    starts = np.zeros(len(sources) + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    offsets = (
        np.arange(total, dtype=np.int64)
        - np.repeat(starts[:-1], counts)
        + np.repeat(graph.indptr[sources], counts)
    )
    return _assortativity_of_arrays(degrees[src_idx], degrees[graph.indices[offsets]])


def _assortativity_over(
    graph: FollowGraph, edge_pairs
) -> float:
    """Pearson correlation of total degree over the given (u, v) edges."""
    degree_cache: dict[int, int] = {}

    def degree_of(node: int) -> int:
        cached = degree_cache.get(node)
        if cached is None:
            cached = degree_cache[node] = graph.degree(node)
        return cached

    source_degrees = []
    target_degrees = []
    for follower, followee in edge_pairs:
        source_degrees.append(degree_of(follower))
        target_degrees.append(degree_of(followee))
    return _assortativity_of_arrays(
        np.asarray(source_degrees), np.asarray(target_degrees)
    )


def degree_assortativity(
    graph: AnyFollowGraph,
    rng: np.random.Generator | None = None,
    max_exact_nodes: int = ASSORTATIVITY_EXACT_MAX_NODES,
    source_sample: int = ASSORTATIVITY_SOURCE_SAMPLE,
) -> float:
    """Pearson correlation of total degree across directed edges.

    Exact over all edges up to ``max_exact_nodes`` nodes.  Above that
    (and when a seeded ``rng`` is provided) it estimates from the
    out-edges of a uniform source-node sample — every edge has the same
    inclusion probability, so the estimator is unbiased, and the seeded
    rng keeps it deterministic.  Pass ``rng=None`` to force the exact
    path at any size.  Compiled graphs take a fully vectorized path.
    """
    if isinstance(graph, CompiledGraph):
        return _compiled_assortativity(graph, rng, max_exact_nodes, source_sample)
    if rng is not None and graph.node_count > max_exact_nodes:
        nodes = _node_array(graph)
        sample_size = min(source_sample, len(nodes))
        sources = rng.choice(nodes, size=sample_size, replace=False)
        edge_pairs = (
            (int(source), followee)
            for source in sources
            for followee in sorted(graph.followees_of(int(source)))
        )
        return _assortativity_over(graph, edge_pairs)
    return _assortativity_over(graph, graph.edges())


def compute_graph_metrics(
    graph: AnyFollowGraph,
    rng: np.random.Generator,
    clustering_sample: int = 1_000,
    path_sample: int = 50,
) -> GraphMetrics:
    """All Table 2 metrics for ``graph``."""
    nodes = graph.node_count
    edges = graph.edge_count
    avg_degree = 2.0 * edges / nodes if nodes else 0.0
    return GraphMetrics(
        nodes=nodes,
        edges=edges,
        avg_degree=avg_degree,
        clustering_coefficient=average_clustering(graph, rng, clustering_sample),
        avg_path_length=average_path_length(graph, rng, path_sample),
        assortativity=degree_assortativity(graph, rng),
    )


def degree_ccdf(
    graph: AnyFollowGraph, kind: str = "in"
) -> tuple[np.ndarray, np.ndarray]:
    """Complementary CDF of node degree (Figure 7's x-axis spans decades).

    Returns ``(degrees, P(D >= degree))`` over the distinct degree values,
    for ``kind`` in {"in", "out", "total"}.
    """
    values = _degree_values(graph, kind)
    if len(values) == 0:
        raise ValueError("empty graph")
    values = np.sort(values)
    distinct = np.unique(values)
    ccdf = 1.0 - np.searchsorted(values, distinct, side="left") / len(values)
    return distinct, ccdf


def estimate_powerlaw_alpha(
    graph: AnyFollowGraph, kind: str = "in", x_min: int = 5
) -> float:
    """Discrete MLE power-law exponent of the degree tail.

    Uses the standard continuous approximation
    ``alpha = 1 + n / sum(ln(d / (x_min - 0.5)))`` over degrees >= x_min.
    Heavy-tailed follow graphs land around alpha ~ 2-3.
    """
    if x_min < 2:
        raise ValueError("x_min must be at least 2")
    values = _degree_values(graph, kind)
    tail = values[values >= x_min].astype(float)
    if len(tail) < 10:
        raise ValueError("tail too small to fit")
    return float(1.0 + len(tail) / np.sum(np.log(tail / (x_min - 0.5))))
