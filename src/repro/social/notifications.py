"""Follower notifications: the bridge from the social graph to audiences.

When a user starts a broadcast, all followers receive a push notification
(§2.1).  Figure 7's correlation between follower count and per-broadcast
viewers emerges from followers opening those notifications with some
probability, on top of organic discovery through the global list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.social.graph import FollowGraph


@dataclass
class NotificationService:
    """Delivers broadcast-start notifications and models open behaviour.

    Parameters
    ----------
    open_rate:
        Baseline probability that a notified follower joins the broadcast.
    max_sampled_followers:
        For very large follower sets, joiners are sampled binomially rather
        than per-follower, keeping large-celebrity broadcasts cheap.
    """

    graph: FollowGraph
    open_rate: float = 0.02
    max_sampled_followers: int = 10_000
    notifications_sent: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0 <= self.open_rate <= 1:
            raise ValueError(f"open_rate must be within [0, 1], got {self.open_rate}")

    def notify_followers(self, broadcaster: int) -> frozenset[int]:
        """Return the set of followers notified for a new broadcast."""
        followers = self.graph.followers_of(broadcaster)
        self.notifications_sent += len(followers)
        return followers

    def joining_followers(
        self,
        broadcaster: int,
        rng: np.random.Generator,
    ) -> list[int]:
        """Followers who open the notification and join the broadcast."""
        followers = self.notify_followers(broadcaster)
        if not followers:
            return []
        follower_list = sorted(followers)  # deterministic order for the RNG
        if len(follower_list) <= self.max_sampled_followers:
            mask = rng.random(len(follower_list)) < self.open_rate
            return [f for f, joined in zip(follower_list, mask) if joined]
        # Binomial shortcut for celebrity-scale fanouts.
        join_count = int(rng.binomial(len(follower_list), self.open_rate))
        join_count = min(join_count, len(follower_list))
        chosen = rng.choice(len(follower_list), size=join_count, replace=False)
        return [follower_list[i] for i in sorted(chosen)]

    def expected_notified_joiners(self, broadcaster: int) -> float:
        """Expected follower joins (used by analytic audience models)."""
        return self.graph.follower_count(broadcaster) * self.open_rate
