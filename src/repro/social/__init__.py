"""Follow-graph substrate.

Periscope's social network is a directed follow graph (Table 2: 12M nodes,
231M edges, average degree 38.6, clustering coefficient 0.130, average path
length 3.74, assortativity -0.057).  The paper observes it resembles
Twitter — negative assortativity driven by asymmetric one-to-many follow
relationships — more than Facebook.  This package generates such graphs
and computes the Table 2 metrics.
"""

from repro.social.graph import AnyFollowGraph, CompiledGraph, FollowGraph
from repro.social.generation import (
    FollowGraphConfig,
    generate_follow_graph,
    generate_follow_graph_compiled,
)
from repro.social.metrics import GraphMetrics, compute_graph_metrics
from repro.social.notifications import NotificationService

__all__ = [
    "AnyFollowGraph",
    "CompiledGraph",
    "FollowGraph",
    "FollowGraphConfig",
    "generate_follow_graph",
    "generate_follow_graph_compiled",
    "GraphMetrics",
    "compute_graph_metrics",
    "NotificationService",
]
