"""Directed follow graph with O(1) edge queries and per-node adjacency."""

from __future__ import annotations

from typing import Iterable, Iterator


class FollowGraph:
    """A directed graph where an edge ``u -> v`` means "u follows v".

    Nodes are integer user IDs.  Followers of ``v`` are the in-neighbors;
    followees of ``u`` are the out-neighbors.  Duplicate edges and
    self-follows are rejected, matching platform semantics.
    """

    def __init__(self) -> None:
        self._followees: dict[int, set[int]] = {}
        self._followers: dict[int, set[int]] = {}
        self._edge_count = 0

    # -- construction -------------------------------------------------

    def add_node(self, user_id: int) -> None:
        """Register a user with no follow relationships yet."""
        self._followees.setdefault(user_id, set())
        self._followers.setdefault(user_id, set())

    def add_follow(self, follower: int, followee: int) -> bool:
        """Add edge ``follower -> followee``; returns False if it existed."""
        if follower == followee:
            raise ValueError(f"self-follow not allowed (user {follower})")
        self.add_node(follower)
        self.add_node(followee)
        if followee in self._followees[follower]:
            return False
        self._followees[follower].add(followee)
        self._followers[followee].add(follower)
        self._edge_count += 1
        return True

    def remove_follow(self, follower: int, followee: int) -> bool:
        """Remove edge ``follower -> followee``; returns False if absent."""
        if follower not in self._followees or followee not in self._followees[follower]:
            return False
        self._followees[follower].discard(followee)
        self._followers[followee].discard(follower)
        self._edge_count -= 1
        return True

    # -- queries ------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._followees)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._followees

    def nodes(self) -> Iterator[int]:
        return iter(self._followees)

    def follows(self, follower: int, followee: int) -> bool:
        return followee in self._followees.get(follower, ())

    def followers_of(self, user_id: int) -> frozenset[int]:
        """Users following ``user_id`` (notified when they broadcast)."""
        return frozenset(self._followers.get(user_id, ()))

    def followees_of(self, user_id: int) -> frozenset[int]:
        """Users that ``user_id`` follows."""
        return frozenset(self._followees.get(user_id, ()))

    def follower_count(self, user_id: int) -> int:
        return len(self._followers.get(user_id, ()))

    def followee_count(self, user_id: int) -> int:
        return len(self._followees.get(user_id, ()))

    def degree(self, user_id: int) -> int:
        """Total degree (in + out), used for average-degree statistics."""
        return self.follower_count(user_id) + self.followee_count(user_id)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate all ``(follower, followee)`` edges."""
        for follower, followees in self._followees.items():
            for followee in followees:
                yield follower, followee

    def undirected_neighbors(self, user_id: int) -> set[int]:
        """Neighbors ignoring edge direction (for clustering/path metrics)."""
        return set(self._followers.get(user_id, ())) | set(self._followees.get(user_id, ()))

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]]) -> "FollowGraph":
        graph = cls()
        for follower, followee in edges:
            graph.add_follow(follower, followee)
        return graph
