"""Directed follow graphs: a mutable dict-of-sets and a frozen CSR view.

:class:`FollowGraph` is the mutable representation the platform simulator
uses for incremental follow/unfollow updates.  :class:`CompiledGraph` is a
frozen compressed-sparse-row (CSR) snapshot — two int64 arrays per
direction — that the trace-generation and graph-metrics hot paths consume:
``follower_count`` is an O(1) array lookup instead of a set materialization,
and ``followees_of`` is an array slice instead of a frozenset copy.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Union

import numpy as np

#: Edge packing for the sort-based CSR fast path: an edge ``(src, dst)``
#: becomes the single int64 ``src << 32 | dst``, so lexicographic
#: ``(src, dst)`` order equals numeric key order and one ``np.sort`` of
#: keys replaces a two-pass ``np.lexsort`` plus a gather.  Valid whenever
#: node indices fit 31 bits (2.1B nodes — far above the paper's 12M).
_PACK_SHIFT = 32
_PACK_MASK = np.int64((1 << _PACK_SHIFT) - 1)
_PACK_MAX_NODES = 1 << 31


class FollowGraph:
    """A directed graph where an edge ``u -> v`` means "u follows v".

    Nodes are integer user IDs.  Followers of ``v`` are the in-neighbors;
    followees of ``u`` are the out-neighbors.  Duplicate edges and
    self-follows are rejected, matching platform semantics.
    """

    def __init__(self) -> None:
        self._followees: dict[int, set[int]] = {}
        self._followers: dict[int, set[int]] = {}
        self._edge_count = 0

    # -- construction -------------------------------------------------

    def add_node(self, user_id: int) -> None:
        """Register a user with no follow relationships yet."""
        self._followees.setdefault(user_id, set())
        self._followers.setdefault(user_id, set())

    def add_follow(self, follower: int, followee: int) -> bool:
        """Add edge ``follower -> followee``; returns False if it existed."""
        if follower == followee:
            raise ValueError(f"self-follow not allowed (user {follower})")
        self.add_node(follower)
        self.add_node(followee)
        if followee in self._followees[follower]:
            return False
        self._followees[follower].add(followee)
        self._followers[followee].add(follower)
        self._edge_count += 1
        return True

    def remove_follow(self, follower: int, followee: int) -> bool:
        """Remove edge ``follower -> followee``; returns False if absent."""
        if follower not in self._followees or followee not in self._followees[follower]:
            return False
        self._followees[follower].discard(followee)
        self._followers[followee].discard(follower)
        self._edge_count -= 1
        return True

    # -- queries ------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._followees)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._followees

    def nodes(self) -> Iterator[int]:
        return iter(self._followees)

    def follows(self, follower: int, followee: int) -> bool:
        return followee in self._followees.get(follower, ())

    def followers_of(self, user_id: int) -> frozenset[int]:
        """Users following ``user_id`` (notified when they broadcast)."""
        return frozenset(self._followers.get(user_id, ()))

    def followees_of(self, user_id: int) -> frozenset[int]:
        """Users that ``user_id`` follows."""
        return frozenset(self._followees.get(user_id, ()))

    def follower_count(self, user_id: int) -> int:
        return len(self._followers.get(user_id, ()))

    def followee_count(self, user_id: int) -> int:
        return len(self._followees.get(user_id, ()))

    def degree(self, user_id: int) -> int:
        """Total degree (in + out), used for average-degree statistics."""
        return self.follower_count(user_id) + self.followee_count(user_id)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate all ``(follower, followee)`` edges."""
        for follower, followees in self._followees.items():
            for followee in followees:
                yield follower, followee

    def undirected_neighbors(self, user_id: int) -> set[int]:
        """Neighbors ignoring edge direction (for clustering/path metrics)."""
        return set(self._followers.get(user_id, ())) | set(self._followees.get(user_id, ()))

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]]) -> "FollowGraph":
        graph = cls()
        for follower, followee in edges:
            graph.add_follow(follower, followee)
        return graph

    def compile(self) -> "CompiledGraph":
        """Freeze this graph into a :class:`CompiledGraph` CSR snapshot."""
        node_ids = np.fromiter(self._followees, dtype=np.int64, count=len(self._followees))
        node_ids.sort()
        count = self._edge_count
        src = np.empty(count, dtype=np.int64)
        dst = np.empty(count, dtype=np.int64)
        cursor = 0
        for follower, followees in self._followees.items():
            for followee in sorted(followees):
                src[cursor] = follower
                dst[cursor] = followee
                cursor += 1
        return CompiledGraph.from_edge_arrays(src, dst, node_ids=node_ids)


class CompiledGraph:
    """A frozen CSR view of a directed follow graph.

    Nodes are stored as a sorted ``node_ids`` array; edges as two CSR pairs:
    ``indptr``/``indices`` for out-adjacency (followees, sorted per node)
    and ``rindptr``/``rindices`` for in-adjacency (followers).  All arrays
    are int64.  Queries accept *original* user IDs; unknown IDs behave like
    isolated nodes (count 0, empty adjacency), matching the ``dict.get``
    defaults of :class:`FollowGraph`.

    When ``node_ids`` is exactly ``0..n-1`` (the shape the synthetic
    generator produces), ID-to-index translation is the identity and every
    query is a pure array operation.
    """

    __slots__ = ("node_ids", "indptr", "indices", "rindptr", "rindices", "_contiguous")

    def __init__(
        self,
        node_ids: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        rindptr: np.ndarray,
        rindices: np.ndarray,
    ) -> None:
        self.node_ids = node_ids
        self.indptr = indptr
        self.indices = indices
        self.rindptr = rindptr
        self.rindices = rindices
        n = len(node_ids)
        self._contiguous = bool(
            n == 0 or (node_ids[0] == 0 and node_ids[-1] == n - 1)
        )

    @classmethod
    def from_edge_arrays(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        n_nodes: Optional[int] = None,
        node_ids: Optional[np.ndarray] = None,
    ) -> "CompiledGraph":
        """Compile deduplicated ``src -> dst`` edge arrays into CSR form.

        Pass ``n_nodes`` for contiguous ``0..n-1`` node IDs, or an explicit
        sorted ``node_ids`` array otherwise.  Edges must reference known
        nodes and contain no duplicates or self-loops.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if node_ids is None:
            if n_nodes is None:
                raise ValueError("need n_nodes or node_ids")
            node_ids = np.arange(n_nodes, dtype=np.int64)
        n = len(node_ids)
        contiguous = bool(n == 0 or (node_ids[0] == 0 and node_ids[-1] == n - 1))
        if contiguous:
            src_idx, dst_idx = src, dst
        else:
            src_idx = np.searchsorted(node_ids, src)
            dst_idx = np.searchsorted(node_ids, dst)
        if len(src_idx) and (
            src_idx.min() < 0 or src_idx.max() >= n or dst_idx.min() < 0 or dst_idx.max() >= n
        ):
            raise ValueError("edge endpoints outside the node set")

        if n <= _PACK_MAX_NODES:
            # Sort-based fast path: one int64 sort per direction instead
            # of a two-key lexsort plus a permutation gather.
            keys = np.left_shift(src_idx, _PACK_SHIFT)
            np.bitwise_or(keys, dst_idx, out=keys)
            return cls._from_packed_keys(keys, node_ids)

        order = np.lexsort((dst_idx, src_idx))
        indices = dst_idx[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src_idx, minlength=n), out=indptr[1:])

        rorder = np.lexsort((src_idx, dst_idx))
        rindices = src_idx[rorder]
        rindptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(dst_idx, minlength=n), out=rindptr[1:])

        return cls(node_ids, indptr, indices, rindptr, rindices)

    @classmethod
    def from_packed_keys(
        cls, keys: np.ndarray, n_nodes: int, validate: bool = True
    ) -> "CompiledGraph":
        """Compile edges packed as ``src << 32 | dst`` int64 keys.

        The cheapest construction path: callers that already hold (or can
        build in place) the packed keys skip edge-array concatenation and
        lexsorts entirely.  ``keys`` is consumed — it is sorted in place
        and its storage reused for one of the output arrays.  Requires
        ``n_nodes <= 2**31`` and all endpoints within ``[0, n_nodes)``
        (checked when ``validate``; trusted generators may skip the
        extra full-array pass).
        """
        if n_nodes > _PACK_MAX_NODES:
            raise ValueError("packed-key compilation requires n_nodes <= 2**31")
        keys = np.asarray(keys, dtype=np.int64)
        return cls._from_packed_keys(
            keys, np.arange(n_nodes, dtype=np.int64), validate=validate
        )

    @classmethod
    def _from_packed_keys(
        cls, keys: np.ndarray, node_ids: np.ndarray, validate: bool = False
    ) -> "CompiledGraph":
        """CSR pair from packed edge keys (``keys`` is consumed).

        Buffer discipline keeps peak traffic at two extra edge-sized
        allocations: ``keys`` is sorted in place, shifted in place to the
        source halves, and finally overwritten with the reverse indices.
        """
        n = len(node_ids)
        keys.sort()
        if validate and len(keys):
            # Sorted, so the src range check is O(1); dst needs one pass.
            if keys[0] < 0 or int(keys[-1] >> _PACK_SHIFT) >= n:
                raise ValueError("edge endpoints outside the node set")
        indices = np.bitwise_and(keys, _PACK_MASK)
        if validate and len(indices) and int(indices.max()) >= n:
            raise ValueError("edge endpoints outside the node set")
        bounds = np.left_shift(np.arange(n + 1, dtype=np.int64), _PACK_SHIFT)
        indptr = np.searchsorted(keys, bounds)

        # Reverse direction: swap the packed halves and re-sort, reusing
        # the keys buffer (its sorted content is no longer needed).
        rkeys = np.left_shift(indices, _PACK_SHIFT)
        np.right_shift(keys, _PACK_SHIFT, out=keys)  # keys := src halves
        np.bitwise_or(rkeys, keys, out=rkeys)
        rkeys.sort()
        np.bitwise_and(rkeys, _PACK_MASK, out=keys)  # keys := rindices
        rindptr = np.searchsorted(rkeys, bounds)
        return cls(node_ids, indptr, indices, rindptr, keys)

    @classmethod
    def from_follow_graph(cls, graph: FollowGraph) -> "CompiledGraph":
        return graph.compile()

    def to_follow_graph(self) -> FollowGraph:
        """Thaw into a mutable :class:`FollowGraph` (Python-loop cost O(E))."""
        graph = FollowGraph()
        ids = self.node_ids.tolist()
        for node in ids:
            graph.add_node(node)
        src_idx = np.repeat(
            np.arange(len(ids), dtype=np.int64), np.diff(self.indptr)
        )
        for u, v in zip(self.node_ids[src_idx].tolist(), self.node_ids[self.indices].tolist()):
            graph.add_follow(u, v)
        return graph

    # -- index translation --------------------------------------------

    def _index_of(self, user_id: int) -> int:
        """Internal index of ``user_id``, or -1 if unknown."""
        n = len(self.node_ids)
        if self._contiguous:
            return user_id if 0 <= user_id < n else -1
        pos = int(np.searchsorted(self.node_ids, user_id))
        if pos < n and self.node_ids[pos] == user_id:
            return pos
        return -1

    # -- queries ------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.node_ids)

    @property
    def edge_count(self) -> int:
        return len(self.indices)

    def __contains__(self, user_id: int) -> bool:
        return self._index_of(user_id) >= 0

    def nodes(self) -> Iterator[int]:
        return iter(self.node_ids.tolist())

    def follows(self, follower: int, followee: int) -> bool:
        u = self._index_of(follower)
        v = self._index_of(followee)
        if u < 0 or v < 0:
            return False
        lo, hi = self.indptr[u], self.indptr[u + 1]
        pos = int(np.searchsorted(self.indices[lo:hi], v))
        return pos < hi - lo and self.indices[lo + pos] == v

    def followees_of(self, user_id: int) -> np.ndarray:
        """Users that ``user_id`` follows, as a sorted int64 array view."""
        u = self._index_of(user_id)
        if u < 0:
            return np.empty(0, dtype=np.int64)
        return self.node_ids[self.indices[self.indptr[u] : self.indptr[u + 1]]]

    def followers_of(self, user_id: int) -> np.ndarray:
        """Users following ``user_id``, as a sorted int64 array view."""
        u = self._index_of(user_id)
        if u < 0:
            return np.empty(0, dtype=np.int64)
        return self.node_ids[self.rindices[self.rindptr[u] : self.rindptr[u + 1]]]

    def follower_count(self, user_id: int) -> int:
        u = self._index_of(user_id)
        if u < 0:
            return 0
        return int(self.rindptr[u + 1] - self.rindptr[u])

    def followee_count(self, user_id: int) -> int:
        u = self._index_of(user_id)
        if u < 0:
            return 0
        return int(self.indptr[u + 1] - self.indptr[u])

    def degree(self, user_id: int) -> int:
        return self.follower_count(user_id) + self.followee_count(user_id)

    def in_degrees(self) -> np.ndarray:
        """In-degree per node, aligned with ``node_ids`` (O(n), no loop)."""
        return np.diff(self.rindptr)

    def out_degrees(self) -> np.ndarray:
        """Out-degree per node, aligned with ``node_ids``."""
        return np.diff(self.indptr)

    def total_degrees(self) -> np.ndarray:
        return self.in_degrees() + self.out_degrees()

    def in_degree_of(self, user_ids: np.ndarray) -> np.ndarray:
        """Vectorized follower counts for an array of user IDs.

        Unknown IDs get 0, mirroring the scalar :meth:`follower_count`.
        """
        user_ids = np.asarray(user_ids, dtype=np.int64)
        degrees = self.in_degrees()
        n = len(self.node_ids)
        if self._contiguous:
            known = (user_ids >= 0) & (user_ids < n)
            safe = np.where(known, user_ids, 0)
        else:
            pos = np.searchsorted(self.node_ids, user_ids)
            safe = np.minimum(pos, max(n - 1, 0))
            known = (pos < n) & (self.node_ids[safe] == user_ids) if n else np.zeros(len(user_ids), bool)
        if n == 0:
            return np.zeros(len(user_ids), dtype=np.int64)
        return np.where(known, degrees[safe], 0)

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """All edges as ``(src_ids, dst_ids)`` arrays (CSR order)."""
        src_idx = np.repeat(
            np.arange(len(self.node_ids), dtype=np.int64), np.diff(self.indptr)
        )
        return self.node_ids[src_idx], self.node_ids[self.indices]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate all ``(follower, followee)`` edges (Python-loop cost)."""
        src, dst = self.edge_arrays()
        return zip(src.tolist(), dst.tolist())

    def undirected_neighbors(self, user_id: int) -> set[int]:
        """Neighbors ignoring edge direction (for clustering/path metrics)."""
        u = self._index_of(user_id)
        if u < 0:
            return set()
        out = self.indices[self.indptr[u] : self.indptr[u + 1]]
        inc = self.rindices[self.rindptr[u] : self.rindptr[u + 1]]
        both = np.union1d(out, inc)
        return set(self.node_ids[both].tolist())


#: Either follow-graph representation; read-only consumers accept both.
AnyFollowGraph = Union[FollowGraph, CompiledGraph]
