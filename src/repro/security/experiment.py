"""The end-to-end proof-of-concept experiment (§7.1, Figure 18).

Reproduces the paper's validation setup on the simulated LAN:

* a victim broadcaster phone on WiFi, streaming RTMP packets (with a
  running-counter "stopwatch" payload demonstrating liveness) through the
  WiFi gateway to the ingest server,
* an attacker laptop on the *same* WiFi that ARP-spoofs the gateway,
  parses the victim's RTMP packets, and swaps video payloads for black
  frames,
* a remote viewer (on cellular — outside the LAN) receiving whatever the
  ingest server got.

The observable outcome matches Figure 18: after the attack starts, the
viewer's frames are black while the broadcaster's local preview still
shows the original video.  With the §7.2 signature defense enabled, the
server (and viewer) detect every tampered frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import hashlib

from repro.protocols.frames import VideoFrame
from repro.protocols.rtmp import RtmpPacket, RtmpParseError, parse_rtmp_packet
from repro.protocols.rtmps import TamperedRecordError, TlsLikeChannel
from repro.security.arp_spoof import ArpSpoofer
from repro.security.lan import GatewayHost, IpPacket, Lan, LanHost
from repro.security.signing import StreamKeyExchange, StreamSigner, StreamVerifier
from repro.security.tamper import BLACK_FRAME_PAYLOAD, RtmpTamperer

#: Payload prefix for legitimate "stopwatch" frames.
STOPWATCH_PREFIX = b"stopwatch:"


def stopwatch_payload(sequence: int) -> bytes:
    """The running-clock content the victim broadcasts."""
    return STOPWATCH_PREFIX + str(sequence).encode("ascii")


@dataclass
class TamperExperimentResult:
    """What each party observed."""

    frames_sent: int
    attack_started_at_sequence: int
    broadcaster_preview: list[bytes] = field(default_factory=list)
    viewer_frames: list[bytes] = field(default_factory=list)
    tampered_count: int = 0
    tokens_leaked: set[str] = field(default_factory=set)
    defense_enabled: bool = False
    rtmps_enabled: bool = False
    tampered_detected: int = 0
    tampered_missed: int = 0

    @property
    def viewer_black_frames(self) -> int:
        return sum(1 for payload in self.viewer_frames if payload == BLACK_FRAME_PAYLOAD)

    @property
    def broadcaster_black_frames(self) -> int:
        return sum(
            1 for payload in self.broadcaster_preview if payload == BLACK_FRAME_PAYLOAD
        )

    @property
    def attack_succeeded(self) -> bool:
        """Attack succeeds when the viewer sees black frames but the
        broadcaster's preview is untouched (and nothing was detected)."""
        return (
            self.viewer_black_frames > 0
            and self.broadcaster_black_frames == 0
            and self.tampered_detected == 0
        )


class TamperExperiment:
    """Builds the LAN, runs the broadcast, optionally attacks/defends."""

    def __init__(
        self,
        frames: int = 100,
        attack_from_sequence: int = 50,
        with_attack: bool = True,
        with_defense: bool = False,
        with_rtmps: bool = False,
        token: str = "broadcast-token-1234",
    ) -> None:
        if frames <= 0:
            raise ValueError("need at least one frame")
        if attack_from_sequence < 0:
            raise ValueError("attack start must be non-negative")
        if with_defense and with_rtmps:
            raise ValueError("pick one countermeasure: signatures or RTMPS")
        self.frames = frames
        self.attack_from_sequence = attack_from_sequence
        self.with_attack = with_attack
        self.with_defense = with_defense
        self.with_rtmps = with_rtmps
        self.token = token

    def run(self) -> TamperExperimentResult:
        result = TamperExperimentResult(
            frames_sent=self.frames,
            attack_started_at_sequence=self.attack_from_sequence,
            defense_enabled=self.with_defense,
            rtmps_enabled=self.with_rtmps,
        )

        # Key exchange happens over TLS before any RTMP flows; the in-path
        # attacker never sees the key.
        exchange = StreamKeyExchange()
        signer: Optional[StreamSigner] = None
        verifier: Optional[StreamVerifier] = None
        if self.with_defense:
            key = exchange.register(self.token)
            signer = StreamSigner(token=self.token, key=key)
            verifier = StreamVerifier(token=self.token, key=exchange.key_for(self.token))

        # Facebook Live's approach: the whole RTMP stream rides an
        # encrypted, authenticated channel (session secret established
        # during the TLS handshake, never visible on the LAN).
        sender_channel: Optional[TlsLikeChannel] = None
        receiver_channel: Optional[TlsLikeChannel] = None
        if self.with_rtmps:
            session_secret = hashlib.sha256(b"handshake" + self.token.encode()).digest()
            sender_channel = TlsLikeChannel(session_secret)
            receiver_channel = TlsLikeChannel(session_secret)

        # The "WAN": the ingest server and the remote viewer, reached via
        # the gateway.  The viewer is NOT on the LAN (cellular).
        def ingest(packet: IpPacket) -> None:
            payload = packet.payload
            if receiver_channel is not None:
                try:
                    payload = receiver_channel.open(payload)
                except TamperedRecordError:
                    result.tampered_detected += 1
                    return  # authenticated encryption drops forgeries
            try:
                rtmp = parse_rtmp_packet(payload)
            except RtmpParseError:
                return
            frame = rtmp.to_frame()
            if verifier is not None:
                ok = verifier.verify_frame(frame)
                if not ok:
                    if frame.payload == BLACK_FRAME_PAYLOAD:
                        result.tampered_detected += 1
                    return  # server drops unverifiable frames
            elif frame.payload == BLACK_FRAME_PAYLOAD:
                result.tampered_missed += 1
            result.viewer_frames.append(frame.payload)

        lan = Lan()
        GatewayHost("wifi-ap", "02:00:00:00:00:01", "192.168.1.1", lan, ingest)
        broadcaster = LanHost(
            "victim-phone",
            "02:00:00:00:00:02",
            "192.168.1.10",
            lan,
            gateway_ip="192.168.1.1",
        )

        tamperer = RtmpTamperer(start_sequence=self.attack_from_sequence)
        if self.with_attack:
            attacker = ArpSpoofer(
                "attacker-laptop", "02:00:00:00:00:66", "192.168.1.66", lan, tamperer
            )
            # Victim resolves the gateway once (normal behaviour)...
            broadcaster.resolve_mac("192.168.1.1")
            # ...then the attacker poisons its cache with an unsolicited reply.
            attacker.poison(broadcaster, "192.168.1.1")

        wowza_wan_ip = "54.0.0.10"
        for sequence in range(self.frames):
            frame = VideoFrame(
                sequence=sequence,
                capture_time=sequence * 0.040,
                is_keyframe=(sequence % 30 == 0),
                payload=stopwatch_payload(sequence),
            )
            # The phone screen shows what the camera captured, always.
            result.broadcaster_preview.append(frame.payload)
            if signer is not None:
                frame = signer.sign_frame(frame)
            packet = RtmpPacket.from_frame(self.token, frame)
            wire = packet.encode()
            if sender_channel is not None:
                wire = sender_channel.seal(wire)
            broadcaster.send_ip(wowza_wan_ip, wire)

        result.tampered_count = tamperer.packets_tampered
        result.tokens_leaked = set(tamperer.tokens_observed)
        return result


def run_attack_matrix() -> dict[str, TamperExperimentResult]:
    """The Figure 18 scenarios: baseline, attack, attack+signatures, plus
    Facebook Live's RTMPS (full encryption) for comparison."""
    return {
        "no_attack": TamperExperiment(with_attack=False).run(),
        "attack": TamperExperiment(with_attack=True).run(),
        "attack_with_defense": TamperExperiment(with_attack=True, with_defense=True).run(),
        "attack_with_rtmps": TamperExperiment(with_attack=True, with_rtmps=True).run(),
    }
