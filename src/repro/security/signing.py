"""The lightweight integrity defense (§7.2).

The paper's proposal: after obtaining the broadcast token over HTTPS, the
broadcaster securely exchanges key material with the ingest server
(TLS-protected control channel), then embeds a signature over a one-way
hash of each frame in the stream metadata.  The server — and, with the key
forwarded, every viewer — verifies that video frames were not modified in
flight.  Overhead can be reduced by signing only selected frames or by
signing a hash chained across multiple frames.

The signature primitive here is HMAC-SHA256.  The paper proposes
public-key signatures; HMAC under a pairwise-exchanged key preserves the
protocol structure and the integrity property against an in-path attacker
who never sees the key (exchanged over TLS), while staying inside the
standard library.  The cost model separates "full", "selective" and
"chained" strategies for the overhead ablation.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass, field
from typing import Optional

from repro.protocols.frames import VideoFrame


def _frame_digest(token: str, frame: VideoFrame) -> bytes:
    """The one-way hash the signature covers: binds identity, position,
    time and content, so frames cannot be re-ordered, replayed across
    broadcasts, or altered."""
    hasher = hashlib.sha256()
    hasher.update(token.encode("utf-8"))
    hasher.update(frame.sequence.to_bytes(8, "big"))
    hasher.update(int(frame.capture_time * 1e6).to_bytes(12, "big", signed=True))
    hasher.update(frame.payload)
    return hasher.digest()


@dataclass
class StreamKeyExchange:
    """Key establishment over the TLS-protected control channel.

    The broadcaster generates key material and registers it with the
    service alongside the broadcast token; the service forwards it to
    viewers over their own TLS sessions.  The in-path RTMP attacker never
    observes it.
    """

    _keys: dict[str, bytes] = field(default_factory=dict)

    def register(self, token: str) -> bytes:
        """Broadcaster side: create and register a key for ``token``."""
        if token in self._keys:
            raise ValueError(f"key already registered for {token}")
        key = secrets.token_bytes(32)
        self._keys[token] = key
        return key

    def key_for(self, token: str) -> bytes:
        """Server/viewer side: fetch the key over the secure channel."""
        if token not in self._keys:
            raise KeyError(f"no key registered for {token}")
        return self._keys[token]


@dataclass
class StreamSigner:
    """Signs every frame (the baseline defense)."""

    token: str
    key: bytes
    frames_signed: int = field(default=0, init=False)

    def sign_frame(self, frame: VideoFrame) -> VideoFrame:
        signature = hmac.new(self.key, _frame_digest(self.token, frame), hashlib.sha256)
        self.frames_signed += 1
        return frame.with_signature(signature.digest())


@dataclass
class StreamVerifier:
    """Verifies frame signatures; counts tampered/unsigned frames."""

    token: str
    key: bytes
    verified: int = field(default=0, init=False)
    rejected: int = field(default=0, init=False)
    unsigned: int = field(default=0, init=False)

    def verify_frame(self, frame: VideoFrame) -> bool:
        if frame.signature is None:
            self.unsigned += 1
            return False
        expected = hmac.new(
            self.key, _frame_digest(self.token, frame), hashlib.sha256
        ).digest()
        if hmac.compare_digest(expected, frame.signature):
            self.verified += 1
            return True
        self.rejected += 1
        return False


@dataclass
class SelectiveSigner:
    """Signs every ``stride``-th frame (reduced overhead, §7.2).

    Unsigned frames between signed ones are unprotected individually; the
    verifier treats a valid signed frame as vouching for stream liveness
    but tampering between anchors goes undetected — the trade-off the
    overhead ablation quantifies.
    """

    token: str
    key: bytes
    stride: int = 25
    frames_signed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.stride <= 0:
            raise ValueError("stride must be positive")

    def sign_frame(self, frame: VideoFrame) -> VideoFrame:
        if frame.sequence % self.stride != 0:
            return frame
        signature = hmac.new(self.key, _frame_digest(self.token, frame), hashlib.sha256)
        self.frames_signed += 1
        return frame.with_signature(signature.digest())


@dataclass
class ChainedSigner:
    """Signs a hash across each window of ``window`` frames.

    Buffers frame digests; when the window fills, the *last* frame of the
    window carries a signature over the chained digest — every frame in
    the window is covered by one signature (full protection, 1/window
    signing cost, at the price of ``window`` frames of verification
    latency).
    """

    token: str
    key: bytes
    window: int = 25
    frames_signed: int = field(default=0, init=False)
    _pending: list[bytes] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")

    def sign_frame(self, frame: VideoFrame) -> VideoFrame:
        self._pending.append(_frame_digest(self.token, frame))
        if len(self._pending) < self.window:
            return frame
        chained = hashlib.sha256(b"".join(self._pending)).digest()
        self._pending = []
        signature = hmac.new(self.key, chained, hashlib.sha256)
        self.frames_signed += 1
        return frame.with_signature(signature.digest())


@dataclass
class ChainedVerifier:
    """Verifies :class:`ChainedSigner` windows."""

    token: str
    key: bytes
    window: int = 25
    windows_verified: int = field(default=0, init=False)
    windows_rejected: int = field(default=0, init=False)
    _pending: list[bytes] = field(default_factory=list, init=False)

    def observe_frame(self, frame: VideoFrame) -> Optional[bool]:
        """Feed frames in order; returns a verdict when a window closes."""
        self._pending.append(_frame_digest(self.token, frame))
        if len(self._pending) < self.window:
            return None
        chained = hashlib.sha256(b"".join(self._pending)).digest()
        self._pending = []
        expected = hmac.new(self.key, chained, hashlib.sha256).digest()
        if frame.signature is not None and hmac.compare_digest(expected, frame.signature):
            self.windows_verified += 1
            return True
        self.windows_rejected += 1
        return False


@dataclass(frozen=True)
class SigningCostModel:
    """Relative CPU cost of the defense variants vs full TLS (RTMPS).

    Unit: cost of hashing+signing one frame = 1.  TLS encrypts *all* bytes
    of every frame; signing hashes every frame but pays the (amortized)
    signature only per signed unit.
    """

    hash_cost_per_frame: float = 0.25  # SHA-256 over one frame
    signature_cost: float = 0.75  # HMAC/signature finalization
    tls_cost_per_frame: float = 2.2  # encrypt the full frame payload

    def full_signing_cost(self, frames: int) -> float:
        return frames * (self.hash_cost_per_frame + self.signature_cost)

    def selective_cost(self, frames: int, stride: int) -> float:
        if stride <= 0:
            raise ValueError("stride must be positive")
        signed = frames // stride + (1 if frames % stride else 0)
        return signed * (self.hash_cost_per_frame + self.signature_cost)

    def chained_cost(self, frames: int, window: int) -> float:
        if window <= 0:
            raise ValueError("window must be positive")
        windows = frames // window + (1 if frames % window else 0)
        return frames * self.hash_cost_per_frame + windows * self.signature_cost

    def rtmps_cost(self, frames: int) -> float:
        return frames * self.tls_cost_per_frame
