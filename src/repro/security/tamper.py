"""RTMP stream tampering (§7.1).

The attack primitive: parse intercepted RTMP bytes, replace the video
payload with attacker-chosen content (the paper's proof of concept used
black frames), re-encode, and pass the packet along.  Works identically at
the broadcaster's edge network (altering the stream for *all* viewers) and
at a viewer's network (altering it for a *selected* audience).

Everything here operates on real bytes through the
:mod:`repro.protocols.rtmp` wire format — exactly what a custom parser on
a sniffed socket would see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.protocols.rtmp import (
    RtmpPacket,
    RtmpPacketType,
    RtmpParseError,
    parse_rtmp_packet,
)

#: A stand-in for an encoded all-black video frame.
BLACK_FRAME_PAYLOAD = b"\x00" * 64


@dataclass
class RtmpTamperer:
    """Rewrites video payloads inside RTMP packets.

    Parameters
    ----------
    replacement:
        Payload to substitute (default: black frames).
    start_sequence:
        Only tamper frames with sequence >= this — the attack "can
        commence anytime during the broadcast".
    predicate:
        Optional extra filter on the parsed packet.
    """

    replacement: bytes = BLACK_FRAME_PAYLOAD
    start_sequence: int = 0
    predicate: Optional[Callable[[RtmpPacket], bool]] = None
    packets_seen: int = field(default=0, init=False)
    packets_tampered: int = field(default=0, init=False)
    tokens_observed: set[str] = field(default_factory=set, init=False)

    def __call__(self, data: bytes) -> bytes:
        """Transform raw intercepted bytes (PayloadTransform signature)."""
        try:
            packet = parse_rtmp_packet(data)
        except RtmpParseError:
            return data  # not RTMP; pass through untouched
        self.packets_seen += 1
        # Issue (1) of §7.1: the broadcast token crosses the wire in
        # plaintext — a passive observer collects it for free.
        self.tokens_observed.add(packet.token)
        if not self._should_tamper(packet):
            return data
        self.packets_tampered += 1
        return packet.with_body(self.replacement).encode()

    def _should_tamper(self, packet: RtmpPacket) -> bool:
        if packet.packet_type is not RtmpPacketType.VIDEO:
            return False
        if packet.sequence < self.start_sequence:
            return False
        if self.predicate is not None and not self.predicate(packet):
            return False
        return True
