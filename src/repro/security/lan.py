"""A simulated layer-2 LAN with ARP.

Models the edge network of §7.1's attack scenario: hosts on a shared WiFi
segment resolve IP→MAC bindings via ARP and — crucially — accept
*unsolicited* ARP replies, updating their caches.  That classic weakness is
what lets the attacker interpose on the broadcaster↔gateway path without
controlling the access point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

BROADCAST_MAC = "ff:ff:ff:ff:ff:ff"


@dataclass(frozen=True)
class IpPacket:
    """An IP datagram carrying opaque payload bytes."""

    src_ip: str
    dst_ip: str
    payload: bytes

    def with_payload(self, payload: bytes) -> "IpPacket":
        return IpPacket(src_ip=self.src_ip, dst_ip=self.dst_ip, payload=payload)


class ArpOp(enum.Enum):
    REQUEST = "request"
    REPLY = "reply"


@dataclass(frozen=True)
class ArpMessage:
    """An ARP request or (possibly unsolicited) reply."""

    op: ArpOp
    sender_ip: str
    sender_mac: str
    target_ip: str


@dataclass(frozen=True)
class EthernetFrame:
    """A layer-2 frame carrying either an IP packet or an ARP message."""

    src_mac: str
    dst_mac: str
    ip: Optional[IpPacket] = None
    arp: Optional[ArpMessage] = None

    def __post_init__(self) -> None:
        if (self.ip is None) == (self.arp is None):
            raise ValueError("frame must carry exactly one of ip/arp")


class Lan:
    """A broadcast segment delivering frames between attached hosts."""

    def __init__(self) -> None:
        self._hosts: dict[str, "LanHost"] = {}
        self.frames_transmitted = 0

    def attach(self, host: "LanHost") -> None:
        if host.mac in self._hosts:
            raise ValueError(f"duplicate MAC {host.mac}")
        self._hosts[host.mac] = host

    def transmit(self, frame: EthernetFrame) -> None:
        """Deliver a frame to its destination (or all hosts on broadcast)."""
        self.frames_transmitted += 1
        if frame.dst_mac == BROADCAST_MAC:
            for host in list(self._hosts.values()):
                if host.mac != frame.src_mac:
                    host.on_frame(frame)
            return
        target = self._hosts.get(frame.dst_mac)
        if target is not None:
            target.on_frame(frame)

    def host_by_ip(self, ip: str) -> Optional["LanHost"]:
        for host in self._hosts.values():
            if host.ip == ip:
                return host
        return None


class LanHost:
    """One host on the segment.

    ``packet_handler`` is invoked for IP packets addressed to this host's
    IP.  Subclasses (gateway, attacker) override :meth:`on_ip_packet` for
    forwarding behaviour.
    """

    def __init__(
        self,
        name: str,
        mac: str,
        ip: str,
        lan: Lan,
        packet_handler: Optional[Callable[[IpPacket], None]] = None,
        gateway_ip: Optional[str] = None,
    ) -> None:
        self.name = name
        self.mac = mac
        self.ip = ip
        self.lan = lan
        self.gateway_ip = gateway_ip
        self.arp_table: dict[str, str] = {}
        self.packet_handler = packet_handler
        self.packets_received: list[IpPacket] = []
        lan.attach(self)

    # -- sending ---------------------------------------------------------

    def _same_subnet(self, ip: str) -> bool:
        """/24 subnet check — enough for a home/office WiFi segment."""
        return ip.rsplit(".", 1)[0] == self.ip.rsplit(".", 1)[0]

    def send_ip(self, dst_ip: str, payload: bytes) -> None:
        """Send an IP packet; off-subnet traffic goes via the gateway.

        The next-hop MAC comes from the ARP cache — which is exactly what
        the spoofing attack poisons.
        """
        if self._same_subnet(dst_ip):
            next_hop = dst_ip
        elif self.gateway_ip is not None:
            next_hop = self.gateway_ip
        else:
            raise RuntimeError(f"{self.name}: no route to {dst_ip}")
        mac = self.resolve_mac(next_hop)
        if mac is None:
            raise RuntimeError(f"{self.name}: no ARP entry for {next_hop}")
        packet = IpPacket(src_ip=self.ip, dst_ip=dst_ip, payload=payload)
        self.lan.transmit(EthernetFrame(src_mac=self.mac, dst_mac=mac, ip=packet))

    def resolve_mac(self, ip: str) -> Optional[str]:
        if ip not in self.arp_table:
            self._arp_request(ip)
        return self.arp_table.get(ip)

    def _arp_request(self, ip: str) -> None:
        request = ArpMessage(
            op=ArpOp.REQUEST, sender_ip=self.ip, sender_mac=self.mac, target_ip=ip
        )
        self.lan.transmit(
            EthernetFrame(src_mac=self.mac, dst_mac=BROADCAST_MAC, arp=request)
        )

    # -- receiving -----------------------------------------------------------

    def on_frame(self, frame: EthernetFrame) -> None:
        if frame.arp is not None:
            self._on_arp(frame.arp)
        elif frame.ip is not None:
            self.on_ip_packet(frame.ip)

    def _on_arp(self, message: ArpMessage) -> None:
        if message.op is ArpOp.REQUEST:
            # Learn the requester, answer if we own the IP.
            self.arp_table[message.sender_ip] = message.sender_mac
            if message.target_ip == self.ip:
                reply = ArpMessage(
                    op=ArpOp.REPLY,
                    sender_ip=self.ip,
                    sender_mac=self.mac,
                    target_ip=message.sender_ip,
                )
                self.lan.transmit(
                    EthernetFrame(
                        src_mac=self.mac, dst_mac=message.sender_mac, arp=reply
                    )
                )
        else:
            # THE VULNERABILITY EXPLOITED BY ARP SPOOFING: replies are
            # accepted and cached even when unsolicited.
            self.arp_table[message.sender_ip] = message.sender_mac

    def on_ip_packet(self, packet: IpPacket) -> None:
        """Default behaviour: consume packets addressed to me."""
        if packet.dst_ip != self.ip:
            return  # not mine; a plain host drops it
        self.packets_received.append(packet)
        if self.packet_handler is not None:
            self.packet_handler(packet)


class GatewayHost(LanHost):
    """The WiFi AP / router: relays LAN traffic to an upstream handler.

    Packets addressed to non-LAN IPs are handed to ``upstream`` (which in
    the experiments feeds the simulated Wowza server) and replies can be
    injected back with :meth:`inject_from_wan`.
    """

    def __init__(
        self,
        name: str,
        mac: str,
        ip: str,
        lan: Lan,
        upstream: Optional[Callable[[IpPacket], None]] = None,
    ) -> None:
        super().__init__(name, mac, ip, lan)
        self.upstream = upstream
        self.forwarded: list[IpPacket] = []

    def on_ip_packet(self, packet: IpPacket) -> None:
        if packet.dst_ip == self.ip:
            super().on_ip_packet(packet)
            return
        if self.lan.host_by_ip(packet.dst_ip) is not None:
            # Intra-LAN traffic does not cross the gateway.
            return
        self.forwarded.append(packet)
        if self.upstream is not None:
            self.upstream(packet)

    def inject_from_wan(self, dst_ip: str, payload: bytes) -> None:
        """Deliver a WAN-originated packet onto the LAN."""
        mac = self.resolve_mac(dst_ip)
        if mac is None:
            raise RuntimeError(f"gateway: unknown LAN host {dst_ip}")
        packet = IpPacket(src_ip="0.0.0.0", dst_ip=dst_ip, payload=payload)
        self.lan.transmit(EthernetFrame(src_mac=self.mac, dst_mac=mac, ip=packet))
