"""Stream-hijacking attack and defense (§7).

Periscope and Meerkat sent public-broadcast video as plaintext,
unauthenticated RTMP.  This package reproduces the paper's proof of
concept end to end on real packet bytes: a simulated WiFi LAN with ARP, an
ARP-spoofing man-in-the-middle, an RTMP parser that swaps video payloads
for black frames, and the proposed lightweight defense — per-frame
signatures embedded in the stream metadata, with selective and chained
variants that reduce signing overhead.
"""

from repro.security.lan import EthernetFrame, IpPacket, Lan, LanHost, BROADCAST_MAC
from repro.security.arp_spoof import ArpSpoofer
from repro.security.tamper import BLACK_FRAME_PAYLOAD, RtmpTamperer
from repro.security.signing import (
    ChainedSigner,
    SelectiveSigner,
    SigningCostModel,
    StreamKeyExchange,
    StreamSigner,
    StreamVerifier,
)
from repro.security.experiment import TamperExperiment, TamperExperimentResult

__all__ = [
    "Lan",
    "LanHost",
    "IpPacket",
    "EthernetFrame",
    "BROADCAST_MAC",
    "ArpSpoofer",
    "RtmpTamperer",
    "BLACK_FRAME_PAYLOAD",
    "StreamSigner",
    "StreamVerifier",
    "SelectiveSigner",
    "ChainedSigner",
    "SigningCostModel",
    "StreamKeyExchange",
    "TamperExperiment",
    "TamperExperimentResult",
]
