"""ARP-spoofing man-in-the-middle (§7.1).

The attacker joins the victim's WiFi network (no control of the AP
needed), sends falsified ARP replies so the victim maps the gateway's IP
to the attacker's MAC, and thereafter receives the victim's upstream
traffic.  Intercepted packets run through a ``transform`` (the RTMP
tamperer) and are silently re-forwarded to the real gateway — the victim
observes nothing.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.security.lan import (
    ArpMessage,
    ArpOp,
    EthernetFrame,
    IpPacket,
    Lan,
    LanHost,
)

#: Transforms an intercepted payload; returning the input forwards untouched.
PayloadTransform = Callable[[bytes], bytes]


class ArpSpoofer(LanHost):
    """An attacker host that poisons ARP caches and relays traffic."""

    def __init__(
        self,
        name: str,
        mac: str,
        ip: str,
        lan: Lan,
        transform: Optional[PayloadTransform] = None,
    ) -> None:
        super().__init__(name, mac, ip, lan)
        self.transform = transform
        #: IPs whose traffic we impersonate -> the true MAC to relay to.
        self._impersonated: dict[str, str] = {}
        self.intercepted: list[IpPacket] = []
        self.relayed: list[IpPacket] = []

    def poison(self, victim: LanHost, target_ip: str) -> None:
        """Tell ``victim`` that ``target_ip`` lives at the attacker's MAC.

        Records the true MAC first so intercepted traffic can be relayed.
        """
        true_mac = victim.arp_table.get(target_ip)
        if true_mac is None:
            owner = self.lan.host_by_ip(target_ip)
            if owner is None:
                raise RuntimeError(f"cannot find true owner of {target_ip}")
            true_mac = owner.mac
        self._impersonated[target_ip] = true_mac
        spoof = ArpMessage(
            op=ArpOp.REPLY, sender_ip=target_ip, sender_mac=self.mac, target_ip=victim.ip
        )
        self.lan.transmit(EthernetFrame(src_mac=self.mac, dst_mac=victim.mac, arp=spoof))

    def on_ip_packet(self, packet: IpPacket) -> None:
        if packet.dst_ip == self.ip:
            super().on_ip_packet(packet)
            return
        true_mac = self._relay_mac_for(packet.dst_ip)
        if true_mac is None:
            return  # not traffic we hijacked
        self.intercepted.append(packet)
        payload = packet.payload
        if self.transform is not None:
            payload = self.transform(payload)
        relayed = packet.with_payload(payload)
        self.relayed.append(relayed)
        self.lan.transmit(
            EthernetFrame(src_mac=self.mac, dst_mac=true_mac, ip=relayed)
        )

    def _relay_mac_for(self, dst_ip: str) -> Optional[str]:
        """True next-hop MAC for hijacked traffic.

        Direct hit: we impersonate ``dst_ip`` itself.  Indirect hit: the
        destination is off-subnet and we impersonate the victim's gateway,
        so the packet reached us on its way out of the LAN.
        """
        if dst_ip in self._impersonated:
            return self._impersonated[dst_ip]
        if not self._same_subnet(dst_ip):
            for impersonated_ip, true_mac in self._impersonated.items():
                if self._same_subnet(impersonated_ip):
                    return true_mac
        return None
