"""Interactivity analysis: what delay does to feedback (§1's motivation).

The paper's introduction argues that delivery delay corrupts the
real-time feedback loop: a lagging viewer sends "hearts" about a moment
the broadcaster showed seconds ago, and the broadcaster misattributes
them to whatever is on screen *now*; a delayed viewer votes after the
poll has closed.  This module quantifies both effects on top of the
delay-breakdown machinery:

* **heart staleness** — how old the referenced content is when a heart
  reaches the broadcaster, per delivery tier;
* **misattribution** — the probability a heart lands while a *different*
  scene is showing (scenes change every ``scene_length_s``);
* **poll participation** — the fraction of viewers whose answer to an
  in-stream poll arrives before the poll closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.delay_breakdown import ControlledExperiment
from repro.protocols.messages import MessageChannel


@dataclass(frozen=True)
class TierInteractivity:
    """Feedback quality for one delivery tier."""

    tier: str
    video_lag_s: float
    mean_heart_staleness_s: float
    misattribution_rate: float
    poll_participation: float


@dataclass
class InteractivityStudy:
    """Evaluates feedback quality across the RTMP and HLS tiers.

    Parameters
    ----------
    scene_length_s:
        How long one "moment" lasts on stream; a heart arriving after the
        moment ended is misattributed.
    poll_window_s:
        How long the broadcaster leaves an audience poll open.
    reaction_time_s:
        Human delay between seeing a moment and tapping.
    """

    scene_length_s: float = 8.0
    poll_window_s: float = 15.0
    reaction_time_s: float = 1.5
    seed: int = 31
    samples_per_tier: int = 2000
    message_channel: MessageChannel = field(
        default_factory=lambda: MessageChannel(broadcast_id=0)
    )

    def __post_init__(self) -> None:
        if self.scene_length_s <= 0 or self.poll_window_s <= 0:
            raise ValueError("scene length and poll window must be positive")
        if self.reaction_time_s < 0:
            raise ValueError("reaction time must be non-negative")

    def run(
        self,
        repetitions: int = 3,
        duration_s: float = 90.0,
    ) -> dict[str, TierInteractivity]:
        """Measure both tiers using the controlled-experiment delays."""
        rtmp, hls = ControlledExperiment(seed=self.seed, duration_s=duration_s).run(
            repetitions=repetitions
        )
        return {
            "rtmp": self.evaluate_tier("rtmp", rtmp.total_s),
            "hls": self.evaluate_tier("hls", hls.total_s),
        }

    def evaluate_tier(self, tier: str, video_lag_s: float) -> TierInteractivity:
        """Feedback quality for a tier with the given end-to-end video lag.

        A heart about the moment starting at t=0 is sent at
        ``video_lag + reaction`` and arrives after the (fast) message
        channel's latency.  It is misattributed when it lands after the
        moment's scene ended.
        """
        if video_lag_s < 0:
            raise ValueError("video lag must be non-negative")
        rng = np.random.default_rng(self.seed + hash(tier) % 1000)
        reactions = rng.exponential(self.reaction_time_s, size=self.samples_per_tier)
        message_delays = np.array(
            [self.message_channel.delivery_latency(rng) for _ in range(self.samples_per_tier)]
        )
        # The moment occurs uniformly inside its scene.
        offset_in_scene = rng.uniform(0.0, self.scene_length_s, size=self.samples_per_tier)
        staleness = video_lag_s + reactions + message_delays
        arrival_in_scene = offset_in_scene + staleness
        misattributed = arrival_in_scene > self.scene_length_s
        poll_answered_in_time = staleness <= self.poll_window_s
        return TierInteractivity(
            tier=tier,
            video_lag_s=video_lag_s,
            mean_heart_staleness_s=float(staleness.mean()),
            misattribution_rate=float(misattributed.mean()),
            poll_participation=float(poll_answered_in_time.mean()),
        )

    def lag_sweep(self, lags_s: list[float]) -> dict[float, TierInteractivity]:
        """Feedback quality as a pure function of video lag (for plots)."""
        return {lag: self.evaluate_tier(f"lag{lag:g}", lag) for lag in lags_s}
