"""Scalability analysis (§5.2 "Scalability", Figure 14).

Two complementary instruments:

* :func:`scalability_sweep` evaluates the analytic
  :class:`~repro.cdn.server_load.ServerLoadModel` over a viewer-count
  sweep — this regenerates Figure 14's curves (the paper measured a real
  Wowza engine; our substitute prices per-frame vs per-poll operations).
* :func:`measure_operations` validates the model's *operation counts*
  against the event-level CDN simulation: it streams one broadcast to N
  RTMP or N HLS viewers and counts the work the servers actually did.
  The per-viewer operation ratio (~25 frame-pushes/s vs ~0.4 polls/s) is
  the mechanism behind RTMP's steeper CPU curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cdn.fastly import FastlyEdge
from repro.cdn.server_load import LoadPoint, ServerLoadModel
from repro.cdn.transfer import TransferModel
from repro.cdn.wowza import WowzaIngest
from repro.client.broadcaster import BroadcasterClient
from repro.client.network import LastMileLink
from repro.client.viewer_client import HlsViewerClient, RtmpViewerClient
from repro.geo.datacenters import FASTLY_DATACENTERS, WOWZA_DATACENTERS
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams


def scalability_sweep(
    viewer_counts: list[int],
    model: ServerLoadModel | None = None,
) -> dict[str, list[LoadPoint]]:
    """Figure 14: CPU/memory curves for RTMP and HLS over a viewer sweep."""
    load_model = model or ServerLoadModel()
    return {
        "rtmp": load_model.load_curve(viewer_counts, "rtmp"),
        "hls": load_model.load_curve(viewer_counts, "hls"),
    }


@dataclass(frozen=True)
class OperationCounts:
    """Server-side work measured in the event simulation."""

    protocol: str
    viewers: int
    duration_s: float
    frame_pushes: int
    polls_served: int
    chunks_assembled: int

    @property
    def ops_per_viewer_second(self) -> float:
        ops = self.frame_pushes + self.polls_served
        if self.viewers == 0 or self.duration_s == 0:
            return 0.0
        return ops / (self.viewers * self.duration_s)


def measure_operations(
    protocol: str,
    viewers: int,
    duration_s: float = 30.0,
    seed: int = 11,
) -> OperationCounts:
    """Stream one broadcast to ``viewers`` clients and count server work."""
    if protocol not in ("rtmp", "hls"):
        raise ValueError(f"unknown protocol {protocol!r}")
    if viewers < 0:
        raise ValueError("viewer count must be non-negative")
    streams = RandomStreams(seed)
    simulator = Simulator()
    wowza = WowzaIngest(WOWZA_DATACENTERS[0], simulator)
    broadcast_id = 1

    uplink = LastMileLink.stable_wifi(streams.get("uplink"))
    broadcaster = BroadcasterClient(
        broadcast_id=broadcast_id,
        token="load-test",
        simulator=simulator,
        wowza=wowza,
        uplink=uplink,
    )

    edge = None
    hls_clients: list[HlsViewerClient] = []
    if protocol == "hls":
        edge = FastlyEdge(
            FASTLY_DATACENTERS[0], simulator, TransferModel(), streams.get("edge")
        )
        edge.attach_broadcast(broadcast_id, wowza)

    broadcaster.start(start_time=0.0, duration_s=duration_s)

    poll_rng = streams.get("poll")
    for index in range(viewers):
        downlink = LastMileLink.stable_wifi(streams.get(f"down/{index}"))
        if protocol == "rtmp":
            client = RtmpViewerClient(
                viewer_id=index, broadcast_id=broadcast_id,
                simulator=simulator, downlink=downlink,
            )
            client.attach(wowza)
        else:
            assert edge is not None
            hls_client = HlsViewerClient(
                viewer_id=index,
                broadcast_id=broadcast_id,
                simulator=simulator,
                edge=edge,
                downlink=downlink,
                poll_interval_s=float(poll_rng.uniform(2.0, 2.8)),
                stop_after=duration_s,
            )
            hls_client.start_polling(first_poll_at=float(poll_rng.uniform(0.0, 2.8)))
            hls_clients.append(hls_client)

    simulator.run(until=duration_s + 20.0)

    record = wowza.record_for(broadcast_id)
    frames_ingested = len(record.frame_arrivals)
    if protocol == "rtmp":
        return OperationCounts(
            protocol="rtmp",
            viewers=viewers,
            duration_s=duration_s,
            frame_pushes=frames_ingested * viewers,
            polls_served=0,
            chunks_assembled=len(record.chunk_ready),
        )
    assert edge is not None
    return OperationCounts(
        protocol="hls",
        viewers=viewers,
        duration_s=duration_s,
        frame_pushes=0,
        polls_served=edge.poll_count(broadcast_id),
        chunks_assembled=len(record.chunk_ready),
    )


def cpu_from_operations(counts: OperationCounts, model: ServerLoadModel | None = None) -> float:
    """Convert measured operation counts into the model's CPU estimate."""
    load_model = model or ServerLoadModel()
    if counts.duration_s <= 0:
        raise ValueError("duration must be positive")
    push_rate = counts.frame_pushes / counts.duration_s
    poll_rate = counts.polls_served / counts.duration_s
    chunk_rate = counts.chunks_assembled / counts.duration_s
    cpu = (
        load_model.base_cpu_percent
        + push_rate * load_model.cpu_per_frame_push
        + poll_rate * load_model.cpu_per_poll
        + (chunk_rate * load_model.cpu_per_chunk_assembly if counts.protocol == "hls" else 0.0)
    )
    return min(cpu, load_model.max_cpu_percent)


def operation_ratio(duration_s: float = 30.0, viewers: int = 20, seed: int = 11) -> float:
    """RTMP-to-HLS per-viewer operation ratio (the ~70x mechanism)."""
    rtmp = measure_operations("rtmp", viewers, duration_s, seed)
    hls = measure_operations("hls", viewers, duration_s, seed)
    if hls.ops_per_viewer_second == 0:
        return float("inf")
    return rtmp.ops_per_viewer_second / hls.ops_per_viewer_second
