"""End-to-end delay breakdown (§4.2–§5.1, Figures 10–11).

Reimplements the paper's controlled experiment: one broadcaster phone, one
RTMP viewer and one HLS viewer, all on stable WiFi, streaming through the
simulated CDN.  Every timestamp of Figure 10 is recorded and the
end-to-end delay decomposed:

* RTMP (per frame): upload (②−①), last-mile (③−②), client-buffering
  (④−③).  Paper total: ~1.4 s.
* HLS (per chunk): upload (⑥−⑤), chunking (⑦−⑥), Wowza2Fastly (⑪−⑦),
  viewer polling (⑭−⑪), last-mile (⑮−⑭), client-buffering (⑰−⑮).
  Paper total: ~11.7 s, dominated by buffering 6.9 s, chunking 3 s and
  polling 1.2 s.

The experiment is repeated (the paper used 10 repetitions) and components
averaged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cdn.assignment import CdnAssignment
from repro.cdn.fastly import FastlyEdge
from repro.cdn.transfer import TransferModel
from repro.cdn.wowza import WowzaIngest
from repro.client.broadcaster import BroadcasterClient
from repro.client.network import LastMileLink
from repro.client.viewer_client import HlsViewerClient, RtmpViewerClient
from repro.core.playback import PlaybackConfig, simulate_playback
from repro.crawler.delay_crawler import DelayCrawler
from repro.geo.coordinates import GeoPoint
from repro.platform.apps import AppProfile, PERISCOPE_PROFILE
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams

#: Component order used in Figure 11's stacked bars.
RTMP_COMPONENTS = ("upload", "last_mile", "buffering")
HLS_COMPONENTS = ("upload", "chunking", "wowza2fastly", "polling", "last_mile", "buffering")


@dataclass(frozen=True)
class DelayBreakdown:
    """Mean per-component delays (seconds) for one protocol."""

    protocol: str
    components: dict[str, float]

    @property
    def total_s(self) -> float:
        return math.fsum(self.components.values())

    def as_row(self) -> dict[str, float]:
        row = {name: round(value, 3) for name, value in self.components.items()}
        row["total"] = round(self.total_s, 3)
        return row


@dataclass
class ControlledExperiment:
    """One broadcaster + one RTMP viewer + one HLS viewer on stable WiFi."""

    seed: int = 7
    profile: AppProfile = field(default_factory=lambda: PERISCOPE_PROFILE)
    duration_s: float = 120.0
    broadcaster_location: GeoPoint = field(default_factory=lambda: GeoPoint(34.05, -118.24))
    viewer_location: GeoPoint = field(default_factory=lambda: GeoPoint(40.71, -74.01))
    transfer_model: TransferModel = field(default_factory=TransferModel)
    assignment: CdnAssignment = field(default_factory=CdnAssignment)

    def run_once(self, repetition: int = 0) -> tuple[DelayBreakdown, DelayBreakdown]:
        """One repetition; returns (RTMP breakdown, HLS breakdown)."""
        record, edge, rtmp_viewer, hls_viewer, broadcast_id = self._simulate(repetition)
        rtmp = self._rtmp_breakdown(record, rtmp_viewer)
        hls = self._hls_breakdown(record, edge, hls_viewer, broadcast_id)
        return rtmp, hls

    def _simulate(self, repetition: int):
        """Run one full controlled session; returns the raw artifacts."""
        streams = RandomStreams(self.seed).spawn(f"rep{repetition}")
        simulator = Simulator()

        wowza_dc = self.assignment.wowza_for_broadcaster(self.broadcaster_location)
        fastly_dc = self.assignment.fastly_for_viewer(self.viewer_location)

        wowza = WowzaIngest(
            wowza_dc, simulator, frames_per_chunk=self.profile.frames_per_chunk
        )
        edge = FastlyEdge(fastly_dc, simulator, self.transfer_model, streams.get("edge"))

        broadcast_id = 1
        edge.attach_broadcast(broadcast_id, wowza)

        # Upload link includes WAN propagation to the ingest DC plus the
        # phone's capture/encode pipeline latency.
        uplink = self._wan_link(
            streams, "uplink", self.broadcaster_location, wowza_dc.location,
            access_delay_s=0.16,
        )
        broadcaster = BroadcasterClient(
            broadcast_id=broadcast_id,
            token="controlled-token",
            simulator=simulator,
            wowza=wowza,
            uplink=uplink,
            frame_interval_s=self.profile.frame_interval_s,
        )

        rtmp_downlink = self._wan_link(
            streams, "rtmp-down", wowza_dc.location, self.viewer_location
        )
        rtmp_viewer = RtmpViewerClient(
            viewer_id=1001,
            broadcast_id=broadcast_id,
            simulator=simulator,
            downlink=rtmp_downlink,
        )

        hls_downlink = self._wan_link(
            streams, "hls-down", fastly_dc.location, self.viewer_location
        )
        poll_rng = streams.get("poll")
        low, high = self.profile.polling_interval_range_s
        hls_viewer = HlsViewerClient(
            viewer_id=1002,
            broadcast_id=broadcast_id,
            simulator=simulator,
            edge=edge,
            downlink=hls_downlink,
            poll_interval_s=float(poll_rng.uniform(low, high)),
            stop_after=self.duration_s + 30.0,
        )

        broadcaster.start(start_time=0.0, duration_s=self.duration_s)
        rtmp_viewer.attach(wowza)
        hls_viewer.start_polling(first_poll_at=float(poll_rng.uniform(0.0, hls_viewer.poll_interval_s)))

        # A co-located 0.1 s crawler keeps chunk transfers triggered
        # promptly, so availability (⑪) is measured tight — exactly the
        # paper's methodology (§4.3).  Without it, the single HLS viewer's
        # own polls would trigger every pull and the polling component
        # would be misattributed to Wowza2Fastly.
        crawler = DelayCrawler(
            broadcast_id=broadcast_id,
            simulator=simulator,
            stop_after=self.duration_s + 30.0,
        )
        crawler.attach_hls(edge)

        simulator.run(until=self.duration_s + 60.0)

        record = wowza.record_for(broadcast_id)
        return record, edge, rtmp_viewer, hls_viewer, broadcast_id

    def run_timeline(self, repetition: int = 0) -> dict[str, dict[str, float]]:
        """Figure 10's timestamp diagram from one live run.

        Returns ``{"rtmp": {...}, "hls": {...}}`` with every numbered
        timestamp of the paper's Figure 10, measured for a sample frame
        (RTMP path) and a sample chunk (HLS path) from mid-broadcast.
        """
        record, edge, rtmp_viewer, hls_viewer, broadcast_id = self._simulate(repetition)

        # RTMP path: a frame past the warm-up.
        sequences = sorted(rtmp_viewer.frame_arrivals)
        frame_seq = sequences[len(sequences) // 2]
        rtmp_playback = simulate_playback(
            rtmp_viewer.arrival_trace(),
            PlaybackConfig(
                prebuffer_s=self.profile.rtmp_prebuffer_s,
                unit_duration_s=self.profile.frame_interval_s,
            ),
        )
        frame_index = sequences.index(frame_seq)
        rtmp_timeline = {
            "1_capture": record.frame_captures[frame_seq],
            "2_wowza_arrival": record.frame_arrivals[frame_seq],
            "3_viewer_arrival": rtmp_viewer.frame_arrivals[frame_seq],
            "4_played": float(rtmp_playback.play_times[frame_index]),
        }

        # HLS path: a chunk past the warm-up.
        availability = edge.availability_map(broadcast_id)
        indices = sorted(
            set(hls_viewer.chunk_arrivals) & set(availability) & set(record.chunk_ready)
        )
        chunk_index = indices[len(indices) // 2]
        chunk = record.chunks[chunk_index]
        hls_playback = simulate_playback(
            hls_viewer.arrival_trace(),
            PlaybackConfig(
                prebuffer_s=self.profile.hls_prebuffer_s,
                unit_duration_s=self.profile.chunk_duration_s,
            ),
        )
        chunk_position = sorted(hls_viewer.chunk_arrivals).index(chunk_index)
        hls_timeline = {
            "5_capture": chunk.first_capture_time,
            "6_wowza_arrival": record.frame_arrivals[chunk.first_sequence],
            "7_chunk_ready": record.chunk_ready[chunk_index],
            "11_fastly_available": availability[chunk_index],
            "14_viewer_poll": hls_viewer.chunk_response_times[chunk_index],
            "15_viewer_arrival": hls_viewer.chunk_arrivals[chunk_index],
            "17_played": float(hls_playback.play_times[chunk_position]),
        }
        return {"rtmp": rtmp_timeline, "hls": hls_timeline}

    def run(self, repetitions: int = 10) -> tuple[DelayBreakdown, DelayBreakdown]:
        """Average component delays over ``repetitions`` runs (paper: 10)."""
        if repetitions <= 0:
            raise ValueError("need at least one repetition")
        rtmp_acc: dict[str, list[float]] = {name: [] for name in RTMP_COMPONENTS}
        hls_acc: dict[str, list[float]] = {name: [] for name in HLS_COMPONENTS}
        for repetition in range(repetitions):
            rtmp, hls = self.run_once(repetition)
            for name in RTMP_COMPONENTS:
                rtmp_acc[name].append(rtmp.components[name])
            for name in HLS_COMPONENTS:
                hls_acc[name].append(hls.components[name])
        return (
            DelayBreakdown(
                "rtmp", {name: float(np.mean(values)) for name, values in rtmp_acc.items()}
            ),
            DelayBreakdown(
                "hls", {name: float(np.mean(values)) for name, values in hls_acc.items()}
            ),
        )

    # -- internals -------------------------------------------------------

    def _wan_link(
        self,
        streams: RandomStreams,
        name: str,
        a: GeoPoint,
        b: GeoPoint,
        access_delay_s: float = 0.09,
    ) -> LastMileLink:
        """Stable WiFi access hop plus WAN propagation to the other end."""
        rng = streams.get(name)
        propagation = self.transfer_model.latency.propagation_s(a, b)
        return LastMileLink(
            rng=rng, base_delay_s=access_delay_s + propagation, jitter_sigma=0.15
        )

    def _rtmp_breakdown(
        self, record, viewer: RtmpViewerClient
    ) -> DelayBreakdown:
        sequences = sorted(viewer.frame_arrivals)
        uploads = np.array([record.upload_delay_s(s) for s in sequences])
        last_mile = np.array(
            [viewer.frame_arrivals[s] - record.frame_arrivals[s] for s in sequences]
        )
        playback = simulate_playback(
            viewer.arrival_trace(),
            PlaybackConfig(
                prebuffer_s=self.profile.rtmp_prebuffer_s,
                unit_duration_s=self.profile.frame_interval_s,
            ),
        )
        return DelayBreakdown(
            "rtmp",
            {
                "upload": float(uploads.mean()),
                "last_mile": float(last_mile.mean()),
                "buffering": playback.mean_buffering_delay_s,
            },
        )

    def _hls_breakdown(
        self,
        record,
        edge: FastlyEdge,
        viewer: HlsViewerClient,
        broadcast_id: int,
    ) -> DelayBreakdown:
        availability = edge.availability_map(broadcast_id)
        indices = sorted(
            set(viewer.chunk_arrivals) & set(availability) & set(record.chunk_ready)
        )
        if not indices:
            raise RuntimeError("HLS viewer received no chunks; broadcast too short?")
        uploads = []
        chunking = []
        w2f = []
        polling = []
        last_mile = []
        for index in indices:
            chunk = record.chunks[index]
            first_seq = chunk.first_sequence
            uploads.append(record.upload_delay_s(first_seq))
            chunking.append(record.chunk_ready[index] - record.frame_arrivals[first_seq])
            w2f.append(availability[index] - record.chunk_ready[index])
            polling.append(viewer.chunk_response_times[index] - availability[index])
            last_mile.append(viewer.chunk_arrivals[index] - viewer.chunk_response_times[index])
        playback = simulate_playback(
            viewer.arrival_trace(),
            PlaybackConfig(
                prebuffer_s=self.profile.hls_prebuffer_s,
                unit_duration_s=self.profile.chunk_duration_s,
            ),
        )
        return DelayBreakdown(
            "hls",
            {
                "upload": float(np.mean(uploads)),
                "chunking": float(np.mean(chunking)),
                "wowza2fastly": float(np.mean(w2f)),
                "polling": float(np.mean(polling)),
                "last_mile": float(np.mean(last_mile)),
                "buffering": playback.mean_buffering_delay_s,
            },
        )
