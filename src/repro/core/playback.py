"""Trace-driven client playback simulation (§6, Figures 16–17).

Implements the buffering strategy the paper decompiled from the Periscope
Android client: pre-buffer ``P`` seconds of content, then play units
(frames or chunks) in sequence order.  Two strategies are provided:

* ``"rebuffer"`` (default, matches the client's observed behaviour with
  its "sufficiently large memory ... [to] avoid dropping packets"): when
  the next unit has not arrived at its scheduled time, playback *stalls*
  until it does, and the schedule shifts by the stall.  A bursty upload
  therefore both stalls playback and permanently inflates the buffering
  delay of everything after it — the mechanism behind the >5 s delay tail
  of Figure 16(b).
* ``"fixed"`` (the strict discard interpretation): units play on a fixed
  wall-clock schedule and any unit arriving after its slot is discarded,
  showing as a stall of its duration.

Both reproduce the §6 headline: Periscope's P=9 s HLS pre-buffer is
conservative — P=6 s stalls the same while cutting delay by ~half.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_STRATEGIES = ("rebuffer", "fixed")


@dataclass(frozen=True)
class PlaybackConfig:
    """Playback policy parameters."""

    prebuffer_s: float
    unit_duration_s: float  # 0.040 for RTMP frames, ~3.0 for HLS chunks
    strategy: str = "rebuffer"

    def __post_init__(self) -> None:
        if self.prebuffer_s < 0:
            raise ValueError("prebuffer must be non-negative")
        if self.unit_duration_s <= 0:
            raise ValueError("unit duration must be positive")
        if self.strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r}; use one of {_STRATEGIES}")

    @property
    def prebuffer_units(self) -> int:
        """Units that must arrive before playback starts (>=1)."""
        return max(1, int(np.ceil(self.prebuffer_s / self.unit_duration_s)))


@dataclass(frozen=True)
class PlaybackResult:
    """Outcome of one simulated playback session."""

    start_play_time: float
    played: np.ndarray  # bool per unit (all True under "rebuffer")
    play_times: np.ndarray  # actual play time per unit (NaN if discarded)
    buffering_delays: np.ndarray  # play - arrival, played units only
    stall_time_s: float
    stall_ratio: float

    @property
    def mean_buffering_delay_s(self) -> float:
        if len(self.buffering_delays) == 0:
            return 0.0
        return float(np.mean(self.buffering_delays))

    @property
    def discarded_count(self) -> int:
        return int((~self.played).sum())


def simulate_playback(arrival_times: np.ndarray, config: PlaybackConfig) -> PlaybackResult:
    """Run the player over a unit arrival trace.

    ``arrival_times[k]`` is the arrival of unit ``k`` in sequence order.
    """
    arrivals = np.asarray(arrival_times, dtype=float)
    n = len(arrivals)
    if n == 0:
        raise ValueError("empty arrival trace")
    d = config.unit_duration_s

    # Playback starts once the first prebuffer_units units have all
    # arrived; with a FIFO transport that is when unit (prebuffer_units-1)
    # lands (the max covers loss-capable transports).
    k0 = min(config.prebuffer_units, n) - 1
    start_play = float(np.max(arrivals[: k0 + 1]))

    if config.strategy == "rebuffer":
        return _simulate_rebuffer(arrivals, start_play, d)
    return _simulate_fixed(arrivals, start_play, d)


def _simulate_rebuffer(
    arrivals: np.ndarray, start_play: float, d: float
) -> PlaybackResult:
    """Stall-and-wait: play_k = max(arrival_k, play_{k-1} + d).

    Closed form: play_k = k*d + max(start_play, running_max(arrival_j - j*d)).
    """
    n = len(arrivals)
    offsets = np.arange(n) * d
    anchor = np.maximum.accumulate(arrivals - offsets)
    play_times = offsets + np.maximum(anchor, start_play)
    delays = play_times - arrivals
    # Total stall: everything that pushed the final schedule past the
    # jitter-free one.
    stall_time = float(play_times[-1] - (start_play + (n - 1) * d))
    duration = n * d
    return PlaybackResult(
        start_play_time=start_play,
        played=np.ones(n, dtype=bool),
        play_times=play_times,
        buffering_delays=delays,
        stall_time_s=stall_time,
        stall_ratio=stall_time / duration,
    )


def _simulate_fixed(
    arrivals: np.ndarray, start_play: float, d: float
) -> PlaybackResult:
    """Fixed wall-clock schedule; late units are discarded (stall = d each)."""
    n = len(arrivals)
    scheduled = start_play + np.arange(n) * d
    played = arrivals <= scheduled
    play_times = np.where(played, scheduled, np.nan)
    delays = scheduled[played] - arrivals[played]
    discarded = int((~played).sum())
    return PlaybackResult(
        start_play_time=start_play,
        played=played,
        play_times=play_times,
        buffering_delays=delays,
        stall_time_s=discarded * d,
        stall_ratio=discarded / n,
    )


def poll_pickup_times(
    availability_times: np.ndarray,
    poll_interval_s: float,
    poll_phase_s: float,
) -> np.ndarray:
    """When a periodically-polling viewer picks up each chunk.

    Chunk ``k`` available at ``a_k`` is fetched at the first poll time
    ``phase + j * interval`` at or after ``a_k``.
    """
    if poll_interval_s <= 0:
        raise ValueError("poll interval must be positive")
    availability = np.asarray(availability_times, dtype=float)
    steps = np.ceil((availability - poll_phase_s) / poll_interval_s)
    steps = np.maximum(steps, 0)
    return poll_phase_s + steps * poll_interval_s


def sweep_prebuffer(
    traces: list[np.ndarray],
    prebuffer_values: list[float],
    unit_duration_s: float,
    strategy: str = "rebuffer",
) -> dict[float, dict[str, np.ndarray]]:
    """Figures 16/17: per-broadcast stalling ratio and mean buffering delay
    for each pre-buffer setting.

    Returns ``{P: {"stall_ratio": array, "buffering_delay": array}}`` with
    one entry per broadcast trace.
    """
    results: dict[float, dict[str, np.ndarray]] = {}
    for prebuffer in prebuffer_values:
        config = PlaybackConfig(
            prebuffer_s=prebuffer, unit_duration_s=unit_duration_s, strategy=strategy
        )
        stalls = []
        delays = []
        for trace in traces:
            if len(trace) == 0:
                continue
            outcome = simulate_playback(trace, config)
            stalls.append(outcome.stall_ratio)
            delays.append(outcome.mean_buffering_delay_s)
        results[prebuffer] = {
            "stall_ratio": np.array(stalls),
            "buffering_delay": np.array(delays),
        }
    return results
