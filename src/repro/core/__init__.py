"""The paper's analytical contribution.

This package holds the measurement-study machinery itself: the end-to-end
delay breakdown (Figures 10–11), the trace-driven polling simulation
(Figures 12–13), the trace-driven client-buffering simulation and its
optimization result (Figures 16–17, §6), the CDN geolocation analysis
(Figure 15), the scalability analysis (Figure 14), and a pipeline facade
tying them together.
"""

from repro.core.playback import (
    PlaybackConfig,
    PlaybackResult,
    simulate_playback,
    poll_pickup_times,
)
from repro.core.polling import PollingStats, polling_delays, simulate_polling
from repro.core.delay_breakdown import (
    ControlledExperiment,
    DelayBreakdown,
    HLS_COMPONENTS,
    RTMP_COMPONENTS,
)
from repro.core.scalability import scalability_sweep
from repro.core.geolocation import GeoDelaySample, geolocation_study
from repro.core.chunk_stats import (
    PERISCOPE_CHUNK_MIX,
    chunk_duration_distribution,
    dominant_chunk_share,
)
from repro.core.interactivity import InteractivityStudy, TierInteractivity
from repro.core.projection import CapacityExceeded, GrowthProjection, ProjectionPoint
from repro.core.adaptive_buffer import (
    AdaptiveBufferPolicy,
    JitterProbe,
    PolicyOutcome,
    evaluate_policies,
)
from repro.core.full_broadcast import (
    FullBroadcastResult,
    FullBroadcastSimulation,
    TierOutcome,
)
from repro.core.pipeline import (
    BroadcastTrace,
    DelayMeasurementCampaign,
    hls_viewer_traces,
    rtmp_viewer_traces,
)

__all__ = [
    "BroadcastTrace",
    "DelayMeasurementCampaign",
    "rtmp_viewer_traces",
    "hls_viewer_traces",
    "PERISCOPE_CHUNK_MIX",
    "chunk_duration_distribution",
    "dominant_chunk_share",
    "InteractivityStudy",
    "TierInteractivity",
    "GrowthProjection",
    "ProjectionPoint",
    "CapacityExceeded",
    "FullBroadcastSimulation",
    "FullBroadcastResult",
    "TierOutcome",
    "AdaptiveBufferPolicy",
    "JitterProbe",
    "PolicyOutcome",
    "evaluate_policies",
    "PlaybackConfig",
    "PlaybackResult",
    "simulate_playback",
    "poll_pickup_times",
    "PollingStats",
    "polling_delays",
    "simulate_polling",
    "ControlledExperiment",
    "DelayBreakdown",
    "RTMP_COMPONENTS",
    "HLS_COMPONENTS",
    "scalability_sweep",
    "GeoDelaySample",
    "geolocation_study",
]
