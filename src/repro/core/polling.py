"""Trace-driven polling-delay simulation (§5.2, Figures 12–13).

Given the chunk-availability trace of a broadcast (recorded at a Fastly
POP by the 0.1 s crawler), simulate a single HLS viewer polling at a fixed
interval with a random phase, and measure each chunk's polling delay —
pickup time minus availability time.

The phenomenon the paper highlights: at 2 s and 4 s intervals the mean
delay per broadcast concentrates near interval/2, but at 3 s — resonant
with the ~3 s chunk inter-arrival — the poll-to-availability offset drifts
slowly instead of mixing, so per-broadcast means spread out (mostly
between 1 s and 2 s) and within-broadcast behaviour changes character.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.playback import poll_pickup_times


@dataclass(frozen=True)
class PollingStats:
    """Per-broadcast polling-delay statistics for one interval."""

    interval_s: float
    mean_delay_s: float
    std_delay_s: float
    chunk_count: int


def polling_delays(
    availability_times: np.ndarray,
    poll_interval_s: float,
    poll_phase_s: float,
) -> np.ndarray:
    """Per-chunk polling delay for one viewer (pickup − availability)."""
    availability = np.asarray(availability_times, dtype=float)
    pickups = poll_pickup_times(availability, poll_interval_s, poll_phase_s)
    return pickups - availability


def broadcast_polling_stats(
    availability_times: np.ndarray,
    poll_interval_s: float,
    rng: np.random.Generator,
) -> PollingStats:
    """Stats for one broadcast with a uniformly random poll phase.

    The phase is drawn from ``[0, interval)`` relative to the first chunk —
    each viewer starts polling at an arbitrary offset.
    """
    availability = np.asarray(availability_times, dtype=float)
    if len(availability) == 0:
        raise ValueError("empty availability trace")
    phase = float(availability[0]) - float(rng.uniform(0.0, poll_interval_s))
    delays = polling_delays(availability, poll_interval_s, phase)
    return PollingStats(
        interval_s=poll_interval_s,
        mean_delay_s=float(np.mean(delays)),
        std_delay_s=float(np.std(delays)),
        chunk_count=len(delays),
    )


def simulate_polling(
    traces: list[np.ndarray],
    poll_intervals_s: list[float],
    rng: np.random.Generator,
) -> dict[float, list[PollingStats]]:
    """Figures 12–13: per-broadcast stats for each polling interval."""
    results: dict[float, list[PollingStats]] = {interval: [] for interval in poll_intervals_s}
    for trace in traces:
        if len(trace) < 2:
            continue
        for interval in poll_intervals_s:
            results[interval].append(broadcast_polling_stats(trace, interval, rng))
    return results


def mean_delay_cdf_inputs(stats: list[PollingStats]) -> np.ndarray:
    """Per-broadcast mean delays, the x-values of Figure 12."""
    return np.array([s.mean_delay_s for s in stats])


def std_delay_cdf_inputs(stats: list[PollingStats]) -> np.ndarray:
    """Per-broadcast delay standard deviations, the x-values of Figure 13."""
    return np.array([s.std_delay_s for s in stats])
