"""Growth projection: the volume-vs-latency link (§5.2, §8).

The abstract's forward-looking claim: "Our results show a strong link
between volume of broadcasts and stream delivery latency ... Barring a
change in architecture, more streams will require servers to increase
chunk sizes, improving scalability at the cost of higher delays."

This module makes that projection concrete.  Given a server fleet and the
per-stream serving cost from the Figure 14 load model, it computes — for
each broadcast-volume level — the smallest chunk size (and the matching
polling interval) that fits the fleet's CPU budget, and the end-to-end
HLS delay that choice implies (chunking + polling + proportional
buffering).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cdn.server_load import ServerLoadModel


@dataclass(frozen=True)
class ProjectionPoint:
    """The operating point forced by one broadcast-volume level."""

    concurrent_streams: int
    chunk_duration_s: float
    polling_interval_s: float
    fleet_utilization: float
    projected_hls_delay_s: float


@dataclass
class GrowthProjection:
    """Projects delay as broadcast volume grows on a fixed fleet.

    Parameters
    ----------
    fleet_servers:
        Number of edge-serving machines (each with 100% CPU to give).
    viewers_per_stream:
        Mean concurrent HLS viewers per live stream.
    chunk_options_s:
        Chunk sizes the operator may pick from (small → low delay).
    buffering_factor:
        Client pre-buffer as a multiple of the chunk size (§6 found ~2-3
        chunks of pre-buffer are needed for smooth playback).
    """

    fleet_servers: int = 2000
    viewers_per_stream: float = 30.0
    chunk_options_s: tuple[float, ...] = (1.0, 2.0, 3.0, 6.0, 10.0)
    buffering_factor: float = 2.0
    load_model: ServerLoadModel = field(default_factory=ServerLoadModel)
    upload_plus_lastmile_s: float = 0.35
    wowza2fastly_s: float = 0.3

    def __post_init__(self) -> None:
        if self.fleet_servers <= 0:
            raise ValueError("need at least one server")
        if self.viewers_per_stream <= 0:
            raise ValueError("viewers per stream must be positive")
        if not self.chunk_options_s:
            raise ValueError("need at least one chunk option")

    def _polling_interval_for(self, chunk_s: float) -> float:
        """Clients poll a bit faster than the chunk cadence (Periscope:
        2-2.8 s for 3 s chunks -> ~0.8x)."""
        return 0.8 * chunk_s

    def _per_stream_cpu(self, chunk_s: float) -> float:
        """CPU% one stream costs a server at this chunk size."""
        polls_per_s = self.viewers_per_stream / self._polling_interval_for(chunk_s)
        chunks_per_s = 1.0 / chunk_s
        return (
            polls_per_s * self.load_model.cpu_per_poll
            + chunks_per_s * self.load_model.cpu_per_chunk_assembly
        )

    def fleet_capacity_percent(self) -> float:
        """Total CPU budget across the fleet, in single-server percents."""
        usable = 100.0 - self.load_model.base_cpu_percent
        return self.fleet_servers * usable

    def operating_point(self, concurrent_streams: int) -> ProjectionPoint:
        """The cheapest-delay configuration that still fits the fleet."""
        if concurrent_streams <= 0:
            raise ValueError("stream count must be positive")
        capacity = self.fleet_capacity_percent()
        for chunk_s in sorted(self.chunk_options_s):
            demand = concurrent_streams * self._per_stream_cpu(chunk_s)
            if demand <= capacity:
                polling = self._polling_interval_for(chunk_s)
                delay = (
                    self.upload_plus_lastmile_s
                    + chunk_s  # chunking delay
                    + self.wowza2fastly_s
                    + polling / 2.0  # mean polling delay
                    + self.buffering_factor * chunk_s  # pre-buffer
                )
                return ProjectionPoint(
                    concurrent_streams=concurrent_streams,
                    chunk_duration_s=chunk_s,
                    polling_interval_s=polling,
                    fleet_utilization=demand / capacity,
                    projected_hls_delay_s=delay,
                )
        raise CapacityExceeded(
            f"{concurrent_streams} streams exceed fleet capacity even at "
            f"{max(self.chunk_options_s):g}s chunks"
        )

    def sweep(self, stream_counts: list[int]) -> list[ProjectionPoint]:
        """Project the operating point across a growth trajectory."""
        return [self.operating_point(count) for count in stream_counts]

    def max_streams(self) -> int:
        """Fleet ceiling: streams supportable at the largest chunk size."""
        chunk_s = max(self.chunk_options_s)
        return int(self.fleet_capacity_percent() / self._per_stream_cpu(chunk_s))


class CapacityExceeded(Exception):
    """Raised when no chunk size fits the fleet budget."""
