"""CDN geolocation analysis (§5.3, Figure 15).

For every (Wowza origin, Fastly destination) datacenter pair, measure the
per-broadcast average Wowza2Fastly delay — chunk availability at the POP
(⑪) minus chunk-ready at the origin (⑦) — and group pairs by geographic
distance.  The paper's signature results, both of which the gateway-based
transfer model reproduces:

* delay grows with pair distance,
* there is a sharp >0.25 s gap between co-located pairs and even nearby
  (<500 km) city pairs, the footprint of gateway coordination.

The measured quantity includes the triggering crawler's poll offset
(uniform within the 0.1 s crawl interval), exactly as the paper's
estimate does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cdn.transfer import TransferModel
from repro.geo.datacenters import (
    Datacenter,
    FASTLY_DATACENTERS,
    WOWZA_DATACENTERS,
)
from repro.geo.latency import distance_bucket


@dataclass(frozen=True)
class GeoDelaySample:
    """One broadcast's mean Wowza2Fastly delay for one DC pair."""

    wowza: str
    fastly: str
    distance_km: float
    bucket: str
    mean_delay_s: float


def geolocation_study(
    rng: np.random.Generator,
    broadcasts_per_pair: int = 10,
    chunks_per_broadcast: int = 40,
    crawler_poll_interval_s: float = 0.1,
    transfer: TransferModel | None = None,
    wowza_sites: Sequence[Datacenter] = WOWZA_DATACENTERS,
    fastly_sites: Sequence[Datacenter] = FASTLY_DATACENTERS,
) -> list[GeoDelaySample]:
    """Per-broadcast mean Wowza2Fastly delay across all DC pairs."""
    if broadcasts_per_pair <= 0 or chunks_per_broadcast <= 0:
        raise ValueError("counts must be positive")
    model = transfer or TransferModel()
    samples: list[GeoDelaySample] = []
    for wowza in wowza_sites:
        for fastly in fastly_sites:
            distance = wowza.distance_km(fastly)
            bucket = "co-located" if model.is_colocated(wowza, fastly) else distance_bucket(distance)
            for _ in range(broadcasts_per_pair):
                delays = [
                    model.transfer_delay_s(wowza, fastly, rng)
                    + float(rng.uniform(0.0, crawler_poll_interval_s))
                    for _ in range(chunks_per_broadcast)
                ]
                samples.append(
                    GeoDelaySample(
                        wowza=wowza.name,
                        fastly=fastly.name,
                        distance_km=distance,
                        bucket=bucket,
                        mean_delay_s=float(np.mean(delays)),
                    )
                )
    return samples


def delays_by_bucket(samples: Sequence[GeoDelaySample]) -> dict[str, np.ndarray]:
    """Group per-broadcast delays by distance bucket (Figure 15's CDFs)."""
    grouped: dict[str, list[float]] = {}
    for sample in samples:
        grouped.setdefault(sample.bucket, []).append(sample.mean_delay_s)
    return {bucket: np.array(values) for bucket, values in grouped.items()}
