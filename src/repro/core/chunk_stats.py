"""Chunk-size measurement (§5.2 "Frame vs. Chunk").

From the passive crawl of 16,013 broadcasts, the paper extracted each
broadcast's chunk size and found the "mass majority (>85.9%) of HLS
broadcasts used 3 s chunks (or 75 video frames of 40 ms)", with the
remainder on other sizes.  The campaign can generate that heterogeneity
(:data:`PERISCOPE_CHUNK_MIX`) and this module re-derives the distribution
from the crawled traces, exactly as the paper did: the chunk size is
inferred from the chunk arrival cadence, not read from configuration.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.core.pipeline import BroadcastTrace

#: Per-broadcast chunk-duration mix observed on Periscope (§5.2).
PERISCOPE_CHUNK_MIX: dict[float, float] = {
    3.0: 0.862,
    2.0: 0.050,
    4.0: 0.050,
    6.0: 0.038,
}


def sample_chunk_duration(
    rng: np.random.Generator,
    mix: Optional[Mapping[float, float]] = None,
) -> float:
    """Draw one broadcast's chunk duration from the mix."""
    chosen_mix = dict(mix) if mix is not None else PERISCOPE_CHUNK_MIX
    if not chosen_mix:
        raise ValueError("empty chunk mix")
    durations = sorted(chosen_mix)
    weights = np.array([chosen_mix[d] for d in durations], dtype=float)
    if (weights < 0).any() or weights.sum() <= 0:
        raise ValueError("chunk mix weights must be non-negative and sum > 0")
    weights = weights / weights.sum()
    return float(rng.choice(durations, p=weights))


def infer_chunk_duration(
    trace: BroadcastTrace,
    quantize_s: float = 0.5,
) -> Optional[float]:
    """Infer a broadcast's chunk duration from its chunk-ready cadence.

    The median inter-chunk gap at the origin, snapped to ``quantize_s``.
    Returns None when the broadcast produced fewer than 3 chunks (the
    paper could not classify those either).
    """
    if quantize_s <= 0:
        raise ValueError("quantize step must be positive")
    if len(trace.chunk_ready) < 3:
        return None
    gaps = np.diff(np.asarray(trace.chunk_ready))
    median_gap = float(np.median(gaps))
    return round(median_gap / quantize_s) * quantize_s


def chunk_duration_distribution(
    traces: Iterable[BroadcastTrace],
    quantize_s: float = 0.5,
) -> dict[float, float]:
    """Fraction of classifiable broadcasts per inferred chunk duration."""
    counts: Counter[float] = Counter()
    for trace in traces:
        duration = infer_chunk_duration(trace, quantize_s)
        if duration is not None:
            counts[duration] += 1
    total = sum(counts.values())  # repro: allow[fsum-required] Counter values are ints — exact
    if total == 0:
        raise ValueError("no classifiable broadcasts")
    return {duration: count / total for duration, count in sorted(counts.items())}


def dominant_chunk_share(
    traces: Sequence[BroadcastTrace],
    duration_s: float = 3.0,
    quantize_s: float = 0.5,
) -> float:
    """The §5.2 headline: the share of broadcasts on ``duration_s`` chunks."""
    distribution = chunk_duration_distribution(traces, quantize_s)
    return distribution.get(duration_s, 0.0)
