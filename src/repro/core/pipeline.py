"""The measurement-study pipeline facade.

Ties the substrates together into the paper's workflow:

1. **Passive delay crawling** (:class:`DelayMeasurementCampaign`): run many
   simulated broadcasts through the CDN with the fine-grained crawler
   attached, collecting per-broadcast frame-arrival traces (at Wowza) and
   chunk-availability traces (at a Fastly POP).  The paper crawled 16,013
   real broadcasts this way; the campaign size is configurable.
2. **Trace-driven analyses**: polling simulation (Figures 12–13) and
   playback/pre-buffer simulation (Figures 16–17) over those traces.
3. **Controlled experiments** (Figure 11) via
   :class:`~repro.core.delay_breakdown.ControlledExperiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cdn.assignment import CdnAssignment
from repro.cdn.fastly import FastlyEdge
from repro.cdn.transfer import TransferModel
from repro.cdn.wowza import WowzaIngest
from repro.client.broadcaster import BroadcasterClient
from repro.client.network import LastMileLink
from repro.crawler.delay_crawler import DelayCrawler
from repro.geo.regions import sample_user_location
from repro.platform.apps import AppProfile, PERISCOPE_PROFILE
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.simulation.distributions import lognormal_from_median


@dataclass(frozen=True)
class BroadcastTrace:
    """Fine-grained measurements of one crawled broadcast."""

    broadcast_id: int
    duration_s: float
    frame_arrivals: np.ndarray  # at the ingest server (② series)
    chunk_ready: np.ndarray  # at the ingest server (⑦ series)
    chunk_availability: np.ndarray  # at the crawled POP (⑪ series)
    chunk_duration_s: float
    frame_interval_s: float

    @property
    def chunk_count(self) -> int:
        return len(self.chunk_availability)


@dataclass
class DelayMeasurementCampaign:
    """Crawl ``n_broadcasts`` simulated broadcasts for delay traces."""

    n_broadcasts: int = 50
    seed: int = 2016
    profile: AppProfile = field(default_factory=lambda: PERISCOPE_PROFILE)
    duration_median_s: float = 180.0
    duration_sigma: float = 0.5
    min_duration_s: float = 60.0
    max_duration_s: float = 600.0
    #: Broadcaster uplinks are realistic mobile links with bursty outages;
    #: §6 attributes the long RTMP buffering tail to them.
    outage_rate_per_s: float = 1.0 / 140.0
    outage_mean_s: float = 3.0
    #: Per-broadcast chunk-duration mix (None = every broadcast uses the
    #: profile's chunk size).  §5.2 observed >85.9% on 3 s with a spread of
    #: other sizes; pass ``repro.core.chunk_stats.PERISCOPE_CHUNK_MIX`` to
    #: reproduce that heterogeneity.
    chunk_duration_mix: dict[float, float] | None = None
    transfer_model: TransferModel = field(default_factory=TransferModel)
    assignment: CdnAssignment = field(default_factory=CdnAssignment)

    def run(self) -> list[BroadcastTrace]:
        streams = RandomStreams(self.seed)
        placement_rng = streams.get("placement")
        duration_rng = streams.get("durations")
        traces = []
        for index in range(self.n_broadcasts):
            duration = float(
                np.clip(
                    lognormal_from_median(
                        duration_rng, self.duration_median_s, self.duration_sigma
                    ),
                    self.min_duration_s,
                    self.max_duration_s,
                )
            )
            traces.append(self._crawl_one(index, duration, streams, placement_rng))
        return traces

    def _crawl_one(
        self,
        index: int,
        duration_s: float,
        streams: RandomStreams,
        placement_rng: np.random.Generator,
    ) -> BroadcastTrace:
        simulator = Simulator()
        local = streams.spawn(f"broadcast/{index}")

        broadcaster_location = sample_user_location(placement_rng)
        wowza_dc = self.assignment.wowza_for_broadcaster(broadcaster_location)
        # The crawler picks the POP nearest the broadcaster's ingest DC
        # (the paper ran dedicated crawlers near every DC; one suffices
        # per broadcast for trace collection).
        fastly_dc = self.assignment.fastly_for_viewer(wowza_dc.location)

        chunk_duration_s = self.profile.chunk_duration_s
        if self.chunk_duration_mix is not None:
            from repro.core.chunk_stats import sample_chunk_duration

            chunk_duration_s = sample_chunk_duration(
                local.get("chunk-size"), self.chunk_duration_mix
            )
        frames_per_chunk = max(1, round(chunk_duration_s / self.profile.frame_interval_s))

        wowza = WowzaIngest(wowza_dc, simulator, frames_per_chunk=frames_per_chunk)
        edge = FastlyEdge(fastly_dc, simulator, self.transfer_model, local.get("edge"))
        broadcast_id = index + 1
        edge.attach_broadcast(broadcast_id, wowza)

        uplink_rng = local.get("uplink")
        propagation = self.transfer_model.latency.propagation_s(
            broadcaster_location, wowza_dc.location
        )
        uplink = LastMileLink.mobile_uplink(
            uplink_rng,
            horizon_s=duration_s + 30.0,
            outage_rate_per_s=self.outage_rate_per_s,
            outage_mean_s=self.outage_mean_s,
        )
        uplink.base_delay_s += propagation

        broadcaster = BroadcasterClient(
            broadcast_id=broadcast_id,
            token=f"bcast-{broadcast_id}",
            simulator=simulator,
            wowza=wowza,
            uplink=uplink,
            frame_interval_s=self.profile.frame_interval_s,
        )
        crawler = DelayCrawler(
            broadcast_id=broadcast_id, simulator=simulator, stop_after=duration_s + 30.0
        )
        broadcaster.start(start_time=0.0, duration_s=duration_s)
        crawler.attach_rtmp(wowza)
        crawler.attach_hls(edge)

        simulator.run(until=duration_s + 60.0)

        record = wowza.record_for(broadcast_id)
        return BroadcastTrace(
            broadcast_id=broadcast_id,
            duration_s=duration_s,
            frame_arrivals=crawler.frame_arrival_trace(),
            chunk_ready=np.array(record.chunk_arrival_times()),
            chunk_availability=crawler.chunk_availability_trace(),
            chunk_duration_s=chunk_duration_s,
            frame_interval_s=self.profile.frame_interval_s,
        )


def rtmp_viewer_traces(traces: list[BroadcastTrace]) -> list[np.ndarray]:
    """Frame-arrival traces driving the Figure 16 playback simulation.

    Per §6, the RTMP viewer path is simulated directly from the
    frame-arrival sequence at the Wowza server (last-mile variance is
    assumed small and stable).
    """
    return [trace.frame_arrivals for trace in traces]


def hls_viewer_traces(
    traces: list[BroadcastTrace],
    rng: np.random.Generator,
    poll_interval_s: float = 2.8,
) -> list[np.ndarray]:
    """Chunk pickup traces driving the Figure 17 playback simulation.

    Per §6, each HLS viewer polls at 2.8 s with a random phase; a chunk is
    picked up at the first poll after it becomes available at the POP.
    """
    from repro.core.playback import poll_pickup_times

    pickups = []
    for trace in traces:
        if trace.chunk_count == 0:
            continue
        phase = float(trace.chunk_availability[0]) - float(
            rng.uniform(0.0, poll_interval_s)
        )
        pickups.append(
            poll_pickup_times(trace.chunk_availability, poll_interval_s, phase)
        )
    return pickups
