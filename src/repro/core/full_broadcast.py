"""Full-system simulation of one popular broadcast (Figure 8 in motion).

Everything the architecture diagram shows, running together in one
event-driven simulation:

* the control channel: viewers join through the service, which applies
  the RTMP→HLS spillover and the commenter cap,
* the video channel: the broadcaster uploads to its nearest Wowza DC;
  RTMP viewers get pushed frames, HLS viewers poll their nearest Fastly
  POP,
* the message channel: viewers react to a chosen on-stream moment the
  instant they *see* it, and their hearts ride the PubNub-style channel
  back to the broadcaster.

The outcome quantifies, per tier and event-level (not analytically), the
paper's interactivity story: how many viewers got the interactive tier,
what each tier's video lag was, and how stale the broadcaster's incoming
hearts were.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cdn.assignment import CdnAssignment
from repro.cdn.fastly import FastlyEdge
from repro.cdn.transfer import TransferModel
from repro.cdn.wowza import WowzaIngest
from repro.client.broadcaster import BroadcasterClient
from repro.client.network import LastMileLink
from repro.client.viewer_client import HlsViewerClient, RtmpViewerClient
from repro.crawler.delay_crawler import DelayCrawler
from repro.geo.coordinates import GeoPoint
from repro.geo.regions import sample_user_location
from repro.platform.apps import PERISCOPE_PROFILE, AppProfile
from repro.platform.broadcasts import DeliveryTier
from repro.platform.service import LivestreamService
from repro.protocols.messages import MessageChannel, MessageKind, StreamMessage
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.workload.viewers import ViewerArrivalModel


@dataclass(frozen=True)
class TierOutcome:
    """Event-level measurements for one delivery tier."""

    tier: str
    viewers: int
    mean_video_lag_s: float
    mean_heart_staleness_s: float
    can_comment: int


@dataclass(frozen=True)
class FullBroadcastResult:
    """Everything measured from one full-system broadcast."""

    total_viewers: int
    rtmp: TierOutcome
    hls: TierOutcome
    hearts_received: int
    server_frame_pushes: int
    server_polls: int

    @property
    def interactive_fraction(self) -> float:
        if self.total_viewers == 0:
            return 0.0
        return self.rtmp.viewers / self.total_viewers


@dataclass
class FullBroadcastSimulation:
    """One broadcast, one audience, all three channels of Figure 8."""

    n_viewers: int = 250
    duration_s: float = 40.0
    moment_time_s: float = 30.0  # the on-stream event viewers react to
    reaction_time_s: float = 1.5
    heart_probability: float = 0.8
    seed: int = 12
    profile: AppProfile = field(default_factory=lambda: PERISCOPE_PROFILE)
    broadcaster_location: GeoPoint = field(default_factory=lambda: GeoPoint(40.71, -74.01))

    def __post_init__(self) -> None:
        if self.n_viewers <= 0:
            raise ValueError("need at least one viewer")
        if not 0 < self.moment_time_s < self.duration_s:
            raise ValueError("the moment must happen during the broadcast")

    def run(self) -> FullBroadcastResult:
        streams = RandomStreams(self.seed)
        simulator = Simulator()
        assignment = CdnAssignment()
        transfer = TransferModel()

        # -- control channel: service + joins --------------------------------
        service = LivestreamService(profile=self.profile)
        broadcaster_user = service.users.register()
        viewer_users = service.users.register_many(self.n_viewers)
        broadcast = service.start_broadcast(broadcaster_user.user_id, time=0.0)

        arrivals = ViewerArrivalModel()
        offsets = arrivals.sample_join_offsets(
            streams.get("joins"), self.n_viewers, self.duration_s * 0.9
        )
        tiers: dict[int, DeliveryTier] = {}
        for user, offset in zip(viewer_users, offsets):
            record = service.join(broadcast.broadcast_id, user.user_id, float(offset))
            tiers[user.user_id] = record.tier

        # -- video channel: CDN + clients --------------------------------------
        wowza_dc = assignment.wowza_for_broadcaster(self.broadcaster_location)
        wowza = WowzaIngest(
            wowza_dc, simulator, frames_per_chunk=self.profile.frames_per_chunk
        )
        broadcaster = BroadcasterClient(
            broadcast_id=broadcast.broadcast_id,
            token=f"full-{self.seed}",
            simulator=simulator,
            wowza=wowza,
            uplink=LastMileLink.stable_wifi(streams.get("uplink")),
            frame_interval_s=self.profile.frame_interval_s,
        )
        broadcaster.start(start_time=0.0, duration_s=self.duration_s)

        edges: dict[str, FastlyEdge] = {}
        placement = streams.get("placement")
        poll_rng = streams.get("poll")
        rtmp_clients: dict[int, RtmpViewerClient] = {}
        hls_clients: dict[int, HlsViewerClient] = {}
        for user, offset in zip(viewer_users, offsets):
            location = sample_user_location(placement)
            downlink_rng = streams.get(f"down/{user.user_id}")
            if tiers[user.user_id] is DeliveryTier.RTMP:
                propagation = transfer.latency.propagation_s(wowza_dc.location, location)
                client = RtmpViewerClient(
                    viewer_id=user.user_id,
                    broadcast_id=broadcast.broadcast_id,
                    simulator=simulator,
                    downlink=LastMileLink(
                        rng=downlink_rng, base_delay_s=0.05 + propagation, jitter_sigma=0.15
                    ),
                )
                # Frames before the join are not received; attach at join time.
                simulator.schedule_at(
                    float(offset), lambda c=client: c.attach(wowza), label="join-rtmp"
                )
                rtmp_clients[user.user_id] = client
            else:
                pop = assignment.fastly_for_viewer(location)
                if pop.name not in edges:
                    edge = FastlyEdge(pop, simulator, transfer, streams.get(f"edge/{pop.name}"))
                    edge.attach_broadcast(broadcast.broadcast_id, wowza)
                    edges[pop.name] = edge
                propagation = transfer.latency.propagation_s(pop.location, location)
                client = HlsViewerClient(
                    viewer_id=user.user_id,
                    broadcast_id=broadcast.broadcast_id,
                    simulator=simulator,
                    edge=edges[pop.name],
                    downlink=LastMileLink(
                        rng=downlink_rng, base_delay_s=0.05 + propagation, jitter_sigma=0.15
                    ),
                    poll_interval_s=float(
                        poll_rng.uniform(*self.profile.polling_interval_range_s)
                    ),
                    stop_after=self.duration_s + 30.0,
                )
                client.start_polling(first_poll_at=float(offset))
                hls_clients[user.user_id] = client

        # Keep transfers prompt at every serving POP, as production's many
        # viewers (and the paper's crawler) do.
        for edge in edges.values():
            crawler = DelayCrawler(
                broadcast_id=broadcast.broadcast_id,
                simulator=simulator,
                stop_after=self.duration_s + 10.0,
            )
            crawler.attach_hls(edge)

        simulator.run(until=self.duration_s + 60.0)

        # -- message channel: hearts about the moment ---------------------------
        channel = MessageChannel(broadcast_id=broadcast.broadcast_id)
        heart_rng = streams.get("hearts")
        staleness: dict[str, list[float]] = {"rtmp": [], "hls": []}
        lags: dict[str, list[float]] = {"rtmp": [], "hls": []}
        moment_frame = int(self.moment_time_s / self.profile.frame_interval_s)
        moment_chunk = moment_frame // self.profile.frames_per_chunk
        # Only viewers already watching when the moment happened react to
        # it; late joiners replaying the HLS window don't heart the past.
        joined_before_moment = {
            user.user_id
            for user, offset in zip(viewer_users, offsets)
            if offset <= self.moment_time_s
        }

        for user_id, client in rtmp_clients.items():
            if user_id not in joined_before_moment:
                continue
            if moment_frame not in client.frame_arrivals:
                continue  # joined after the moment or left before
            seen_at = client.frame_arrivals[moment_frame]
            lags["rtmp"].append(seen_at - self.moment_time_s)
            self._maybe_heart(
                service, channel, heart_rng, broadcast.broadcast_id, user_id,
                seen_at, staleness["rtmp"],
            )
        for user_id, client in hls_clients.items():
            if user_id not in joined_before_moment:
                continue
            if moment_chunk not in client.chunk_arrivals:
                continue
            seen_at = client.chunk_arrivals[moment_chunk] + (
                moment_frame % self.profile.frames_per_chunk
            ) * self.profile.frame_interval_s
            lags["hls"].append(seen_at - self.moment_time_s)
            self._maybe_heart(
                service, channel, heart_rng, broadcast.broadcast_id, user_id,
                seen_at, staleness["hls"],
            )

        service.end_broadcast(broadcast.broadcast_id, self.duration_s)

        # Count real viewers' polls only (the helper crawler's 0.1 s polls
        # stand in for the big audiences production POPs see).
        polls = sum(len(client.poll_times) for client in hls_clients.values())
        frames_ingested = len(wowza.record_for(broadcast.broadcast_id).frame_arrivals)
        return FullBroadcastResult(
            total_viewers=self.n_viewers,
            rtmp=self._tier_outcome(service, broadcast, "rtmp", rtmp_clients, lags, staleness),
            hls=self._tier_outcome(service, broadcast, "hls", hls_clients, lags, staleness),
            hearts_received=len(broadcast.hearts),
            server_frame_pushes=frames_ingested * len(rtmp_clients),
            server_polls=polls,
        )

    def _maybe_heart(
        self,
        service: LivestreamService,
        channel: MessageChannel,
        rng: np.random.Generator,
        broadcast_id: int,
        user_id: int,
        seen_at: float,
        staleness_bucket: list[float],
    ) -> None:
        if rng.random() >= self.heart_probability:
            return
        sent = seen_at + float(rng.exponential(self.reaction_time_s))
        message = StreamMessage(
            kind=MessageKind.HEART, sender_id=user_id, sent_time=sent,
            broadcast_id=broadcast_id,
        )
        arrival = sent + channel.delivery_latency(rng)
        service.heart(broadcast_id, user_id, sent)
        staleness_bucket.append(arrival - self.moment_time_s)

    def _tier_outcome(
        self,
        service: LivestreamService,
        broadcast,
        tier: str,
        clients: dict,
        lags: dict[str, list[float]],
        staleness: dict[str, list[float]],
    ) -> TierOutcome:
        # Comment eligibility in practice: the first `comment_cap` joiners
        # (who are exactly the RTMP-tier viewers when the caps align).
        by_join = sorted(broadcast.views, key=lambda view: view.join_time)
        eligible_ids = {
            view.viewer_id for view in by_join[: service.profile.comment_cap]
        }
        commenters = sum(1 for user_id in clients if user_id in eligible_ids)
        return TierOutcome(
            tier=tier,
            viewers=len(clients),
            mean_video_lag_s=float(np.mean(lags[tier])) if lags[tier] else float("nan"),
            mean_heart_staleness_s=(
                float(np.mean(staleness[tier])) if staleness[tier] else float("nan")
            ),
            can_comment=commenters,
        )
