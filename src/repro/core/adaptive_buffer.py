"""Adaptive pre-buffer selection (§6's closing recommendation).

The paper's buffering study ends with a policy sketch: "In cases when
viewers have stable last-mile connection, e.g., good WiFi/LTE, smaller
buffer size could be applied to reduce the buffering delay.  In other
cases of bad connection, Periscope could always fall back to the default
9s buffer to provide smooth playback."

This module implements that policy and evaluates it with the same
trace-driven methodology as Figures 16–17:

* :class:`JitterProbe` estimates arrival stability from the first seconds
  of a session (inter-arrival dispersion vs the nominal cadence),
* :class:`AdaptiveBufferPolicy` maps the estimate to a pre-buffer,
* :func:`evaluate_policies` replays broadcast traces under fixed and
  adaptive policies and compares stalling vs delay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.playback import PlaybackConfig, simulate_playback


@dataclass(frozen=True)
class JitterProbe:
    """Estimates connection stability from early arrivals.

    The score is the *worst* excess inter-arrival gap over the nominal
    cadence within the first ``probe_s`` seconds — one serious stall in
    the probe window is enough to mark the connection unstable (a
    percentile would miss rare-but-ruinous stalls in a short window).
    """

    probe_s: float = 20.0

    def __post_init__(self) -> None:
        if self.probe_s <= 0:
            raise ValueError("probe window must be positive")

    def score(self, arrival_times: np.ndarray, unit_duration_s: float) -> float:
        arrivals = np.asarray(arrival_times, dtype=float)
        if len(arrivals) < 3:
            return float("inf")  # not enough signal: assume the worst
        window = arrivals[arrivals <= arrivals[0] + self.probe_s]
        if len(window) < 3:
            window = arrivals[:3]
        gaps = np.diff(window)
        excess = np.maximum(gaps - unit_duration_s, 0.0)
        return float(excess.max())


@dataclass(frozen=True)
class AdaptiveBufferPolicy:
    """Maps a jitter score to a pre-buffer size.

    ``thresholds`` are (max-score-ratio, prebuffer) steps in increasing
    order, where the ratio is relative to the unit cadence — for 3 s HLS
    chunks a missed poll produces a ~1x-cadence excess gap and is normal,
    while a multi-cadence gap signals a genuinely unstable path.  Scores
    beyond the last step get ``fallback_prebuffer_s`` — the "always fall
    back to the default 9 s" of the paper.
    """

    thresholds: tuple[tuple[float, float], ...] = ((0.5, 3.0), (1.6, 6.0))
    fallback_prebuffer_s: float = 9.0
    probe: JitterProbe = JitterProbe()

    def __post_init__(self) -> None:
        limits = [limit for limit, _ in self.thresholds]
        if limits != sorted(limits):
            raise ValueError("thresholds must be in increasing score order")

    def choose_prebuffer(self, arrival_times: np.ndarray, unit_duration_s: float) -> float:
        score = self.probe.score(arrival_times, unit_duration_s)
        for limit, prebuffer in self.thresholds:
            if score <= limit * unit_duration_s:
                return prebuffer
        return self.fallback_prebuffer_s


@dataclass(frozen=True)
class PolicyOutcome:
    """Aggregate playback quality for one policy over many broadcasts."""

    policy: str
    median_stall_ratio: float
    p90_stall_ratio: float
    median_delay_s: float
    mean_delay_s: float
    prebuffer_distribution: dict[float, int]


def _evaluate(
    name: str,
    traces: list[np.ndarray],
    prebuffer_for,
    unit_duration_s: float,
) -> PolicyOutcome:
    stalls = []
    delays = []
    chosen: dict[float, int] = {}
    for trace in traces:
        if len(trace) == 0:
            continue
        prebuffer = prebuffer_for(trace)
        chosen[prebuffer] = chosen.get(prebuffer, 0) + 1
        outcome = simulate_playback(
            trace, PlaybackConfig(prebuffer_s=prebuffer, unit_duration_s=unit_duration_s)
        )
        stalls.append(outcome.stall_ratio)
        delays.append(outcome.mean_buffering_delay_s)
    return PolicyOutcome(
        policy=name,
        median_stall_ratio=float(np.median(stalls)),
        p90_stall_ratio=float(np.percentile(stalls, 90)),
        median_delay_s=float(np.median(delays)),
        mean_delay_s=float(np.mean(delays)),
        prebuffer_distribution=dict(sorted(chosen.items())),
    )


def evaluate_policies(
    traces: list[np.ndarray],
    unit_duration_s: float,
    fixed_prebuffers_s: tuple[float, ...] = (6.0, 9.0),
    adaptive: AdaptiveBufferPolicy | None = None,
) -> dict[str, PolicyOutcome]:
    """Compare fixed pre-buffers against the adaptive policy.

    Returns outcomes keyed ``"fixed-6s"``-style plus ``"adaptive"``.
    """
    if not traces:
        raise ValueError("no traces to evaluate")
    policy = adaptive or AdaptiveBufferPolicy()
    outcomes: dict[str, PolicyOutcome] = {}
    for prebuffer in fixed_prebuffers_s:
        outcomes[f"fixed-{prebuffer:g}s"] = _evaluate(
            f"fixed-{prebuffer:g}s",
            traces,
            lambda trace, p=prebuffer: p,
            unit_duration_s,
        )
    outcomes["adaptive"] = _evaluate(
        "adaptive",
        traces,
        lambda trace: policy.choose_prebuffer(trace, unit_duration_s),
        unit_duration_s,
    )
    return outcomes
