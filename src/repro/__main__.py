"""``python -m repro`` entry point."""

import os
import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pipe (e.g. ``| head``) closed early; exit quietly the
        # way coreutils do instead of dumping a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        sys.exit(141)
