"""The tiered serving layer: storage, services, frontend, load generation.

This package is the request-driven serving stack the platform facade
(:class:`repro.platform.service.LivestreamService`) now delegates to,
split the way the paper's production system is described: a storage tier
(:mod:`repro.service.store` — sharded broadcast store plus per-region
list-snapshot caches), a service tier (:mod:`repro.service.services` —
lifecycle/engagement policy and the global-list API over storage, sharing
one brownout fault gate), an API tier (:mod:`repro.service.frontend` — a
deterministic event-loop frontend with token-bucket admission control from
:mod:`repro.service.admission`), and a closed-loop benchmark driver
(:mod:`repro.service.loadgen`, surfaced as ``repro serve-bench``).

The canonical API error types (:class:`ServiceError`,
:class:`ServiceUnavailable`) and :class:`GlobalListPage` live here, in
:mod:`repro.service.errors`; the facade re-exports them for backward
compatibility.
"""

from repro.service.admission import (
    API_CLASSES,
    AdmissionController,
    AdmissionPolicy,
    ApiClassLimit,
    SHED_QUEUE_FULL,
    SHED_RATE_LIMITED,
)
from repro.service.errors import GlobalListPage, ServiceError, ServiceUnavailable
from repro.service.frontend import (
    ACTION_CLASSES,
    Request,
    Response,
    ServiceFrontend,
)
from repro.service.loadgen import (
    FlashCrowdConfig,
    LoadGenConfig,
    ServeBenchReport,
    run_serve_bench,
)
from repro.service.services import BroadcastService, FaultGate, ListService
from repro.service.store import (
    BroadcastStore,
    RegionCache,
    StoreError,
)

__all__ = [
    "ACTION_CLASSES",
    "API_CLASSES",
    "AdmissionController",
    "AdmissionPolicy",
    "ApiClassLimit",
    "BroadcastService",
    "BroadcastStore",
    "FaultGate",
    "FlashCrowdConfig",
    "GlobalListPage",
    "ListService",
    "LoadGenConfig",
    "RegionCache",
    "Request",
    "Response",
    "SHED_QUEUE_FULL",
    "SHED_RATE_LIMITED",
    "ServeBenchReport",
    "ServiceError",
    "ServiceFrontend",
    "ServiceUnavailable",
    "StoreError",
    "run_serve_bench",
]
