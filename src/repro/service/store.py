"""The storage tier: a sharded broadcast store and per-region list caches.

:class:`BroadcastStore` owns every broadcast record.  Broadcasts are
assigned to ``broadcast_id % n_shards`` (the modulo scheme the related
sharding designs use for uniform spread over a dense key space), and each
shard maintains its own live set with O(1) insert/remove.  The store
*also* keeps one global, insertion-ordered live list with swap-remove
bookkeeping — the exact structure the pre-split ``LivestreamService``
used — so global-list sampling visits candidates in the same order as
before the refactor and seeded runs stay byte-identical.

The swap-remove bookkeeping is an explicit, checkable invariant here
(:meth:`BroadcastStore.check_invariants`): the position index, the global
live list, and the per-shard live sets must always agree.  The double-end
``KeyError`` this PR fixes in the facade is structurally impossible at
this layer — :meth:`retire` refuses to retire a broadcast that is not
live.

:class:`RegionCache` holds the last good global-list snapshot per region
with simulated-time TTL expiry and explicit whole-cache invalidation
(the service tier invalidates on every broadcast start/end, so a cached
page can never outlive the live set it was sampled from by more than the
TTL).
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.platform.broadcasts import Broadcast
from repro.service.errors import GlobalListPage

#: Default shard count for the facade's store (small: the facade is also
#: used by unit tests with a handful of broadcasts).
DEFAULT_N_SHARDS = 8


class StoreError(Exception):
    """Raised on storage-tier contract violations (retiring a dead id...)."""


class BroadcastStore:
    """Sharded broadcast storage with O(1) live-set maintenance per shard."""

    __slots__ = (
        "n_shards",
        "_broadcasts",
        "_live_ids",
        "_live_positions",
        "_shard_live",
        "_m_inserts",
        "_m_retired",
        "_g_live",
    )

    def __init__(
        self,
        n_shards: int = DEFAULT_N_SHARDS,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        if n_shards < 1:
            raise StoreError(f"n_shards must be at least 1, got {n_shards}")
        self.n_shards = n_shards
        self._broadcasts: dict[int, Broadcast] = {}
        # Global live view: insertion-ordered ids + position index for O(1)
        # swap-remove.  Kept alongside the shards so sampling order is
        # independent of the shard count.
        self._live_ids: list[int] = []
        self._live_positions: dict[int, int] = {}
        self._shard_live: tuple[set[int], ...] = tuple(set() for _ in range(n_shards))
        self._m_inserts = metrics.counter(
            "service.store.inserts", help="broadcasts inserted into the store"
        )
        self._m_retired = metrics.counter(
            "service.store.retired", help="broadcasts retired from the live sets"
        )
        self._g_live = metrics.gauge(
            "service.store.live", help="live broadcasts across all shards"
        )

    # -- shard mapping ----------------------------------------------------

    def shard_of(self, broadcast_id: int) -> int:
        """The shard that owns ``broadcast_id`` (``id % n_shards``)."""
        return broadcast_id % self.n_shards

    # -- writes -----------------------------------------------------------

    def insert(self, broadcast: Broadcast) -> None:
        """Add a new live broadcast to the store and every live view."""
        broadcast_id = broadcast.broadcast_id
        if broadcast_id in self._broadcasts:
            raise StoreError(f"broadcast {broadcast_id} already stored")
        self._broadcasts[broadcast_id] = broadcast
        self._live_positions[broadcast_id] = len(self._live_ids)
        self._live_ids.append(broadcast_id)
        self._shard_live[self.shard_of(broadcast_id)].add(broadcast_id)
        self._m_inserts.inc()
        self._g_live.set(float(len(self._live_ids)))

    def retire(self, broadcast_id: int) -> None:
        """Remove a broadcast from the live sets (it stays retrievable).

        O(1): the global list swap-removes against its position index, the
        owning shard drops the id from its set.  Retiring an id that is not
        live raises :class:`StoreError` — this is the guard that turns the
        old facade's double-end ``KeyError`` into a typed error.
        """
        position = self._live_positions.pop(broadcast_id, None)
        if position is None:
            raise StoreError(f"broadcast {broadcast_id} is not live")
        last_id = self._live_ids[-1]
        self._live_ids[position] = last_id
        self._live_ids.pop()
        if last_id != broadcast_id:
            self._live_positions[last_id] = position
        self._shard_live[self.shard_of(broadcast_id)].discard(broadcast_id)
        self._m_retired.inc()
        self._g_live.set(float(len(self._live_ids)))

    # -- reads ------------------------------------------------------------

    def get(self, broadcast_id: int) -> Optional[Broadcast]:
        """The broadcast record, or None when the id was never stored."""
        return self._broadcasts.get(broadcast_id)

    def is_live(self, broadcast_id: int) -> bool:
        """True while the broadcast is in the live sets."""
        return broadcast_id in self._live_positions

    @property
    def live_ids(self) -> list[int]:
        """The global live list, in insertion-then-swap order.

        Callers must treat this as read-only; it is exposed (rather than
        copied) because global-list sampling walks it on every query.
        """
        return self._live_ids

    @property
    def live_count(self) -> int:
        return len(self._live_ids)

    @property
    def total_count(self) -> int:
        return len(self._broadcasts)

    def all_broadcasts(self) -> list[Broadcast]:
        """Every broadcast ever stored, in insertion order."""
        return list(self._broadcasts.values())

    def shard_live_ids(self, shard: int) -> tuple[int, ...]:
        """The shard's live set as a sorted (deterministic) tuple."""
        return tuple(sorted(self._shard_live[shard]))

    def shard_live_counts(self) -> tuple[int, ...]:
        """Live broadcasts per shard."""
        return tuple(len(live) for live in self._shard_live)

    # -- invariants -------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the three live views agree; raise :class:`StoreError` if not.

        Checked: the position index matches the global list exactly, the
        per-shard sets partition the global list by ``id % n_shards``, and
        every live id resolves to a stored, still-live broadcast.  Tests
        call this after every mutation; it is O(live) and allocation-light,
        so harnesses can afford to run it continuously.
        """
        if len(self._live_positions) != len(self._live_ids):
            raise StoreError(
                f"position index has {len(self._live_positions)} entries, "
                f"live list has {len(self._live_ids)}"
            )
        for position, broadcast_id in enumerate(self._live_ids):
            if self._live_positions.get(broadcast_id) != position:
                raise StoreError(
                    f"broadcast {broadcast_id} at position {position} but "
                    f"index says {self._live_positions.get(broadcast_id)}"
                )
            broadcast = self._broadcasts.get(broadcast_id)
            if broadcast is None or not broadcast.is_live:
                raise StoreError(f"live list contains dead id {broadcast_id}")
        total_sharded = 0
        for shard, live in enumerate(self._shard_live):
            total_sharded += len(live)
            for broadcast_id in sorted(live):
                if self.shard_of(broadcast_id) != shard:
                    raise StoreError(
                        f"broadcast {broadcast_id} in shard {shard}, "
                        f"belongs to {self.shard_of(broadcast_id)}"
                    )
                if broadcast_id not in self._live_positions:
                    raise StoreError(
                        f"shard {shard} holds non-live id {broadcast_id}"
                    )
        if total_sharded != len(self._live_ids):
            raise StoreError(
                f"shards hold {total_sharded} live ids, global list "
                f"{len(self._live_ids)}"
            )


class RegionCache:
    """Per-region global-list snapshots with sim-time TTL and invalidation.

    ``get`` answers a query from the region's snapshot while it is younger
    than ``ttl_s``; the returned page is re-stamped with the query time and
    carries the snapshot's own time in ``snapshot_time`` (the same contract
    as brown-out load shedding, so degraded-mode consumers can always tell
    data age from response time).  The service tier calls
    :meth:`invalidate_all` on every broadcast start/end.
    """

    __slots__ = ("ttl_s", "_entries", "_m_hits", "_m_misses", "_m_expired", "_m_invalidations")

    def __init__(
        self, ttl_s: float = 1.0, metrics: MetricsRegistry = NULL_REGISTRY
    ) -> None:
        if ttl_s <= 0:
            raise StoreError(f"ttl_s must be positive, got {ttl_s}")
        self.ttl_s = ttl_s
        self._entries: dict[str, GlobalListPage] = {}
        self._m_hits = metrics.counter("service.cache.hits", help="region-cache hits")
        self._m_misses = metrics.counter("service.cache.misses", help="region-cache misses")
        self._m_expired = metrics.counter(
            "service.cache.expired", help="lookups that found only an expired snapshot"
        )
        self._m_invalidations = metrics.counter(
            "service.cache.invalidations", help="explicit whole-cache invalidations"
        )

    def get(self, region: str, now: float) -> Optional[GlobalListPage]:
        """The region's snapshot re-stamped at ``now``, or None."""
        entry = self._entries.get(region)
        if entry is None:
            self._m_misses.inc()
            return None
        if now - entry.time > self.ttl_s:
            del self._entries[region]
            self._m_expired.inc()
            self._m_misses.inc()
            return None
        self._m_hits.inc()
        return GlobalListPage(
            time=now, broadcast_ids=entry.broadcast_ids, snapshot_time=entry.time
        )

    def put(self, region: str, page: GlobalListPage) -> None:
        """Store a freshly sampled page as the region's snapshot."""
        if page.snapshot_time is not None:
            raise StoreError("only fresh pages may populate the region cache")
        self._entries[region] = page

    def invalidate_all(self) -> None:
        """Drop every region's snapshot (a broadcast started or ended)."""
        if self._entries:
            self._entries.clear()
            self._m_invalidations.inc()

    def __len__(self) -> int:
        return len(self._entries)
