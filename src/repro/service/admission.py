"""Admission control for the frontend tier.

Extends PR 2's brown-out load shedding (which absorbs *injected* failures)
with overload protection for the request path: a token-bucket rate limiter
per API class plus queue-depth-based shedding.  Both mechanisms run on
simulated time and are deterministic — no randomness is involved, so the
same request arrival sequence always sheds the same requests.

A request is admitted only if (1) the frontend queue is below
``max_queue_depth`` and (2) the API class's token bucket has a token.
Shed requests are answered immediately with a retryable 503-style
response; they never consume backend capacity, which is what lets the
frontend survive the Twitch-style flash crowds the workload scenarios
inject (the p99 of admitted requests stays bounded while excess load is
turned away at the door).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

#: The API classes the serving layer distinguishes.  ``list`` is the
#: global-list poll (the dominant load), ``join`` the per-broadcast join,
#: ``engage`` comments + hearts, ``lifecycle`` broadcaster start/end.
API_CLASSES = ("list", "join", "engage", "lifecycle")

#: Shed reasons (also the counter suffixes).
SHED_QUEUE_FULL = "queue_full"
SHED_RATE_LIMITED = "rate_limited"


@dataclass(frozen=True)
class ApiClassLimit:
    """Token-bucket parameters for one API class."""

    rate_per_s: float
    burst: float

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.burst <= 0:
            raise ValueError("burst must be positive")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Per-API-class rate limits plus the global queue-depth bound.

    The defaults are sized for the toy serve-bench scale (tens of polling
    clients): a steady baseline fits comfortably, a flash crowd an order
    of magnitude above it is shed at the door.
    """

    limits: dict[str, ApiClassLimit] = field(
        default_factory=lambda: {
            "list": ApiClassLimit(rate_per_s=60.0, burst=120.0),
            "join": ApiClassLimit(rate_per_s=100.0, burst=200.0),
            "engage": ApiClassLimit(rate_per_s=200.0, burst=400.0),
            "lifecycle": ApiClassLimit(rate_per_s=20.0, burst=40.0),
        }
    )
    max_queue_depth: int = 64

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        for api in self.limits:
            if api not in API_CLASSES:
                raise ValueError(f"unknown API class {api!r}; known: {API_CLASSES}")


class AdmissionController:
    """Deterministic admission decisions for the frontend.

    :meth:`admit` returns ``None`` to admit or a shed reason string
    (:data:`SHED_QUEUE_FULL` / :data:`SHED_RATE_LIMITED`).  Queue depth is
    checked first — when the backend is already drowning, even requests
    with rate budget are turned away, and no token is consumed for them.
    """

    __slots__ = ("policy", "_buckets", "_m_admitted", "_m_shed", "_per_class_shed")

    def __init__(
        self, policy: Optional[AdmissionPolicy] = None, metrics: MetricsRegistry = NULL_REGISTRY
    ) -> None:
        # Deferred import: ``repro.crawler``'s package __init__ transitively
        # imports the platform facade, which imports this package — at
        # construction time every module involved is fully initialized.
        from repro.crawler.rate_limit import TokenBucket

        self.policy = policy if policy is not None else AdmissionPolicy()
        # The buckets run on simulated time; their own metrics stay off so
        # the crawler.ratelimit.* names remain the crawler's alone.
        self._buckets = {
            api: TokenBucket(rate_per_s=limit.rate_per_s, capacity=limit.burst)
            for api, limit in sorted(self.policy.limits.items())
        }
        self._m_admitted = metrics.counter(
            "service.admission.admitted", help="requests admitted to the frontend queue"
        )
        self._m_shed = metrics.counter(
            "service.admission.shed", help="requests shed by admission control"
        )
        self._per_class_shed = {
            (api, reason): metrics.counter(
                f"service.admission.shed.{api}.{reason}",
                help=f"{api} requests shed ({reason})",
            )
            for api in API_CLASSES
            for reason in (SHED_QUEUE_FULL, SHED_RATE_LIMITED)
        }

    def admit(self, api: str, now: float, queue_depth: int) -> Optional[str]:
        """Admit or shed one request of class ``api`` arriving at ``now``."""
        if api not in API_CLASSES:
            raise ValueError(f"unknown API class {api!r}; known: {API_CLASSES}")
        if queue_depth >= self.policy.max_queue_depth:
            self._count_shed(api, SHED_QUEUE_FULL)
            return SHED_QUEUE_FULL
        bucket = self._buckets.get(api)
        if bucket is not None and not bucket.try_acquire(now):
            self._count_shed(api, SHED_RATE_LIMITED)
            return SHED_RATE_LIMITED
        self._m_admitted.inc()
        return None

    def _count_shed(self, api: str, reason: str) -> None:
        self._m_shed.inc()
        self._per_class_shed[(api, reason)].inc()

    def tokens_available(self, api: str) -> float:
        """Current token balance for an API class (diagnostics/tests)."""
        bucket = self._buckets.get(api)
        return bucket.available if bucket is not None else float("inf")
