"""The service tier: policy over storage.

Two services own all application policy, operating on a shared
:class:`~repro.service.store.BroadcastStore`:

* :class:`BroadcastService` — broadcast lifecycle and viewer actions:
  start/end, the RTMP-to-HLS spillover on join, the 100-commenter cap,
  hearts, leaves.  Every start/end invalidates the attached
  :class:`~repro.service.store.RegionCache`, so cached global-list pages
  never misreport the live set for longer than the cache TTL.
* :class:`ListService` — the global broadcast list API: sampling up to 50
  random public live broadcasts, brown-out load shedding from the last
  good snapshot (re-stamped, with ``snapshot_time`` carrying data age),
  and the per-region snapshot cache the frontend tier serves from.

Both share one :class:`FaultGate`, the brownout fault surface driven by
:class:`~repro.faults.injector.FaultInjector`.  The gate draws exactly one
rng coin per *guarded* API call, in API-call order — the draw-order
contract the chaos baselines depend on (pinned by
``tests/test_platform_service.py::TestBrownoutGuardAudit``).

Guarded vs exempt APIs
----------------------
``join``, ``comment``, ``heart`` and ``global_list`` flip the brownout
coin.  ``start_broadcast``, ``end_broadcast``, ``leave``, ``can_comment``
and ``get_broadcast`` are **exempt by design**: lifecycle transitions come
from the authenticated broadcaster path (modelled as a separate, more
reliable control plane — the chaos scenario relies on broadcasts starting
and ending on schedule during a brownout), ``leave`` is client-side
bookkeeping, and the read-only helpers are not API calls.  The exemption
is load-bearing for determinism: adding a coin flip to an exempt call
would shift every subsequent draw and invalidate seeded chaos baselines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.platform.apps import AppProfile
from repro.platform.broadcasts import (
    Broadcast,
    Comment,
    DeliveryTier,
    Heart,
    ViewRecord,
)
from repro.platform.users import UserRegistry
from repro.service.errors import GlobalListPage, ServiceError, ServiceUnavailable
from repro.service.store import BroadcastStore, RegionCache


class FaultGate:
    """The brownout fault surface shared by the service tier.

    While browned out, each guarded API call fails with probability
    ``fail_rate``; coins are drawn from the injected rng in event order so
    runs stay deterministic for a fixed seed.  No rng is ever consumed
    while healthy.
    """

    __slots__ = ("_fail_rate", "_rng", "_m_unavailable", "_m_shed")

    def __init__(self, metrics: MetricsRegistry = NULL_REGISTRY) -> None:
        self._fail_rate = 0.0
        self._rng: Optional[np.random.Generator] = None
        self._m_unavailable = metrics.counter(
            "platform.unavailable_errors", help="API calls failed by an injected brownout"
        )
        self._m_shed = metrics.counter(
            "platform.load_shed",
            help="browned-out calls absorbed in degraded mode (stale or dropped)",
        )

    @property
    def browned_out(self) -> bool:
        """True while a fault injector marks the service browned out."""
        return self._fail_rate > 0.0

    def set_brownout(self, fail_rate: float, rng: np.random.Generator) -> None:
        """Arm the brownout at ``fail_rate`` with coins drawn from ``rng``."""
        if not 0.0 <= fail_rate <= 1.0:
            raise ServiceError(f"fail_rate must be within [0, 1], got {fail_rate}")
        self._fail_rate = fail_rate
        self._rng = rng

    def clear_brownout(self) -> None:
        """End the brownout; subsequent API calls succeed normally."""
        self._fail_rate = 0.0

    def failing_now(self) -> bool:
        """One brownout coin flip (no rng is consumed when healthy)."""
        if self._fail_rate <= 0.0:
            return False
        return bool(self._rng.random() < self._fail_rate)

    def count_unavailable(self) -> None:
        self._m_unavailable.inc()

    def count_shed(self) -> None:
        self._m_shed.inc()


class BroadcastService:
    """Lifecycle and viewer-action policy over the broadcast store."""

    __slots__ = (
        "store", "users", "profile", "gate", "load_shedding", "region_cache",
        "_next_broadcast_id",
        "_m_api", "_m_starts", "_m_ends", "_m_joins",
        "_m_comments", "_m_comments_rejected", "_m_hearts", "_m_live",
    )

    def __init__(
        self,
        store: BroadcastStore,
        users: UserRegistry,
        profile: AppProfile,
        gate: FaultGate,
        load_shedding: bool = False,
        region_cache: Optional[RegionCache] = None,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        self.store = store
        self.users = users
        self.profile = profile
        self.gate = gate
        self.load_shedding = load_shedding
        self.region_cache = region_cache
        self._next_broadcast_id = 1
        self._m_api = metrics.counter("platform.api_calls", help="all service API calls")
        self._m_starts = metrics.counter("platform.broadcasts_started")
        self._m_ends = metrics.counter("platform.broadcasts_ended")
        self._m_joins = metrics.counter("platform.joins")
        self._m_comments = metrics.counter("platform.comments_accepted")
        self._m_comments_rejected = metrics.counter(
            "platform.comments_rejected", help="comments over the commenter cap"
        )
        self._m_hearts = metrics.counter("platform.hearts")
        self._m_live = metrics.gauge(
            "platform.live_broadcasts", help="broadcasts currently live"
        )

    def _shed(self) -> bool:
        """Absorb one would-be brownout failure in degraded mode."""
        if not self.load_shedding:
            return False
        self.gate.count_shed()
        return True

    def _invalidate_lists(self) -> None:
        if self.region_cache is not None:
            self.region_cache.invalidate_all()

    # -- broadcast lifecycle (brownout-exempt; see module docstring) ------

    def start_broadcast(
        self,
        broadcaster_id: int,
        time: float,
        is_private: bool = False,
        location: Optional[object] = None,
    ) -> Broadcast:
        self._m_api.inc()
        if broadcaster_id not in self.users:
            raise ServiceError(f"unknown broadcaster {broadcaster_id}")
        broadcast = Broadcast(
            broadcast_id=self._next_broadcast_id,
            broadcaster_id=broadcaster_id,
            start_time=time,
            app_name=self.profile.name,
            is_private=is_private,
            location=location,
        )
        self._next_broadcast_id += 1
        self.store.insert(broadcast)
        self._m_starts.inc()
        self._m_live.set(float(self.store.live_count))
        self._invalidate_lists()
        return broadcast

    def end_broadcast(self, broadcast_id: int, time: float) -> Broadcast:
        self._m_api.inc()
        broadcast = self.get_broadcast(broadcast_id)
        if not broadcast.is_live:
            # Ending twice used to fall through to a raw KeyError from the
            # live-position pop; it is an API-usage error like any other.
            raise ServiceError(f"broadcast {broadcast_id} already ended")
        broadcast.end(time)
        self.store.retire(broadcast_id)
        self._m_ends.inc()
        self._m_live.set(float(self.store.live_count))
        self._invalidate_lists()
        return broadcast

    def get_broadcast(self, broadcast_id: int) -> Broadcast:
        broadcast = self.store.get(broadcast_id)
        if broadcast is None:
            raise ServiceError(f"unknown broadcast {broadcast_id}")
        return broadcast

    # -- viewer actions (brownout-guarded) --------------------------------

    def join(
        self, broadcast_id: int, viewer_id: int, time: float, web: bool = False
    ) -> ViewRecord:
        """Join a broadcast; tier assignment implements the spillover policy.

        The first ``rtmp_viewer_threshold`` mobile viewers connect to the
        ingest server over RTMP; later arrivals (and all web viewers) get
        HLS from the edge CDN.
        """
        self._m_api.inc()
        if self.gate.failing_now() and not self._shed():
            self.gate.count_unavailable()
            raise ServiceUnavailable("join failed: service browned out")
        broadcast = self.get_broadcast(broadcast_id)
        if not broadcast.is_live:
            raise ServiceError(f"broadcast {broadcast_id} has ended")
        if time < broadcast.start_time:
            raise ServiceError("cannot join before the broadcast starts")
        if web:
            tier = DeliveryTier.WEB
        elif (
            self.profile.has_push_tier
            and broadcast.rtmp_view_count < self.profile.rtmp_viewer_threshold
        ):
            tier = DeliveryTier.RTMP
        else:
            tier = DeliveryTier.HLS
        record = ViewRecord(viewer_id=viewer_id, join_time=time, tier=tier)
        broadcast.views.append(record)
        self._m_joins.inc()
        return record

    def can_comment(self, broadcast_id: int, viewer_id: int) -> bool:
        """True if the viewer is within the commenter cap.

        Existing commenters keep the right; new commenters are admitted
        while fewer than ``comment_cap`` distinct users have commented.
        """
        broadcast = self.get_broadcast(broadcast_id)
        if viewer_id in broadcast.commenter_ids:
            return True
        return len(broadcast.commenter_ids) < self.profile.comment_cap

    def comment(self, broadcast_id: int, viewer_id: int, time: float) -> bool:
        """Post a comment; returns False when rejected by the cap."""
        self._m_api.inc()
        if self.gate.failing_now():
            if self._shed():
                return False  # degraded mode: the comment is dropped, not errored
            self.gate.count_unavailable()
            raise ServiceUnavailable("comment failed: service browned out")
        broadcast = self.get_broadcast(broadcast_id)
        if not broadcast.is_live:
            raise ServiceError(f"broadcast {broadcast_id} has ended")
        if not self.can_comment(broadcast_id, viewer_id):
            self._m_comments_rejected.inc()
            return False
        broadcast.commenter_ids.add(viewer_id)
        broadcast.comments.append(Comment(viewer_id=viewer_id, time=time))
        self._m_comments.inc()
        return True

    def heart(self, broadcast_id: int, viewer_id: int, time: float) -> None:
        """Send a heart — all viewers may heart, without limit."""
        self._m_api.inc()
        if self.gate.failing_now():
            if self._shed():
                return  # degraded mode: the heart is dropped, not errored
            self.gate.count_unavailable()
            raise ServiceUnavailable("heart failed: service browned out")
        broadcast = self.get_broadcast(broadcast_id)
        if not broadcast.is_live:
            raise ServiceError(f"broadcast {broadcast_id} has ended")
        broadcast.hearts.append(Heart(viewer_id=viewer_id, time=time))
        self._m_hearts.inc()

    def leave(self, broadcast_id: int, viewer_id: int, time: float) -> bool:
        """Mark the viewer's most recent open view as ended.

        Returns False when the viewer has no open view on this broadcast.
        Brownout-exempt: leaving is client-side bookkeeping, not a request
        the browned-out backend must serve.
        """
        broadcast = self.get_broadcast(broadcast_id)
        for index in range(len(broadcast.views) - 1, -1, -1):
            view = broadcast.views[index]
            if view.viewer_id == viewer_id and view.leave_time is None:
                if time < view.join_time:
                    raise ServiceError("cannot leave before joining")
                broadcast.views[index] = ViewRecord(
                    viewer_id=view.viewer_id,
                    join_time=view.join_time,
                    tier=view.tier,
                    leave_time=time,
                )
                return True
        return False


class ListService:
    """The global broadcast list API over the store's live view."""

    __slots__ = (
        "store", "gate", "global_list_size", "load_shedding", "region_cache",
        "_stale_list", "_m_api", "_m_lists",
    )

    def __init__(
        self,
        store: BroadcastStore,
        gate: FaultGate,
        global_list_size: int = 50,
        load_shedding: bool = False,
        region_cache: Optional[RegionCache] = None,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        self.store = store
        self.gate = gate
        self.global_list_size = global_list_size
        self.load_shedding = load_shedding
        self.region_cache = region_cache
        self._stale_list: Optional[GlobalListPage] = None
        self._m_api = metrics.counter("platform.api_calls", help="all service API calls")
        self._m_lists = metrics.counter("platform.global_list_queries")

    def query(
        self,
        time: float,
        rng: np.random.Generator,
        allow_stale: bool = True,
        region: Optional[str] = None,
    ) -> GlobalListPage:
        """The global list API: up to ``global_list_size`` random *public*
        active broadcasts.

        Private broadcasts never appear — the paper's crawl (and dataset)
        covers public broadcasts only.

        ``allow_stale=False`` opts out of brown-out load shedding: callers
        that can retry (the resilient crawler) prefer a retryable
        :class:`ServiceUnavailable` over silently stale data, while plain
        clients get the last good snapshot.  A shed response is re-stamped
        with the query ``time`` and carries the snapshot's own time in
        ``snapshot_time`` so degraded-mode consumers can tell data age
        apart from response time.

        ``region`` names the region cache entry a fresh sample should
        populate (the frontend tier's fast path); the facade passes None.
        """
        self._m_api.inc()
        self._m_lists.inc()
        if self.gate.failing_now():
            if allow_stale and self.load_shedding and self._stale_list is not None:
                # Brown-out load shedding: answer from the last good
                # snapshot instead of erroring (stale but available).
                self.gate.count_shed()
                return GlobalListPage(
                    time=time,
                    broadcast_ids=self._stale_list.broadcast_ids,
                    snapshot_time=self._stale_list.time,
                )
            self.gate.count_unavailable()
            raise ServiceUnavailable("global list failed: service browned out")
        page = self.sample(time, rng)
        if region is not None and self.region_cache is not None:
            self.region_cache.put(region, page)
        return page

    def sample(self, time: float, rng: np.random.Generator) -> GlobalListPage:
        """Freshly sample the live set (no fault surface, no caching)."""
        store = self.store
        live = [
            broadcast_id
            for broadcast_id in store.live_ids
            if not store.get(broadcast_id).is_private
        ]
        if len(live) <= self.global_list_size:
            chosen = tuple(live)
        else:
            indices = rng.choice(len(live), size=self.global_list_size, replace=False)
            chosen = tuple(live[i] for i in indices)
        page = GlobalListPage(time=time, broadcast_ids=chosen)
        self._stale_list = page  # refreshed on every success: shedding source
        return page

    def cache_lookup(self, region: str, now: float) -> Optional[GlobalListPage]:
        """The region's cached page re-stamped at ``now``, if still fresh.

        The frontend answers cache hits ahead of the backend queue (no
        brownout coin is flipped — the backend was never consulted).
        """
        if self.region_cache is None:
            return None
        return self.region_cache.get(region, now)
