"""Closed-loop load generation and the ``repro serve-bench`` harness.

:func:`run_serve_bench` stands up the full serving stack — sharded store,
region cache, service tier, admission-controlled frontend — and drives it
with N closed-loop polling clients.  Each client thinks (exponential think
time from its own named rng substream), polls the global list, joins a
broadcast off the page with some probability, maybe comments or hearts,
and goes back to thinking; 503-style responses (shed / browned out) are
retried through the existing :class:`~repro.faults.resilience.RetryPolicy`
with exponential backoff.  A churn driver starts and ends broadcasts on
the control plane so the live set the clients poll keeps moving.

An optional flash crowd joins mid-run: a burst of extra clients with a
much shorter think time, modelling the paper's suddenly-popular-broadcast
load spikes.  At baseline scale admission control never engages (zero
shed, zero errors); under the flash crowd the per-class token buckets turn
the excess away at the door while the latency of admitted requests stays
bounded — which is the property ``scripts/check.sh serve`` gates on.

Everything is driven by simulated time and named rng substreams, so one
seed produces one byte-identical :class:`ServeBenchReport` (including the
latency histogram's exact bucket counts).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.faults.resilience import RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.platform.apps import PERISCOPE_PROFILE, AppProfile
from repro.platform.users import UserRegistry
from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.frontend import ERROR, OK, Response, ServiceFrontend
from repro.service.services import BroadcastService, FaultGate, ListService
from repro.service.store import BroadcastStore, RegionCache
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams


@dataclass(frozen=True)
class FlashCrowdConfig:
    """A mid-run burst of impatient extra clients."""

    start_s: float = 20.0
    duration_s: float = 20.0
    extra_clients: int = 150
    think_time_s: float = 0.25

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("flash crowd start/duration must be sane")
        if self.extra_clients < 1:
            raise ValueError("extra_clients must be at least 1")
        if self.think_time_s <= 0:
            raise ValueError("think_time_s must be positive")


@dataclass(frozen=True)
class LoadGenConfig:
    """Knobs for one serve-bench run (defaults = the toy baseline)."""

    n_clients: int = 16
    duration_s: float = 60.0
    think_time_s: float = 2.0
    n_broadcasters: int = 8
    churn_interval_s: float = 5.0
    join_prob: float = 0.5
    comment_prob: float = 0.3
    heart_prob: float = 0.5
    region: str = "global"
    cache_ttl_s: float = 1.0
    concurrency: int = 4
    flash_crowd: Optional[FlashCrowdConfig] = None

    def __post_init__(self) -> None:
        if self.n_clients < 1 or self.n_broadcasters < 1:
            raise ValueError("need at least one client and one broadcaster")
        if self.duration_s <= 0 or self.think_time_s <= 0:
            raise ValueError("duration_s and think_time_s must be positive")
        if self.churn_interval_s < 0:
            raise ValueError("churn_interval_s must be non-negative (0 = no churn)")
        for name in ("join_prob", "comment_prob", "heart_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")


@dataclass
class _ClientStats:
    """Mutable tallies shared by every client in one run."""

    retries: int = 0
    give_ups: int = 0
    stale_joins: int = 0  # joins that raced a broadcast ending (expected)
    unexpected_errors: int = 0
    cycles: int = 0


class _Client:
    """One closed-loop polling client: think, poll, engage, repeat."""

    def __init__(
        self,
        client_id: int,
        viewer_id: int,
        frontend: ServiceFrontend,
        config: LoadGenConfig,
        rng,
        stats: _ClientStats,
        stop_at: float,
        think_time_s: float,
    ) -> None:
        self.client_id = client_id
        self.viewer_id = viewer_id
        self.frontend = frontend
        self.simulator = frontend.simulator
        self.config = config
        self.rng = rng
        self.stats = stats
        self.stop_at = stop_at
        self.think_time_s = think_time_s
        self.retry_policy = RetryPolicy(
            max_attempts=4, base_delay_s=0.25, backoff=2.0, max_delay_s=2.0,
            jitter_frac=0.1, rng=rng,
        )
        self._attempt = 0
        self._cycle_started = 0.0

    def start(self) -> None:
        """Begin the loop with a uniform stagger (no thundering herd at 0)."""
        self.simulator.schedule(
            float(self.rng.random()) * self.think_time_s,
            self._cycle,
            label="client-think",
        )

    def _cycle(self) -> None:
        if self.simulator.now >= self.stop_at:
            return
        self.stats.cycles += 1
        self._attempt = 0
        self._cycle_started = self.simulator.now
        self._poll()

    def _poll(self) -> None:
        self.frontend.submit(
            "global_list", self.client_id, self._on_list, region=self.config.region
        )

    def _on_list(self, response: Response) -> None:
        if response.retryable:
            delay = self.retry_policy.next_delay(
                self._attempt, self.simulator.now - self._cycle_started
            )
            self._attempt += 1
            if delay is not None and self.simulator.now + delay < self.stop_at:
                self.stats.retries += 1
                self.simulator.schedule(delay, self._poll, label="client-retry")
            else:
                self.stats.give_ups += 1
                self._think()
            return
        page = response.page
        if (
            response.status == OK
            and page is not None
            and page.broadcast_ids
            and self.rng.random() < self.config.join_prob
        ):
            index = int(self.rng.integers(len(page.broadcast_ids)))
            self.frontend.submit(
                "join",
                self.client_id,
                self._on_join,
                broadcast_id=page.broadcast_ids[index],
                viewer_id=self.viewer_id,
            )
            return
        self._think()

    def _on_join(self, response: Response) -> None:
        self._count_failure(response)
        if response.status == OK:
            broadcast_id = response.request.broadcast_id
            if self.rng.random() < self.config.comment_prob:
                self.frontend.submit(
                    "comment", self.client_id, self._on_engage,
                    broadcast_id=broadcast_id, viewer_id=self.viewer_id,
                )
                return
            if self.rng.random() < self.config.heart_prob:
                self.frontend.submit(
                    "heart", self.client_id, self._on_engage,
                    broadcast_id=broadcast_id, viewer_id=self.viewer_id,
                )
                return
        self._think()

    def _on_engage(self, response: Response) -> None:
        self._count_failure(response)
        self._think()

    def _count_failure(self, response: Response) -> None:
        if response.status != ERROR:
            return
        if "has ended" in response.detail:
            # The page the client acted on can always be a beat behind the
            # live set (cache TTL + queueing); racing an ended broadcast is
            # an expected consequence of serving lists from snapshots.
            self.stats.stale_joins += 1
        else:
            self.stats.unexpected_errors += 1

    def _think(self) -> None:
        self.simulator.schedule(
            float(self.rng.exponential(self.think_time_s)),
            self._cycle,
            label="client-think",
        )


class _ChurnDriver:
    """Control-plane churn: end the oldest broadcast, start a fresh one."""

    def __init__(
        self,
        broadcasts: BroadcastService,
        simulator: Simulator,
        broadcaster_ids: list[int],
        interval_s: float,
        stop_at: float,
    ) -> None:
        self.broadcasts = broadcasts
        self.simulator = simulator
        self.broadcaster_ids = broadcaster_ids
        self.interval_s = interval_s
        self.stop_at = stop_at
        self.live: deque[int] = deque()
        self._next_broadcaster = 0

    def start_initial(self) -> None:
        for _ in self.broadcaster_ids:
            self._start_one()
        if self.interval_s > 0:
            self.simulator.schedule(self.interval_s, self._tick, label="churn")

    def _start_one(self) -> None:
        broadcaster_id = self.broadcaster_ids[
            self._next_broadcaster % len(self.broadcaster_ids)
        ]
        self._next_broadcaster += 1
        broadcast = self.broadcasts.start_broadcast(
            broadcaster_id, self.simulator.now
        )
        self.live.append(broadcast.broadcast_id)

    def _tick(self) -> None:
        if self.simulator.now >= self.stop_at:
            return
        if self.live:
            self.broadcasts.end_broadcast(self.live.popleft(), self.simulator.now)
        self._start_one()
        if self.simulator.now + self.interval_s <= self.stop_at:
            self.simulator.schedule(self.interval_s, self._tick, label="churn")

    def end_all(self, time: float) -> None:
        """Wind down every still-live bench broadcast."""
        while self.live:
            self.broadcasts.end_broadcast(self.live.popleft(), time)


@dataclass(frozen=True)
class ServeBenchReport:
    """The outcome of one serve-bench run, stable for a fixed seed."""

    seed: int
    admission_enabled: bool
    flash_crowd: bool
    duration_s: float
    n_clients: int
    requests: int
    ok: int
    shed: int
    unavailable: int
    errors: int
    stale_joins: int
    retries: int
    give_ups: int
    cache_served: int
    admitted: int
    shed_by_reason: dict[str, int] = field(default_factory=dict)
    latency_p50_s: float = 0.0
    latency_p99_s: float = 0.0
    latency_mean_s: float = 0.0
    latency_count: int = 0
    latency_histogram: dict[str, int] = field(default_factory=dict)
    list_p99_s: float = 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of submitted requests turned away by admission."""
        return self.shed / self.requests if self.requests else 0.0

    @property
    def error_rate(self) -> float:
        """Fraction of submitted requests that failed unexpectedly."""
        return (self.errors + self.unavailable) / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        """JSON-able snapshot (what the determinism check compares)."""
        return {
            "seed": self.seed,
            "admission_enabled": self.admission_enabled,
            "flash_crowd": self.flash_crowd,
            "duration_s": self.duration_s,
            "n_clients": self.n_clients,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "unavailable": self.unavailable,
            "errors": self.errors,
            "stale_joins": self.stale_joins,
            "retries": self.retries,
            "give_ups": self.give_ups,
            "cache_served": self.cache_served,
            "admitted": self.admitted,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "shed_rate": self.shed_rate,
            "error_rate": self.error_rate,
            "latency_p50_s": self.latency_p50_s,
            "latency_p99_s": self.latency_p99_s,
            "latency_mean_s": self.latency_mean_s,
            "latency_count": self.latency_count,
            "latency_histogram": dict(self.latency_histogram),
            "list_p99_s": self.list_p99_s,
        }

    def render(self) -> str:
        """Human-readable report for the CLI."""
        lines = [
            "serve-bench "
            f"(seed={self.seed}, clients={self.n_clients}, "
            f"duration={self.duration_s:g}s, "
            f"admission={'on' if self.admission_enabled else 'off'}, "
            f"flash_crowd={'on' if self.flash_crowd else 'off'})",
            f"  requests      {self.requests:8d}   ok {self.ok} / shed {self.shed}"
            f" / unavailable {self.unavailable} / errors {self.errors}",
            f"  shed rate     {self.shed_rate:8.2%}   error rate {self.error_rate:.2%}"
            f"   stale joins {self.stale_joins}",
            f"  retries       {self.retries:8d}   give-ups {self.give_ups}",
            f"  cache served  {self.cache_served:8d}   admitted {self.admitted}",
            f"  latency p50   {self.latency_p50_s * 1e3:8.2f} ms"
            f"   p99 {self.latency_p99_s * 1e3:.2f} ms"
            f"   mean {self.latency_mean_s * 1e3:.2f} ms"
            f"   (n={self.latency_count})",
            f"  list p99      {self.list_p99_s * 1e3:8.2f} ms",
        ]
        for reason, count in sorted(self.shed_by_reason.items()):
            lines.append(f"  shed[{reason}]  {count}")
        return "\n".join(lines)


def run_serve_bench(
    seed: int = 2016,
    config: Optional[LoadGenConfig] = None,
    admission: bool = True,
    admission_policy: Optional[AdmissionPolicy] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ServeBenchReport:
    """Run one closed-loop serving benchmark and summarize it.

    Builds the tiered stack (store + region cache, services, frontend) and
    drives it with ``config.n_clients`` polling clients for
    ``config.duration_s`` simulated seconds, plus the configured flash
    crowd.  Deterministic: the report (including exact latency histogram
    buckets) is a pure function of ``seed`` and ``config``.
    """
    config = config if config is not None else LoadGenConfig()
    metrics = metrics if metrics is not None else MetricsRegistry()
    simulator = Simulator(metrics=metrics)
    streams = RandomStreams(seed=seed)

    users = UserRegistry()
    profile: AppProfile = PERISCOPE_PROFILE
    store = BroadcastStore(metrics=metrics)
    region_cache = RegionCache(ttl_s=config.cache_ttl_s, metrics=metrics)
    gate = FaultGate(metrics=metrics)
    broadcast_service = BroadcastService(
        store, users, profile, gate, region_cache=region_cache, metrics=metrics
    )
    list_service = ListService(
        store, gate, region_cache=region_cache, metrics=metrics
    )
    controller = (
        AdmissionController(policy=admission_policy, metrics=metrics)
        if admission
        else None
    )
    frontend = ServiceFrontend(
        simulator,
        broadcast_service,
        list_service,
        rng=streams.get("service.list"),
        admission=controller,
        concurrency=config.concurrency,
        metrics=metrics,
    )

    broadcasters = users.register_many(config.n_broadcasters)
    churn = _ChurnDriver(
        broadcast_service,
        simulator,
        [user.user_id for user in broadcasters],
        config.churn_interval_s,
        stop_at=config.duration_s,
    )
    churn.start_initial()

    stats = _ClientStats()
    flash = config.flash_crowd
    extra = flash.extra_clients if flash is not None else 0
    viewers = users.register_many(config.n_clients + extra)

    for index in range(config.n_clients):
        _Client(
            client_id=index,
            viewer_id=viewers[index].user_id,
            frontend=frontend,
            config=config,
            rng=streams.get(f"loadgen.client.{index:04d}"),
            stats=stats,
            stop_at=config.duration_s,
            think_time_s=config.think_time_s,
        ).start()

    if flash is not None:

        def unleash_crowd() -> None:
            stop_at = min(config.duration_s, flash.start_s + flash.duration_s)
            for offset in range(flash.extra_clients):
                index = config.n_clients + offset
                _Client(
                    client_id=index,
                    viewer_id=viewers[index].user_id,
                    frontend=frontend,
                    config=config,
                    rng=streams.get(f"loadgen.flash.{offset:04d}"),
                    stats=stats,
                    stop_at=stop_at,
                    think_time_s=flash.think_time_s,
                ).start()

        simulator.schedule_at(flash.start_s, unleash_crowd, label="flash-crowd")

    simulator.run(until=config.duration_s)
    simulator.run()  # drain in-flight responses and post-deadline thinks
    churn.end_all(simulator.now)

    def counter_value(name: str) -> int:
        return int(metrics.counter(name).value) if name in metrics else 0

    shed_by_reason: dict[str, int] = {}
    if controller is not None:
        for name in metrics.names():
            prefix = "service.admission.shed."
            if name.startswith(prefix):
                value = int(metrics.counter(name).value)
                if value:
                    shed_by_reason[name[len(prefix):]] = value

    latency = metrics.histogram("service.request.latency_s")
    list_latency = metrics.histogram("service.request.latency_s.global_list")
    return ServeBenchReport(
        seed=seed,
        admission_enabled=admission,
        flash_crowd=flash is not None,
        duration_s=config.duration_s,
        n_clients=config.n_clients + extra,
        requests=counter_value("service.frontend.requests"),
        ok=counter_value("service.frontend.responses.ok"),
        shed=counter_value("service.frontend.responses.shed"),
        unavailable=counter_value("service.frontend.responses.unavailable"),
        errors=stats.unexpected_errors,
        stale_joins=stats.stale_joins,
        retries=stats.retries,
        give_ups=stats.give_ups,
        cache_served=counter_value("service.frontend.cache_served"),
        admitted=counter_value("service.admission.admitted"),
        shed_by_reason=shed_by_reason,
        latency_p50_s=latency.quantile(0.50) if latency.count else 0.0,
        latency_p99_s=latency.quantile(0.99) if latency.count else 0.0,
        latency_mean_s=latency.mean,
        latency_count=latency.count,
        latency_histogram=latency.bucket_counts() if latency.count else {},
        list_p99_s=list_latency.quantile(0.99) if list_latency.count else 0.0,
    )
