"""The API/frontend tier: a deterministic event-loop request frontend.

:class:`ServiceFrontend` turns client requests into Simulator events: a
request is admission-checked on arrival (token buckets + queue depth, see
:mod:`repro.service.admission`), then waits in a FIFO queue for one of
``concurrency`` logical workers, executes against the service tier after a
per-action service time, and answers through the caller's callback.  Every
request's end-to-end latency span (submit to response) is recorded through
:mod:`repro.obs` histograms (``service.request.latency_s`` plus a
per-action breakdown), and backend executions carry ``serve:<action>``
event labels so the engine's span recorder aggregates per-action event
counts for free.

Global-list requests try the per-region snapshot cache *before* the
queue: a fresh cached page is answered on the fast path without touching
the backend (and without flipping the brownout coin — the backend was
never consulted), which is what keeps list p99 flat when a flash crowd
piles onto one region.

Everything runs on simulated time with injected randomness only (the
single rng is consumed by global-list sampling, in request-completion
order), so a seeded run produces byte-identical request histories.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.service.admission import AdmissionController
from repro.service.errors import GlobalListPage, ServiceError, ServiceUnavailable
from repro.service.services import BroadcastService, ListService
from repro.simulation.engine import Simulator

#: Frontend action -> admission API class.
ACTION_CLASSES = {
    "global_list": "list",
    "join": "join",
    "comment": "engage",
    "heart": "engage",
    "start_broadcast": "lifecycle",
    "end_broadcast": "lifecycle",
}

#: Backend service time per action (simulated seconds of worker time).
DEFAULT_SERVICE_TIMES_S = {
    "global_list": 0.030,
    "join": 0.010,
    "comment": 0.008,
    "heart": 0.005,
    "start_broadcast": 0.015,
    "end_broadcast": 0.015,
}

#: Response statuses.
OK = "ok"
SHED = "shed"  # turned away by admission control (retryable)
UNAVAILABLE = "unavailable"  # browned out backend (retryable)
ERROR = "error"  # invalid API usage (not retryable)


@dataclass(frozen=True)
class Request:
    """One client request submitted to the frontend."""

    request_id: int
    action: str
    client_id: int
    submitted_at: float
    region: str = "global"
    broadcast_id: Optional[int] = None
    viewer_id: Optional[int] = None
    broadcaster_id: Optional[int] = None

    @property
    def api_class(self) -> str:
        """The admission API class this request is billed against."""
        return ACTION_CLASSES[self.action]


@dataclass(frozen=True)
class Response:
    """The frontend's answer to one request."""

    request: Request
    status: str
    completed_at: float
    page: Optional[GlobalListPage] = None
    broadcast_id: Optional[int] = None
    detail: str = ""

    @property
    def latency_s(self) -> float:
        """Simulated seconds from submission to this response."""
        return self.completed_at - self.request.submitted_at

    @property
    def retryable(self) -> bool:
        """503-style statuses a :class:`RetryPolicy` should retry."""
        return self.status in (SHED, UNAVAILABLE)


#: Delivered exactly once per submitted request.
ResponseCallback = Callable[[Response], None]


class ServiceFrontend:
    """Admission-controlled, queue-fed frontend over the service tier."""

    def __init__(
        self,
        simulator: Simulator,
        broadcasts: BroadcastService,
        lists: ListService,
        rng: np.random.Generator,
        admission: Optional[AdmissionController] = None,
        concurrency: int = 4,
        service_times_s: Optional[dict[str, float]] = None,
        cache_hit_time_s: float = 0.002,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        self.simulator = simulator
        self.broadcasts = broadcasts
        self.lists = lists
        self.rng = rng
        self.admission = admission
        self.concurrency = concurrency
        self.service_times_s = dict(DEFAULT_SERVICE_TIMES_S)
        if service_times_s:
            for action in service_times_s:
                if action not in ACTION_CLASSES:
                    raise ValueError(f"unknown action {action!r}")
            self.service_times_s.update(service_times_s)
        self.cache_hit_time_s = cache_hit_time_s
        self._queue: deque[tuple[Request, ResponseCallback]] = deque()
        self._busy = 0
        self._next_request_id = 1
        self._m_requests = metrics.counter(
            "service.frontend.requests", help="requests submitted to the frontend"
        )
        self._m_status = {
            status: metrics.counter(f"service.frontend.responses.{status}")
            for status in (OK, SHED, UNAVAILABLE, ERROR)
        }
        self._m_cache_served = metrics.counter(
            "service.frontend.cache_served",
            help="global-list requests answered from the region cache",
        )
        self._g_queue = metrics.gauge(
            "service.frontend.queue_depth", help="requests waiting for a worker"
        )
        self._h_latency = metrics.histogram(
            "service.request.latency_s",
            help="request latency, submit to response (backend-served only)",
        )
        self._h_by_action = {
            action: metrics.histogram(f"service.request.latency_s.{action}")
            for action in sorted(ACTION_CLASSES)
        }

    @property
    def queue_depth(self) -> int:
        """Requests waiting for a worker (excludes the in-flight ones)."""
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Requests currently executing on a worker."""
        return self._busy

    # -- submission -------------------------------------------------------

    def submit(
        self,
        action: str,
        client_id: int,
        callback: ResponseCallback,
        region: str = "global",
        broadcast_id: Optional[int] = None,
        viewer_id: Optional[int] = None,
        broadcaster_id: Optional[int] = None,
    ) -> Request:
        """Submit one request; the response arrives via ``callback``."""
        if action not in ACTION_CLASSES:
            raise ValueError(f"unknown action {action!r}; known: {sorted(ACTION_CLASSES)}")
        now = self.simulator.now
        request = Request(
            request_id=self._next_request_id,
            action=action,
            client_id=client_id,
            submitted_at=now,
            region=region,
            broadcast_id=broadcast_id,
            viewer_id=viewer_id,
            broadcaster_id=broadcaster_id,
        )
        self._next_request_id += 1
        self._m_requests.inc()
        if self.admission is not None:
            verdict = self.admission.admit(
                request.api_class, now, queue_depth=len(self._queue) + self._busy
            )
            if verdict is not None:
                # Shed at the door: answered in the same instant as a
                # separate event, so the caller's stack has unwound.
                self.simulator.schedule(
                    0.0,
                    lambda: self._respond(
                        callback,
                        Response(
                            request=request,
                            status=SHED,
                            completed_at=self.simulator.now,
                            detail=verdict,
                        ),
                    ),
                    label="serve-shed",
                )
                return request
        if action == "global_list":
            cached = self.lists.cache_lookup(request.region, now)
            if cached is not None:
                self._m_cache_served.inc()
                self.simulator.schedule(
                    self.cache_hit_time_s,
                    lambda: self._respond(
                        callback,
                        Response(
                            request=request,
                            status=OK,
                            completed_at=self.simulator.now,
                            page=GlobalListPage(
                                time=self.simulator.now,
                                broadcast_ids=cached.broadcast_ids,
                                snapshot_time=cached.snapshot_time,
                            ),
                            detail="cache",
                        ),
                        record_latency=True,
                    ),
                    label="serve-cache",
                )
                return request
        self._queue.append((request, callback))
        self._g_queue.set(float(len(self._queue)))
        self._pump()
        return request

    # -- the worker loop --------------------------------------------------

    def _pump(self) -> None:
        while self._busy < self.concurrency and self._queue:
            request, callback = self._queue.popleft()
            self._g_queue.set(float(len(self._queue)))
            self._busy += 1
            self.simulator.schedule(
                self.service_times_s[request.action],
                lambda request=request, callback=callback: self._execute(
                    request, callback
                ),
                label=f"serve:{request.action}",
            )

    def _execute(self, request: Request, callback: ResponseCallback) -> None:
        """Run the backend call at the end of the request's service time."""
        now = self.simulator.now
        page: Optional[GlobalListPage] = None
        broadcast_id: Optional[int] = None
        status = OK
        detail = ""
        try:
            action = request.action
            if action == "global_list":
                page = self.lists.query(
                    now, self.rng, allow_stale=True, region=request.region
                )
            elif action == "join":
                self.broadcasts.join(request.broadcast_id, request.viewer_id, now)
            elif action == "comment":
                if not self.broadcasts.comment(
                    request.broadcast_id, request.viewer_id, now
                ):
                    detail = "comment_cap"
            elif action == "heart":
                self.broadcasts.heart(request.broadcast_id, request.viewer_id, now)
            elif action == "start_broadcast":
                started = self.broadcasts.start_broadcast(request.broadcaster_id, now)
                broadcast_id = started.broadcast_id
            else:  # end_broadcast (submit() validated the action set)
                self.broadcasts.end_broadcast(request.broadcast_id, now)
                broadcast_id = request.broadcast_id
        except ServiceUnavailable as exc:
            status = UNAVAILABLE
            detail = str(exc)
        except ServiceError as exc:
            status = ERROR
            detail = str(exc)
        self._busy -= 1
        self._respond(
            callback,
            Response(
                request=request,
                status=status,
                completed_at=now,
                page=page,
                broadcast_id=broadcast_id,
                detail=detail,
            ),
            record_latency=True,
        )
        self._pump()

    def _respond(
        self,
        callback: ResponseCallback,
        response: Response,
        record_latency: bool = False,
    ) -> None:
        if record_latency:
            # Shed responses are excluded: their near-zero turnaround would
            # make an overloaded run look *faster* than a healthy one.
            self._h_latency.observe(response.latency_s)
            self._h_by_action[response.request.action].observe(response.latency_s)
        self._m_status[response.status].inc()
        callback(response)
