"""Canonical API error types and response pages for the serving layer.

Historically these lived in :mod:`repro.platform.service`; they are defined
here so the storage/service/frontend tiers can raise them without importing
the facade (which imports the tiers — the other direction).  The facade
module re-exports every name, so ``from repro.platform.service import
ServiceError`` keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class ServiceError(Exception):
    """Raised on invalid API usage (joining a dead broadcast, etc.)."""


class ServiceUnavailable(ServiceError):
    """Transient 503-style failure: the service is browned out.

    Raised (probabilistically, at the injected failure rate) while a
    :class:`~repro.faults.injector.FaultInjector` marks the service browned
    out.  Callers are expected to retry — this is the error class
    :class:`~repro.faults.resilience.RetryPolicy` treats as retryable.
    """


@dataclass(frozen=True)
class GlobalListPage:
    """One response from the global broadcast list API.

    ``time`` is always the query time the caller supplied.  When the page
    was answered from a stale snapshot (brown-out load shedding) or a
    region cache, ``snapshot_time`` records when the underlying sample was
    actually taken; for a freshly sampled page it is ``None``.
    """

    time: float
    broadcast_ids: tuple[int, ...]
    snapshot_time: Optional[float] = None

    @property
    def is_stale(self) -> bool:
        """True when this page was served from an older snapshot."""
        return self.snapshot_time is not None and self.snapshot_time < self.time

    @property
    def age_s(self) -> float:
        """Seconds between the underlying sample and the query (0 if fresh)."""
        if self.snapshot_time is None:
            return 0.0
        return max(0.0, self.time - self.snapshot_time)
