"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro --list
    python -m repro fig11
    python -m repro table1 --scale 0.001 --seed 7
    python -m repro --all
    python -m repro lint src benchmarks   # determinism linter (see LINTING.md)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.experiments.registry import get_experiment, list_experiments, run_experiment

#: Experiments whose runners accept (scale, seed).
_TRACE_EXPERIMENTS = {"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7"}
#: Experiments whose runners accept (n_broadcasts, seed).
_CAMPAIGN_EXPERIMENTS = {"fig12", "fig13", "fig16", "fig17"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables/figures from 'Anatomy of a Personalized "
            "Livestreaming System' (IMC 2016) on the simulated system."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=(
            "experiment IDs to run (e.g. table1 fig11); see --list. "
            "The special target 'metrics' runs a small instrumented "
            "scenario and prints the observability registry as JSON; "
            "'chaos' runs the fault-injection scenario in both naive and "
            "resilient postures and prints the comparison; 'trace' "
            "generates a workload trace (optionally sharded across "
            "--workers processes, reusing --cache-dir) and prints a "
            "summary; 'serve-bench' drives the tiered serving layer with "
            "closed-loop polling clients (--clients/--duration/"
            "--flash-crowd/--no-admission) and prints latency and shed "
            "rates; 'lint' runs the determinism linter (its own flags — "
            "see 'repro lint --help')."
        ),
    )
    parser.add_argument("--list", action="store_true", help="list experiment IDs and exit")
    parser.add_argument("--all", action="store_true", help="run every experiment in paper order")
    parser.add_argument(
        "--scale", type=float, default=None,
        help="trace scale for table1/table2/fig1-7 (default 0.0005)",
    )
    parser.add_argument("--seed", type=int, default=None, help="root random seed")
    parser.add_argument(
        "--broadcasts", type=int, default=None,
        help="delay-crawl campaign size for fig12/13/16/17 (default 60)",
    )
    parser.add_argument(
        "--intensity", type=float, default=None,
        help="fault intensity for the 'chaos' target (default 1.0)",
    )
    parser.add_argument(
        "--clients", type=int, default=None,
        help="closed-loop clients for the 'serve-bench' target (default 16)",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="simulated seconds for the 'serve-bench' target (default 60)",
    )
    parser.add_argument(
        "--flash-crowd", action="store_true",
        help=(
            "hit the 'serve-bench' run with a mid-run flash crowd "
            "(10x extra clients polling at 0.25s think time)"
        ),
    )
    parser.add_argument(
        "--no-admission", action="store_true",
        help="disable admission control for the 'serve-bench' target",
    )
    parser.add_argument(
        "--app", choices=("periscope", "meerkat"), default="periscope",
        help="application profile for the 'trace' target (default periscope)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the 'trace' target (default 1)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="day-range shards for the 'trace' target (default auto)",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None, metavar="DIR",
        help="on-disk dataset cache for the 'trace' target (keyed by config hash)",
    )
    parser.add_argument(
        "--cache-format", choices=("v1", "v2", "mmap"), default="v2",
        help=(
            "serialization for new 'trace' cache entries: v2 binary "
            "columnar (default), v1 gzipped JSONL, or mmap uncompressed "
            "page-aligned columns (opened zero-copy); all store identical "
            "datasets and every cache reads the others' files"
        ),
    )
    parser.add_argument(
        "--run-dir", type=str, default=None, metavar="DIR",
        help=(
            "checkpoint directory for the 'trace' target: finished shards "
            "are journaled there atomically, so an interrupted run can be "
            "continued with --resume instead of starting over"
        ),
    )
    parser.add_argument(
        "--resume", action="store_true",
        help=(
            "resume the run checkpointed in --run-dir, skipping shards "
            "already done (requires --run-dir)"
        ),
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help=(
            "arm the runtime determinism sanitizer for the 'chaos' and "
            "'trace' targets: wall-clock/global-RNG reads from simulation "
            "code raise, and multi-process runs require a pinned "
            "PYTHONHASHSEED"
        ),
    )
    parser.add_argument(
        "--expect", action="store_true",
        help="also print each experiment's expected result from the paper",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="run the full reproduction scorecard (every paper claim) and exit",
    )
    parser.add_argument(
        "--out", type=str, default=None, metavar="FILE",
        help="also append all output to FILE",
    )
    return parser


def _kwargs_for(experiment_id: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {}
    if experiment_id in _TRACE_EXPERIMENTS:
        if args.scale is not None:
            kwargs["scale"] = args.scale
        if args.seed is not None:
            kwargs["seed"] = args.seed
    elif experiment_id in _CAMPAIGN_EXPERIMENTS:
        if args.broadcasts is not None:
            kwargs["n_broadcasts"] = args.broadcasts
        if args.seed is not None:
            kwargs["seed"] = args.seed
    elif experiment_id == "fig11" and args.seed is not None:
        kwargs["seed"] = args.seed
    elif experiment_id == "fig15" and args.seed is not None:
        kwargs["seed"] = args.seed
    elif experiment_id == "faultsweep" and args.seed is not None:
        kwargs["seed"] = args.seed
    elif experiment_id == "serving":
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.clients is not None:
            kwargs["n_clients"] = args.clients
        if args.duration is not None:
            kwargs["duration_s"] = args.duration
    return kwargs


def _render_trace(args: argparse.Namespace) -> str:
    """Generate a (possibly sharded) workload trace and format a summary."""
    from repro.obs import MetricsRegistry
    from repro.parallel import generate_trace
    from repro.workload.trace import TraceConfig

    factory = TraceConfig.meerkat if args.app == "meerkat" else TraceConfig.periscope
    config = factory(
        scale=args.scale if args.scale is not None else 0.0005,
        seed=args.seed if args.seed is not None else 2016,
        workers=args.workers if args.workers is not None else 1,
        shards=args.shards if args.shards is not None else 0,
    )
    registry = MetricsRegistry()
    started = time.perf_counter()
    trace = generate_trace(
        config,
        cache_dir=args.cache_dir,
        registry=registry,
        cache_format=args.cache_format,
        run_dir=args.run_dir,
        resume=args.resume,
    )
    elapsed = time.perf_counter() - started

    snapshot = registry.snapshot()
    dataset = trace.dataset
    cache_hit = snapshot["counters"].get("trace.cache_hits", {}).get("value", 0) > 0
    lines = [
        f"{config.app_name} trace — scale {config.scale:g}, seed {config.seed}, "
        f"{config.growth.days} days",
        f"broadcasts      {dataset.broadcast_count}",
        f"broadcasters    {dataset.broadcaster_count}",
        f"total views     {dataset.total_views}",
        f"generated in    {elapsed:.1f}s"
        + (f" ({dataset.broadcast_count / elapsed:.0f} broadcasts/s)" if elapsed > 0 else ""),
    ]
    # Per-phase wall times from the registry (graph is part of context).
    gauges = snapshot["gauges"]
    phases = [
        ("graph", "trace.graph_seconds"),
        ("context", "trace.context_seconds"),
        ("generate", "trace.generate_seconds"),
        ("merge", "trace.merge_seconds"),
    ]
    streamed = gauges.get("trace.merge_streamed", {}).get("value", 0) > 0
    for label, gauge_name in phases:
        if gauge_name in gauges:
            suffix = " (streamed)" if streamed and gauge_name == "trace.merge_seconds" else ""
            lines.append(f"phase {label:<9} {gauges[gauge_name]['value']:.2f}s{suffix}")
    if "trace.peak_rss_mb" in gauges:
        lines.append(f"peak RSS        {gauges['trace.peak_rss_mb']['value']:.0f} MB")
    if cache_hit:
        # A hit may have been served by any format's entry (cross-format
        # fall-through), so don't claim the requested format here.
        lines.append(
            f"dataset cache   hit ({args.cache_dir}, key {config.cache_key()})"
        )
    elif args.cache_dir:
        # When the mmap format was requested, the streamed merge writes
        # the entry directly; other formats go through a normal `put`.
        if streamed and args.cache_format == "mmap":
            stored = "mmap (streamed merge)"
        else:
            stored = args.cache_format
        lines.append(
            f"dataset cache   miss -> stored ({args.cache_dir}, "
            f"key {config.cache_key()}, format {stored})"
        )
    if args.run_dir:
        counters = snapshot["counters"]
        resumed = int(counters.get("trace.shards_resumed", {}).get("value", 0))
        retries = int(counters.get("trace.shard_retries", {}).get("value", 0))
        rebuilds = int(counters.get("trace.pool_rebuilds", {}).get("value", 0))
        detail = f"{resumed} shards resumed"
        if retries or rebuilds:
            detail += f", {retries} retries, {rebuilds} pool rebuilds"
        lines.append(f"run dir         {args.run_dir} ({detail})")
    shard_stats = snapshot["histograms"].get("trace.shard_seconds")
    if shard_stats and shard_stats["count"]:
        workers = int(snapshot["gauges"]["trace.workers"]["value"])
        lines.append(
            f"shards          {shard_stats['count']} over {workers} worker(s): "
            f"mean {shard_stats['mean']:.2f}s, max {shard_stats['max']:.2f}s"
        )
    return "\n".join(lines)


def _resume_invocation(args: argparse.Namespace) -> str:
    """The exact command line that continues an interrupted trace run."""
    parts = ["repro", "trace", "--run-dir", str(args.run_dir), "--resume"]
    if args.scale is not None:
        parts += ["--scale", f"{args.scale:g}"]
    if args.seed is not None:
        parts += ["--seed", str(args.seed)]
    if args.workers is not None:
        parts += ["--workers", str(args.workers)]
    if args.shards is not None:
        parts += ["--shards", str(args.shards)]
    if args.app != "periscope":
        parts += ["--app", args.app]
    if args.cache_dir:
        parts += ["--cache-dir", str(args.cache_dir)]
    if args.cache_format != "v2":
        parts += ["--cache-format", args.cache_format]
    if args.sanitize:
        parts.append("--sanitize")
    return " ".join(parts)


def _interrupt_summary(args: argparse.Namespace) -> str:
    """Progress report printed when a trace run is interrupted (Ctrl-C)."""
    if not args.run_dir:
        return "interrupted (no --run-dir; progress not checkpointed)"
    from repro.parallel import read_manifest

    manifest = read_manifest(args.run_dir)
    if manifest is None:
        return f"interrupted before any shard was checkpointed in {args.run_dir}"
    done = len(manifest.get("done", []))
    total = len(manifest.get("shard_plan", []))
    return (
        f"interrupted: {done}/{total} shards checkpointed in {args.run_dir}\n"
        f"resume with: {_resume_invocation(args)}"
    )


def _render_chaos(seed: int, intensity: float) -> str:
    """Run the chaos pair and format the naive/resilient comparison."""
    from repro.faults.scenario import run_chaos_pair

    naive, resilient = run_chaos_pair(seed=seed, fault_intensity=intensity)
    rows = [
        ("crawler coverage", f"{naive.coverage:.3f}", f"{resilient.coverage:.3f}"),
        ("chunk delivery ratio", f"{naive.delivery_ratio:.3f}", f"{resilient.delivery_ratio:.3f}"),
        ("mean e2e delay (s)", f"{naive.mean_e2e_delay_s:.2f}", f"{resilient.mean_e2e_delay_s:.2f}"),
        ("p99 e2e delay (s)", f"{naive.p99_e2e_delay_s:.2f}", f"{resilient.p99_e2e_delay_s:.2f}"),
        ("viewer poll failures", str(naive.viewer_poll_failures), str(resilient.viewer_poll_failures)),
        ("viewer retries", str(naive.viewer_retries), str(resilient.viewer_retries)),
        ("edge failovers", str(naive.viewer_failovers), str(resilient.viewer_failovers)),
        ("stale chunklists served", str(naive.stale_served), str(resilient.stale_served)),
        ("crawler queries failed", str(naive.queries_failed), str(resilient.queries_failed)),
        ("crawler retries", str(naive.crawler_retries), str(resilient.crawler_retries)),
    ]
    width = max(len(name) for name, _, _ in rows)
    lines = [
        f"Chaos run — seed {seed}, fault intensity {intensity:g}, "
        f"{naive.faults_injected} faults, availability {naive.availability:.3f}",
        f"{'':<{width}}  {'naive':>10}  {'resilient':>10}",
    ]
    lines += [f"{name:<{width}}  {n:>10}  {r:>10}" for name, n, r in rows]
    lines.append(
        "Resilient strictly dominates naive."
        if resilient.dominates(naive)
        else (
            "No faults injected — postures are identical."
            if intensity == 0
            else "WARNING: resilient does not strictly dominate naive at this point."
        )
    )
    return "\n".join(lines)


def _render_serve_bench(args: argparse.Namespace) -> str:
    """Run the closed-loop serving benchmark and format its report."""
    from repro.service.loadgen import FlashCrowdConfig, LoadGenConfig, run_serve_bench

    n_clients = args.clients if args.clients is not None else 16
    duration_s = args.duration if args.duration is not None else 60.0
    flash = None
    if args.flash_crowd:
        flash = FlashCrowdConfig(
            start_s=duration_s / 3.0,
            duration_s=duration_s / 3.0,
            extra_clients=15 * n_clients,
            think_time_s=0.15,
        )
    config = LoadGenConfig(
        n_clients=n_clients, duration_s=duration_s, flash_crowd=flash
    )
    report = run_serve_bench(
        seed=args.seed if args.seed is not None else 2016,
        config=config,
        admission=not args.no_admission,
    )
    return report.render()


def _sanitizer_guard(args: argparse.Namespace, workers: int = 1):
    """The runtime determinism sanitizer when ``--sanitize``, else a no-op.

    The sanitizer only observes — a clean run's output is byte-identical
    with it on or off (test-enforced) — so arming it never changes results,
    it only converts hidden wall-clock/global-RNG reads into hard errors.
    """
    if not args.sanitize:
        from contextlib import nullcontext

        return nullcontext()
    from repro.lint.sanitizer import DeterminismSanitizer

    return DeterminismSanitizer(workers=workers)


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(argv) if argv is not None else sys.argv[1:]
    if arguments and arguments[0] == "lint":
        # The linter owns its flags (--json, --list-rules); hand the rest
        # of the command line over before the experiment parser sees it.
        from repro.lint.cli import main as lint_main

        return lint_main(arguments[1:])

    parser = build_parser()
    args = parser.parse_args(arguments)

    sink = open(args.out, "a", encoding="utf-8") if args.out else None

    def emit(text: str) -> None:
        print(text)
        if sink is not None:
            sink.write(text + "\n")

    if args.list:
        for experiment_id in list_experiments():
            registered = get_experiment(experiment_id)
            emit(f"{experiment_id:<8} {registered.title}")
        return 0

    if args.validate:
        from repro.validation import render_scorecard, validate

        outcomes = validate()
        emit(render_scorecard(outcomes))
        if sink is not None:
            sink.close()
        return 0 if all(o.passed for o in outcomes) else 1

    if "metrics" in args.experiments:
        if len(args.experiments) > 1 or args.all:
            print(
                "error: 'metrics' emits a JSON snapshot and cannot be combined "
                "with other experiments",
                file=sys.stderr,
            )
            return 2
        from repro.obs.scenario import run_metrics_scenario

        registry = run_metrics_scenario(seed=args.seed if args.seed is not None else 7)
        emit(registry.as_json())
        if sink is not None:
            sink.close()
        return 0

    if "trace" in args.experiments:
        if len(args.experiments) > 1 or args.all:
            print(
                "error: 'trace' generates a dataset and cannot be combined "
                "with other experiments",
                file=sys.stderr,
            )
            return 2
        if args.resume and not args.run_dir:
            print("error: --resume requires --run-dir", file=sys.stderr)
            return 2
        try:
            with _sanitizer_guard(args, workers=args.workers if args.workers is not None else 1):
                summary = _render_trace(args)
        except KeyboardInterrupt:
            # The manifest is flushed on every shard publish, so the run
            # dir is already consistent — report progress, no traceback.
            print(_interrupt_summary(args), file=sys.stderr)
            if sink is not None:
                sink.close()
            return 130
        except ValueError as error:
            # RunDirError or a malformed REPRO_TRACE_* knob: a usage
            # problem, not a crash.
            print(f"error: {error}", file=sys.stderr)
            if sink is not None:
                sink.close()
            return 2
        emit(summary)
        if sink is not None:
            sink.close()
        return 0

    if "serve-bench" in args.experiments:
        if len(args.experiments) > 1 or args.all:
            print(
                "error: 'serve-bench' prints a serving-layer report and cannot "
                "be combined with other experiments",
                file=sys.stderr,
            )
            return 2
        emit(_render_serve_bench(args))
        if sink is not None:
            sink.close()
        return 0

    if "chaos" in args.experiments:
        if len(args.experiments) > 1 or args.all:
            print(
                "error: 'chaos' prints a naive/resilient comparison and cannot "
                "be combined with other experiments",
                file=sys.stderr,
            )
            return 2
        with _sanitizer_guard(args):
            comparison = _render_chaos(
                seed=args.seed if args.seed is not None else 7,
                intensity=args.intensity if args.intensity is not None else 1.0,
            )
        emit(comparison)
        if sink is not None:
            sink.close()
        return 0

    targets = list_experiments() if args.all else list(args.experiments)
    if not targets:
        parser.print_usage()
        print("error: name at least one experiment, or use --all / --list", file=sys.stderr)
        return 2

    known = set(list_experiments())
    unknown = [t for t in targets if t not in known]
    if unknown:
        print(f"error: unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(list_experiments())} (plus the special targets 'metrics', 'chaos', 'trace' and 'serve-bench')", file=sys.stderr)
        return 2

    for index, experiment_id in enumerate(targets):
        if index:
            emit("")
        registered = get_experiment(experiment_id)
        if args.expect and registered.paper_expectation:
            emit(f"[paper] {registered.paper_expectation}")
        started = time.perf_counter()
        result = run_experiment(experiment_id, **_kwargs_for(experiment_id, args))
        elapsed = time.perf_counter() - started
        emit(result.text)
        emit(f"[{experiment_id} regenerated in {elapsed:.1f}s]")
    if sink is not None:
        sink.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
