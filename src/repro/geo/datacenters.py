"""Datacenter catalogs for the simulated Periscope CDN.

The paper (§4.1, Figure 9) located 8 Wowza ingest datacenters (hosted on
Amazon EC2) and 23 Fastly edge POPs.  It reports that 6 of the 8 Wowza sites
have a Fastly POP co-located in the same city, 7 of 8 are at least on the
same continent, and the single exception is South America, where Fastly had
no POP at measurement time.  The catalogs below encode exactly those
structural facts using the EC2 regions and Fastly POP cities of mid-2015.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.geo.coordinates import GeoPoint


@dataclass(frozen=True)
class Datacenter:
    """A named CDN site."""

    name: str
    city: str
    continent: str
    location: GeoPoint
    operator: str  # "wowza" or "fastly"

    def distance_km(self, other: "Datacenter") -> float:
        return self.location.distance_km(other.location)

    @property
    def key(self) -> str:
        return f"{self.operator}:{self.name}"


def _wowza(name: str, city: str, continent: str, lat: float, lon: float) -> Datacenter:
    return Datacenter(name, city, continent, GeoPoint(lat, lon), "wowza")


def _fastly(name: str, city: str, continent: str, lat: float, lon: float) -> Datacenter:
    return Datacenter(name, city, continent, GeoPoint(lat, lon), "fastly")


#: The 8 Wowza ingest datacenters (EC2 regions, mid-2015).
WOWZA_DATACENTERS: tuple[Datacenter, ...] = (
    _wowza("us-east-1", "Ashburn", "North America", 39.04, -77.49),
    _wowza("us-west-1", "San Jose", "North America", 37.34, -121.89),
    _wowza("us-west-2", "Seattle", "North America", 47.61, -122.33),
    _wowza("eu-west-1", "Dublin", "Europe", 53.35, -6.26),
    _wowza("eu-central-1", "Frankfurt", "Europe", 50.11, 8.68),
    _wowza("ap-northeast-1", "Tokyo", "Asia", 35.68, 139.69),
    _wowza("ap-southeast-1", "Singapore", "Asia", 1.35, 103.82),
    _wowza("sa-east-1", "Sao Paulo", "South America", -23.55, -46.63),
)

#: The 23 Fastly edge POPs covering North America, Europe, Asia and Oceania.
FASTLY_DATACENTERS: tuple[Datacenter, ...] = (
    _fastly("IAD", "Ashburn", "North America", 39.04, -77.49),
    _fastly("SJC", "San Jose", "North America", 37.34, -121.89),
    _fastly("SEA", "Seattle", "North America", 47.61, -122.33),
    _fastly("LAX", "Los Angeles", "North America", 34.05, -118.24),
    _fastly("DEN", "Denver", "North America", 39.74, -104.99),
    _fastly("DFW", "Dallas", "North America", 32.78, -96.80),
    _fastly("ORD", "Chicago", "North America", 41.88, -87.63),
    _fastly("JFK", "New York", "North America", 40.71, -74.01),
    _fastly("ATL", "Atlanta", "North America", 33.75, -84.39),
    _fastly("MIA", "Miami", "North America", 25.76, -80.19),
    _fastly("YYZ", "Toronto", "North America", 43.65, -79.38),
    _fastly("LHR", "London", "Europe", 51.51, -0.13),
    _fastly("AMS", "Amsterdam", "Europe", 52.37, 4.90),
    _fastly("FRA", "Frankfurt", "Europe", 50.11, 8.68),
    _fastly("CDG", "Paris", "Europe", 48.86, 2.35),
    _fastly("BMA", "Stockholm", "Europe", 59.33, 18.07),
    _fastly("MAD", "Madrid", "Europe", 40.42, -3.70),
    _fastly("TYO", "Tokyo", "Asia", 35.68, 139.69),
    _fastly("ITM", "Osaka", "Asia", 34.69, 135.50),
    _fastly("SIN", "Singapore", "Asia", 1.35, 103.82),
    _fastly("HKG", "Hong Kong", "Asia", 22.32, 114.17),
    _fastly("SYD", "Sydney", "Oceania", -33.87, 151.21),
    _fastly("BNE", "Brisbane", "Oceania", -27.47, 153.03),
)


def nearest_datacenter(point: GeoPoint, datacenters: Sequence[Datacenter]) -> Datacenter:
    """The datacenter geographically closest to ``point``.

    This models both Periscope's nearest-Wowza broadcaster assignment and
    Fastly's IP-anycast viewer routing (§5.3), which to first order routes
    clients to the geographically closest POP.
    """
    if not datacenters:
        raise ValueError("empty datacenter list")
    return min(datacenters, key=lambda dc: dc.location.distance_km(point))


def colocated_fastly(wowza: Datacenter, fastly_sites: Iterable[Datacenter] = FASTLY_DATACENTERS) -> Datacenter:
    """The Fastly POP acting as gateway for a Wowza site.

    Prefers a same-city POP; otherwise falls back to the nearest POP (the
    Sao Paulo case, where Fastly had no South American presence and chunks
    exit the continent).
    """
    for site in fastly_sites:
        if site.city == wowza.city:
            return site
    return nearest_datacenter(wowza.location, tuple(fastly_sites))


def colocated_pairs(
    wowza_sites: Sequence[Datacenter] = WOWZA_DATACENTERS,
    fastly_sites: Sequence[Datacenter] = FASTLY_DATACENTERS,
) -> list[tuple[Datacenter, Datacenter]]:
    """All (Wowza, Fastly) pairs sharing a city — 6 of 8 in the catalog."""
    pairs = []
    for wowza in wowza_sites:
        for fastly in fastly_sites:
            if wowza.city == fastly.city:
                pairs.append((wowza, fastly))
    return pairs


#: Fastly's December 2015 expansion (paper footnote 6): Perth, Wellington
#: and Sao Paulo went live after the measurement window.  With Sao Paulo
#: online, the one Wowza DC without a same-continent POP gains a local
#: gateway — the counterfactual the footnote implies.
FASTLY_DATACENTERS_DEC2015: tuple[Datacenter, ...] = FASTLY_DATACENTERS + (
    _fastly("PER", "Perth", "Oceania", -31.95, 115.86),
    _fastly("WLG", "Wellington", "Oceania", -41.29, 174.78),
    _fastly("GRU", "Sao Paulo", "South America", -23.55, -46.63),
)
