"""Geographic substrate: coordinates, datacenter catalogs, latency models.

The paper found Periscope's CDN built on 8 Wowza (Amazon EC2) ingest
datacenters and 23 Fastly edge POPs, with 6 of 8 Wowza sites co-located with
a Fastly site in the same city.  This package encodes those catalogs, plus a
distance-based latency model used everywhere a packet crosses the simulated
wide-area network.
"""

from repro.geo.coordinates import GeoPoint, haversine_km
from repro.geo.datacenters import (
    Datacenter,
    FASTLY_DATACENTERS,
    WOWZA_DATACENTERS,
    colocated_pairs,
    nearest_datacenter,
)
from repro.geo.latency import LatencyModel, distance_bucket, DISTANCE_BUCKETS
from repro.geo.regions import POPULATION_CENTERS, Region, sample_user_location

__all__ = [
    "GeoPoint",
    "haversine_km",
    "Datacenter",
    "WOWZA_DATACENTERS",
    "FASTLY_DATACENTERS",
    "colocated_pairs",
    "nearest_datacenter",
    "LatencyModel",
    "distance_bucket",
    "DISTANCE_BUCKETS",
    "POPULATION_CENTERS",
    "Region",
    "sample_user_location",
]
