"""Population centers used to place simulated users on the globe.

Users (broadcasters and viewers) are drawn from a weighted mixture of major
metro areas, then scattered with Gaussian noise so that nearest-datacenter
assignment sees realistic geographic diversity.  Weights approximate the
2015 geographic mix of Periscope's user base — heavy in North America and
Europe, with significant Asia/Middle East usage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.coordinates import GeoPoint


@dataclass(frozen=True)
class Region:
    """A weighted population center."""

    name: str
    center: GeoPoint
    weight: float
    spread_deg: float = 2.0  # Gaussian scatter around the center, in degrees


POPULATION_CENTERS: tuple[Region, ...] = (
    Region("US East", GeoPoint(40.7, -74.0), 0.18),
    Region("US Central", GeoPoint(41.9, -87.6), 0.08),
    Region("US West", GeoPoint(34.1, -118.2), 0.14),
    Region("Canada", GeoPoint(43.7, -79.4), 0.03),
    Region("Brazil", GeoPoint(-23.6, -46.6), 0.05),
    Region("UK", GeoPoint(51.5, -0.1), 0.08),
    Region("Western Europe", GeoPoint(48.9, 2.4), 0.10),
    Region("Turkey", GeoPoint(41.0, 29.0), 0.07),
    Region("Middle East", GeoPoint(25.2, 55.3), 0.05),
    Region("Japan", GeoPoint(35.7, 139.7), 0.07),
    Region("Southeast Asia", GeoPoint(1.35, 103.8), 0.06),
    Region("India", GeoPoint(19.1, 72.9), 0.04),
    Region("Australia", GeoPoint(-33.9, 151.2), 0.05),
)


def sample_user_location(
    rng: np.random.Generator,
    regions: tuple[Region, ...] = POPULATION_CENTERS,
) -> GeoPoint:
    """Draw one user location from the regional mixture."""
    weights = np.array([region.weight for region in regions])
    weights = weights / weights.sum()
    region = regions[int(rng.choice(len(regions), p=weights))]
    lat = float(np.clip(rng.normal(region.center.lat, region.spread_deg), -89.9, 89.9))
    lon = float(rng.normal(region.center.lon, region.spread_deg))
    # Wrap longitude into [-180, 180].
    lon = (lon + 180.0) % 360.0 - 180.0
    return GeoPoint(lat, lon)
