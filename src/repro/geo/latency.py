"""Distance-based wide-area latency model.

Packets in the simulated CDN pay a propagation delay proportional to
great-circle distance (light in fibre at ~2/3 c, with a path-stretch factor
for real routing), plus a per-hop processing floor and lognormal jitter.
The parameters produce one-way delays of roughly 1–5 ms within a metro,
~35 ms across the US, and ~120 ms transatlantic-to-Asia — consistent with
the delay magnitudes behind the paper's Figure 15.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.coordinates import GeoPoint

#: Speed of light in fibre, km per second.
FIBRE_KM_PER_SECOND = 200_000.0

#: Distance buckets used by Figure 15 (km upper bounds; None = unbounded).
DISTANCE_BUCKETS: tuple[tuple[str, float, float], ...] = (
    ("co-located", 0.0, 0.0),
    ("(0, 500km]", 0.0, 500.0),
    ("(500, 5000km]", 500.0, 5000.0),
    ("(5000, 10000km]", 5000.0, 10000.0),
    (">10000km", 10000.0, float("inf")),
)


def distance_bucket(distance_km: float) -> str:
    """Figure 15's distance-bucket label for a DC pair separation."""
    if distance_km < 0:
        raise ValueError(f"negative distance: {distance_km}")
    if distance_km < 1.0:  # same city
        return "co-located"
    for label, lower, upper in DISTANCE_BUCKETS[1:]:
        if lower < distance_km <= upper:
            return label
    return ">10000km"


@dataclass
class LatencyModel:
    """One-way network delay as a function of endpoint geography.

    Parameters
    ----------
    path_stretch:
        Multiplier over great-circle distance accounting for indirect
        routing (typical measured values are 1.5–2.5).
    base_delay_s:
        Fixed per-path overhead: serialization, forwarding, kernel stacks.
    jitter_sigma:
        Sigma of the multiplicative lognormal jitter (0 disables jitter).
    """

    path_stretch: float = 2.0
    base_delay_s: float = 0.002
    jitter_sigma: float = 0.15

    def propagation_s(self, a: GeoPoint, b: GeoPoint) -> float:
        """Deterministic one-way propagation delay between two points."""
        distance = a.distance_km(b) * self.path_stretch
        return self.base_delay_s + distance / FIBRE_KM_PER_SECOND

    def one_way_s(self, a: GeoPoint, b: GeoPoint, rng: np.random.Generator) -> float:
        """One jittered one-way delay sample."""
        base = self.propagation_s(a, b)
        if self.jitter_sigma <= 0:
            return base
        return base * float(rng.lognormal(mean=0.0, sigma=self.jitter_sigma))

    def rtt_s(self, a: GeoPoint, b: GeoPoint, rng: np.random.Generator) -> float:
        """One jittered round-trip sample (two independent one-way draws)."""
        return self.one_way_s(a, b, rng) + self.one_way_s(b, a, rng)
