"""Determinism linter + runtime sanitizer for the reproduction.

Every number this repo reproduces rests on one invariant: **a run is a
pure function of (config, seed), with sim-time as the only clock**.  This
package enforces it by machine instead of by reviewer vigilance:

* a stdlib-only, AST-based static analyzer (``repro lint``) with a rule
  registry, per-finding ``# repro: allow[rule-id] reason`` suppressions
  (audited — an allow without a reason, naming no rule, or silencing
  nothing is itself a finding), and text/JSON reporters;
* a runtime :class:`DeterminismSanitizer` that patches the global
  ``random`` module and wall-clock functions to raise — naming the call
  site — whenever repo or test code touches them during a sanitized run,
  and verifies ``PYTHONHASHSEED`` is pinned before multi-process runs.

Usage::

    from repro.lint import lint_paths, render_text
    report = lint_paths(["src"])
    print(render_text(report))      # exit_code() == 0 means clean

    from repro.lint import DeterminismSanitizer
    with DeterminismSanitizer():
        simulator.run()             # any wall-clock/global-RNG read raises

See LINTING.md for the rule catalog and how to add a rule.
"""

from repro.lint.findings import Finding, Suppression, parse_suppressions
from repro.lint.graph import ProjectGraph, build_project_graph, render_dot
from repro.lint.reporters import (
    LINT_SCHEMA_VERSION,
    render_json,
    render_text,
    report_to_payload,
    validate_lint_payload,
)
from repro.lint.rules import FileContext, Rule, register, rule_catalog
from repro.lint.runner import (
    LintReport,
    SuppressedFinding,
    lint_file,
    lint_paths,
    lint_source,
    lint_sources,
)
from repro.lint.sanitizer import (
    DeterminismSanitizer,
    DeterminismViolation,
    is_active,
    sanitized,
    verify_hashseed_pinned,
)

__all__ = [
    "DeterminismSanitizer",
    "DeterminismViolation",
    "FileContext",
    "Finding",
    "LINT_SCHEMA_VERSION",
    "LintReport",
    "ProjectGraph",
    "Rule",
    "SuppressedFinding",
    "Suppression",
    "build_project_graph",
    "is_active",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "parse_suppressions",
    "register",
    "render_dot",
    "render_json",
    "render_text",
    "report_to_payload",
    "rule_catalog",
    "sanitized",
    "validate_lint_payload",
    "verify_hashseed_pinned",
]
