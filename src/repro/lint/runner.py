"""Walk files, run every rule, apply and audit suppressions.

The runner owns the three *meta* rules, which need whole-file suppression
state:

* ``suppression-missing-reason`` — an ``allow[...]`` with no reason does not
  suppress anything and is itself a finding;
* ``unknown-suppression`` — the bracketed id names no registered rule;
* ``unused-suppression`` — the suppression silenced nothing (stale after a
  fix; delete it).

plus ``parse-error`` for files the :mod:`ast` parser rejects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

# Importing checks registers every AST rule with the registry.
import repro.lint.checks  # noqa: F401  (import is the registration)
from repro.lint.findings import Finding, Suppression, parse_suppressions
from repro.lint.rules import (
    FileContext,
    ast_rules,
    declare_meta_rule,
    known_rule_ids,
)

PathLike = Union[str, Path]

RULE_SUPPRESSION_MISSING_REASON = declare_meta_rule(
    "suppression-missing-reason",
    "every # repro: allow[...] must carry a written justification",
)
RULE_UNKNOWN_SUPPRESSION = declare_meta_rule(
    "unknown-suppression",
    "suppression names a rule id that is not registered",
)
RULE_UNUSED_SUPPRESSION = declare_meta_rule(
    "unused-suppression",
    "suppression silenced no finding; delete it",
)
RULE_PARSE_ERROR = declare_meta_rule(
    "parse-error",
    "file does not parse; nothing else can be checked",
)


@dataclass
class SuppressedFinding:
    """A finding that an audited, justified suppression silenced."""

    finding: Finding
    reason: str

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {**self.finding.to_dict(), "reason": self.reason}


@dataclass
class LintReport:
    """Everything one lint run produced, ready for either reporter."""

    paths: list[str]
    files_checked: int = 0
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[SuppressedFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no live findings remain (suppressed ones don't count)."""
        return not self.findings

    def exit_code(self) -> int:
        """0 clean, 1 findings — the ``repro lint`` process exit code."""
        return 0 if self.clean else 1

    def by_rule(self) -> dict[str, int]:
        """Live finding counts keyed by rule id, sorted by id."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def merge(self, other: "LintReport") -> None:
        """Fold another file's report into this aggregate."""
        self.files_checked += other.files_checked
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)


def _match_suppression(
    finding: Finding, suppressions: Sequence[Suppression]
) -> Optional[Suppression]:
    """The suppression covering ``finding``, if any.

    Same-line comments cover their own line; a comment-only line also covers
    the next line (for statements too long to share a line with the reason).
    """
    for suppression in suppressions:
        if suppression.rule_id != finding.rule_id:
            continue
        if suppression.line == finding.line or (
            suppression.standalone and suppression.line == finding.line - 1
        ):
            return suppression
    return None


def lint_source(source: str, relpath: str, path: Optional[Path] = None) -> LintReport:
    """Lint one file's source text; the unit underneath :func:`lint_file`."""
    report = LintReport(paths=[relpath], files_checked=1)
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as error:
        report.findings.append(
            Finding(
                path=relpath,
                line=error.lineno or 1,
                col=(error.offset or 0) + 1,
                rule_id=RULE_PARSE_ERROR,
                message=f"syntax error: {error.msg}",
            )
        )
        return report

    ctx = FileContext(
        path=path if path is not None else Path(relpath),
        relpath=relpath,
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )
    suppressions = parse_suppressions(source)
    known = known_rule_ids()

    raw: list[Finding] = []
    for rule in ast_rules():
        raw.extend(rule.check(ctx))

    for finding in raw:
        suppression = _match_suppression(finding, suppressions)
        if suppression is None:
            report.findings.append(finding)
        elif suppression.reason:
            suppression.used = True
            report.suppressed.append(SuppressedFinding(finding, suppression.reason))
        else:
            # An unjustified allow[] does not suppress: keep the original
            # finding and add one for the missing reason.
            suppression.used = True
            report.findings.append(finding)
            report.findings.append(
                Finding(
                    path=relpath,
                    line=suppression.line,
                    col=1,
                    rule_id=RULE_SUPPRESSION_MISSING_REASON,
                    message=f"allow[{suppression.rule_id}] carries no justification; "
                    "state why the violation is acceptable",
                )
            )

    for suppression in suppressions:
        if suppression.rule_id not in known:
            report.findings.append(
                Finding(
                    path=relpath,
                    line=suppression.line,
                    col=1,
                    rule_id=RULE_UNKNOWN_SUPPRESSION,
                    message=f"allow[{suppression.rule_id}] names no registered rule "
                    "(see repro lint --list-rules)",
                )
            )
        elif not suppression.used:
            report.findings.append(
                Finding(
                    path=relpath,
                    line=suppression.line,
                    col=1,
                    rule_id=RULE_UNUSED_SUPPRESSION,
                    message=f"allow[{suppression.rule_id}] suppresses nothing; "
                    "delete the stale comment",
                )
            )

    report.findings.sort()
    return report


def lint_file(path: PathLike, root: Optional[Path] = None) -> LintReport:
    """Lint a single ``.py`` file from disk."""
    path = Path(path)
    relpath = _relpath(path, root)
    return lint_source(path.read_text(encoding="utf-8"), relpath, path=path)


def _relpath(path: Path, root: Optional[Path]) -> str:
    base = root if root is not None else Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(paths: Iterable[PathLike]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    seen: dict[Path, None] = {}
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for found in sorted(entry.rglob("*.py")):
                if "__pycache__" not in found.parts:
                    seen.setdefault(found.resolve(), None)
        elif entry.is_file() and entry.suffix == ".py":
            seen.setdefault(entry.resolve(), None)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {entry}")
    return sorted(seen)


def lint_paths(paths: Sequence[PathLike], root: Optional[Path] = None) -> LintReport:
    """Lint files and directory trees; the engine behind ``repro lint``."""
    report = LintReport(paths=[str(p) for p in paths])
    for path in iter_python_files(paths):
        report.merge(lint_file(path, root=root))
    report.findings.sort()
    return report
