"""Parse files, run per-file and whole-program rules, audit suppressions.

The run is a pipeline:

1. **parse** — every file becomes a :class:`ParsedUnit` (AST + parsed
   suppressions, or a ``parse-error`` finding);
2. **per-file rules** — each reported unit runs through the AST rules;
3. **project rules** — one :class:`~repro.lint.graph.ProjectGraph` is
   built from *all* parsed units (reported or not) and handed to the
   whole-program rules (architecture, dataflow, exports); their findings
   are routed back to the files they name;
4. **suppression audit** — per file, findings meet ``allow[...]``
   comments; the runner owns the meta rules for that audit:

   * ``suppression-missing-reason`` — an ``allow[...]`` with no reason
     does not suppress anything and is itself a finding;
   * ``unknown-suppression`` — the bracketed id names no registered rule;
   * ``unused-suppression`` — the suppression silenced nothing (stale
     after a fix; delete it).

Step 3 is why ``--changed`` can lint a handful of files *correctly*: the
graph still covers the full tree, only the reporting is narrowed.  The
flip side: linting a partial path set (``repro lint src/repro/platform``)
computes project rules on a partial graph, so project-rule suppressions
may be reported unused — the default full-tree invocation is the
authoritative gate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

# Importing checks/architecture/dataflow/exports registers every rule.
import repro.lint.checks  # noqa: F401  (import is the registration)
import repro.lint.architecture  # noqa: F401
import repro.lint.dataflow  # noqa: F401
import repro.lint.exports  # noqa: F401
from repro.lint.findings import Finding, Suppression, parse_suppressions
from repro.lint.graph import ProjectGraph, build_project_graph
from repro.lint.rules import (
    FileContext,
    ast_rules,
    declare_meta_rule,
    known_rule_ids,
    project_rules,
)

PathLike = Union[str, Path]

RULE_SUPPRESSION_MISSING_REASON = declare_meta_rule(
    "suppression-missing-reason",
    "every # repro: allow[...] must carry a written justification",
)
RULE_UNKNOWN_SUPPRESSION = declare_meta_rule(
    "unknown-suppression",
    "suppression names a rule id that is not registered",
)
RULE_UNUSED_SUPPRESSION = declare_meta_rule(
    "unused-suppression",
    "suppression silenced no finding; delete it",
)
RULE_PARSE_ERROR = declare_meta_rule(
    "parse-error",
    "file does not parse; nothing else can be checked",
)


@dataclass
class SuppressedFinding:
    """A finding that an audited, justified suppression silenced."""

    finding: Finding
    reason: str

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {**self.finding.to_dict(), "reason": self.reason}


@dataclass
class LintReport:
    """Everything one lint run produced, ready for either reporter."""

    paths: list[str]
    files_checked: int = 0
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[SuppressedFinding] = field(default_factory=list)
    #: ``project`` section of the JSON report (graph pass statistics).
    project: dict = field(default_factory=dict)
    #: The import graph the project passes ran on (``--graph-dot``).
    graph: Optional[ProjectGraph] = field(default=None, repr=False, compare=False)

    @property
    def clean(self) -> bool:
        """True when no live findings remain (suppressed ones don't count)."""
        return not self.findings

    def exit_code(self) -> int:
        """0 clean, 1 findings — the ``repro lint`` process exit code."""
        return 0 if self.clean else 1

    def by_rule(self) -> dict[str, int]:
        """Live finding counts keyed by rule id, sorted by id."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def merge(self, other: "LintReport") -> None:
        """Fold another report into this aggregate (no graph merge)."""
        self.files_checked += other.files_checked
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)


@dataclass
class ParsedUnit:
    """One file after parsing, before any rule runs."""

    relpath: str
    source: str
    path: Optional[Path] = None
    ctx: Optional[FileContext] = None
    suppressions: list[Suppression] = field(default_factory=list)
    parse_finding: Optional[Finding] = None


def parse_unit(source: str, relpath: str, path: Optional[Path] = None) -> ParsedUnit:
    """Parse one file into a :class:`ParsedUnit` (never raises on bad syntax)."""
    unit = ParsedUnit(relpath=relpath, source=source, path=path)
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as error:
        unit.parse_finding = Finding(
            path=relpath,
            line=error.lineno or 1,
            col=(error.offset or 0) + 1,
            rule_id=RULE_PARSE_ERROR,
            message=f"syntax error: {error.msg}",
        )
        return unit
    unit.ctx = FileContext(
        path=path if path is not None else Path(relpath),
        relpath=relpath,
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )
    unit.suppressions = parse_suppressions(source)
    return unit


def _match_suppression(
    finding: Finding, suppressions: Sequence[Suppression]
) -> Optional[Suppression]:
    """The suppression covering ``finding``, if any.

    Same-line comments cover their own line; a comment-only line also covers
    the next line (for statements too long to share a line with the reason).
    """
    for suppression in suppressions:
        if suppression.rule_id != finding.rule_id:
            continue
        if suppression.line == finding.line or (
            suppression.standalone and suppression.line == finding.line - 1
        ):
            return suppression
    return None


def _audit_unit(unit: ParsedUnit, raw: list[Finding], report: LintReport) -> None:
    """Apply and audit one file's suppressions against its raw findings."""
    known = known_rule_ids()
    for finding in sorted(raw):
        suppression = _match_suppression(finding, unit.suppressions)
        if suppression is None:
            report.findings.append(finding)
        elif suppression.reason:
            suppression.used = True
            report.suppressed.append(SuppressedFinding(finding, suppression.reason))
        else:
            # An unjustified allow[] does not suppress: keep the original
            # finding and add one for the missing reason.
            suppression.used = True
            report.findings.append(finding)
            report.findings.append(
                Finding(
                    path=unit.relpath,
                    line=suppression.line,
                    col=1,
                    rule_id=RULE_SUPPRESSION_MISSING_REASON,
                    message=f"allow[{suppression.rule_id}] carries no justification; "
                    "state why the violation is acceptable",
                )
            )

    for suppression in unit.suppressions:
        if suppression.rule_id not in known:
            report.findings.append(
                Finding(
                    path=unit.relpath,
                    line=suppression.line,
                    col=1,
                    rule_id=RULE_UNKNOWN_SUPPRESSION,
                    message=f"allow[{suppression.rule_id}] names no registered rule "
                    "(see repro lint --list-rules)",
                )
            )
        elif not suppression.used:
            report.findings.append(
                Finding(
                    path=unit.relpath,
                    line=suppression.line,
                    col=1,
                    rule_id=RULE_UNUSED_SUPPRESSION,
                    message=f"allow[{suppression.rule_id}] suppresses nothing; "
                    "delete the stale comment",
                )
            )


def lint_units(
    units: Sequence[ParsedUnit],
    paths: Optional[Sequence[str]] = None,
    report_relpaths: Optional[set] = None,
) -> LintReport:
    """The engine: run all rules over parsed units.

    ``report_relpaths`` narrows which files *report* findings (``--changed``);
    every parsed unit still contributes to the project graph.
    """
    reported = [
        unit
        for unit in units
        if report_relpaths is None or unit.relpath in report_relpaths
    ]
    report = LintReport(
        paths=list(paths) if paths is not None else [unit.relpath for unit in reported],
        files_checked=len(reported),
    )

    graph = build_project_graph([unit.ctx for unit in units if unit.ctx is not None])
    report.graph = graph
    report.project = graph.summary()

    raw_by_file: dict[str, list[Finding]] = {unit.relpath: [] for unit in units}
    for unit in reported:
        if unit.ctx is None:
            continue
        for rule in ast_rules():
            raw_by_file[unit.relpath].extend(rule.check(unit.ctx))
    for rule in project_rules():
        for finding in rule.check(graph):
            if finding.path in raw_by_file:
                raw_by_file[finding.path].append(finding)

    for unit in reported:
        if unit.parse_finding is not None:
            report.findings.append(unit.parse_finding)
            continue
        _audit_unit(unit, raw_by_file[unit.relpath], report)

    report.findings.sort()
    return report


def lint_source(source: str, relpath: str, path: Optional[Path] = None) -> LintReport:
    """Lint one file's source text; the unit underneath :func:`lint_file`."""
    return lint_units([parse_unit(source, relpath, path=path)], paths=[relpath])


def lint_sources(sources: Mapping[str, str]) -> LintReport:
    """Lint an in-memory project: ``{relpath: source}``.

    All files form one project graph, so whole-program rules see the full
    picture — the hook the architecture-conformance tests use to lint
    hypothetical trees (e.g. "what if storage imported the service tier?")
    without touching disk.
    """
    units = [parse_unit(text, relpath) for relpath, text in sources.items()]
    return lint_units(units, paths=sorted(sources))


def lint_file(path: PathLike, root: Optional[Path] = None) -> LintReport:
    """Lint a single ``.py`` file from disk."""
    path = Path(path)
    relpath = _relpath(path, root)
    return lint_source(path.read_text(encoding="utf-8"), relpath, path=path)


def _relpath(path: Path, root: Optional[Path]) -> str:
    base = root if root is not None else Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def iter_python_files(paths: Iterable[PathLike]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    seen: dict[Path, None] = {}
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for found in sorted(entry.rglob("*.py")):
                if "__pycache__" not in found.parts:
                    seen.setdefault(found.resolve(), None)
        elif entry.is_file() and entry.suffix == ".py":
            seen.setdefault(entry.resolve(), None)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {entry}")
    return sorted(seen)


def lint_paths(
    paths: Sequence[PathLike],
    root: Optional[Path] = None,
    only: Optional[Iterable[PathLike]] = None,
) -> LintReport:
    """Lint files and directory trees; the engine behind ``repro lint``.

    ``only`` narrows *reporting* to the given files (``--changed`` mode):
    everything under ``paths`` is still parsed into the project graph, but
    findings and suppression audits run only for the named files.
    """
    units = []
    for path in iter_python_files(paths):
        units.append(
            parse_unit(
                path.read_text(encoding="utf-8"), _relpath(path, root), path=path
            )
        )
    report_relpaths = None
    if only is not None:
        wanted = {Path(p).resolve() for p in only}
        report_relpaths = {
            unit.relpath
            for unit in units
            if unit.path is not None and unit.path.resolve() in wanted
        }
    return lint_units(units, paths=[str(p) for p in paths], report_relpaths=report_relpaths)
