"""Runtime determinism sanitizer — the dynamic half of :mod:`repro.lint`.

While a :class:`DeterminismSanitizer` is active, the process-global
``random`` module functions and the wall-clock readers ``time.time`` /
``time.monotonic`` (and their ``_ns`` variants) are patched to raise
:class:`DeterminismViolation` **naming the offending call site** whenever
repo or test code calls them.  Standard-library and third-party internals
(``threading`` timeouts, ``logging`` timestamps, pytest's own timing) pass
through to the real functions, so the sanitizer can stay armed across an
entire simulation run — including multi-process trace generation — without
breaking the interpreter's plumbing.

``time.perf_counter`` is deliberately left alone: it is the sanctioned
wall-runtime reporter for the timing-only sites the static ``wall-clock``
rule allowlists.

The patches are observational only — a clean run executes the exact same
simulation code path and produces byte-identical output with the sanitizer
on or off (test-enforced).
"""

from __future__ import annotations

import os

# repro: allow[unseeded-random] imported only to patch the global RNG so misuse raises
import random
import sys
import time
from typing import Optional

__all__ = [
    "DeterminismSanitizer",
    "DeterminismViolation",
    "is_active",
    "verify_hashseed_pinned",
]


class DeterminismViolation(RuntimeError):
    """Simulation code read the wall clock or the process-global RNG."""


#: ``random``-module functions that consume or mutate the global RNG state.
PATCHED_RANDOM_FUNCTIONS = (
    "random",
    "uniform",
    "triangular",
    "randint",
    "randrange",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "vonmisesvariate",
    "gammavariate",
    "gauss",
    "betavariate",
    "paretovariate",
    "weibullvariate",
    "getrandbits",
    "randbytes",
    "seed",
)

#: Wall-clock readers forbidden inside sanitized runs.
PATCHED_TIME_FUNCTIONS = ("time", "time_ns", "monotonic", "monotonic_ns")

#: Caller filename prefixes exempt from the guard: the stdlib tree (which
#: contains site-packages on most layouts) plus any explicit site/dist
#: packages directory, and synthetic filenames like ``<frozen importlib>``.
_EXEMPT_PREFIXES = (os.path.dirname(os.__file__),)
_EXEMPT_MARKERS = ("site-packages", "dist-packages")

_active_depth = 0


def is_active() -> bool:
    """True while at least one :class:`DeterminismSanitizer` is entered."""
    return _active_depth > 0


def _caller_is_exempt(filename: str) -> bool:
    if filename.startswith("<"):
        return True
    if any(marker in filename for marker in _EXEMPT_MARKERS):
        return True
    return any(filename.startswith(prefix) for prefix in _EXEMPT_PREFIXES)


def _make_guard(qualname: str, original):
    def guard(*args, **kwargs):
        frame = sys._getframe(1)
        filename = frame.f_code.co_filename
        if _caller_is_exempt(filename):
            return original(*args, **kwargs)
        raise DeterminismViolation(
            f"{qualname}() called from {filename}:{frame.f_lineno} during a "
            "sanitized run; simulation code must use the simulator clock and "
            "RandomStreams named substreams"
        )

    guard.__name__ = original.__name__
    guard.__qualname__ = qualname
    guard.__sanitizer_guard__ = True
    return guard


def verify_hashseed_pinned(workers: int = 2) -> None:
    """Require a pinned ``PYTHONHASHSEED`` before a multi-process run.

    Single-process runs never leak hash order into output (the repo's rules
    and tests see to that), but across worker processes an unpinned hash
    seed gives every worker a different str-hash order — any latent
    set/dict-order dependence then breaks byte-identity silently.  Raises
    :class:`DeterminismViolation` when ``workers > 1`` and the environment
    does not pin the seed to a concrete integer.
    """
    if workers <= 1:
        return
    value = os.environ.get("PYTHONHASHSEED", "")
    if not value.isdigit():
        raise DeterminismViolation(
            f"PYTHONHASHSEED is {value!r} but a sanitized run requested "
            f"{workers} worker processes; export PYTHONHASHSEED=<int> so every "
            "worker hashes identically"
        )


class DeterminismSanitizer:
    """Context manager that arms the runtime determinism guards.

    >>> with DeterminismSanitizer():
    ...     pass  # any random.random()/time.time() from repo code raises

    Re-entrant: nested activations share one set of patches, restored when
    the outermost context exits.  ``workers`` (optional) also runs the
    :func:`verify_hashseed_pinned` check on entry.
    """

    def __init__(self, workers: int = 1) -> None:
        self.workers = workers
        self._patched: list[tuple[object, str, object]] = []

    def __enter__(self) -> "DeterminismSanitizer":
        global _active_depth
        verify_hashseed_pinned(self.workers)
        if _active_depth == 0:
            self._apply_patches()
        _active_depth += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _active_depth
        _active_depth -= 1
        if _active_depth == 0:
            self._remove_patches()

    def _apply_patches(self) -> None:
        for name in PATCHED_RANDOM_FUNCTIONS:
            self._patch(random, f"random.{name}", name)
        for name in PATCHED_TIME_FUNCTIONS:
            self._patch(time, f"time.{name}", name)

    def _patch(self, module, qualname: str, name: str) -> None:
        original = getattr(module, name, None)
        if original is None or getattr(original, "__sanitizer_guard__", False):
            return
        self._patched.append((module, name, original))
        setattr(module, name, _make_guard(qualname, original))

    def _remove_patches(self) -> None:
        while self._patched:
            module, name, original = self._patched.pop()
            setattr(module, name, original)


def sanitized(workers: int = 1) -> DeterminismSanitizer:
    """Convenience constructor: ``with sanitized(): ...``."""
    return DeterminismSanitizer(workers=workers)


def active_sanitizer_note() -> Optional[str]:
    """A one-line status string for CLI output, or ``None`` when inactive."""
    if not is_active():
        return None
    return "determinism sanitizer: armed (wall-clock + global RNG guarded)"
