"""The declared layering contract, and the rules that enforce it.

The repo's subsystems form a tier stack; a module may import **module
scope** only from its own tier or below.  Pointing *up* the stack is legal
only through a deferred (function-scope) import — the pattern the
platform↔service facade break uses — or a ``TYPE_CHECKING`` block.
Deferred and typing-only imports are therefore exempt from the layering
check; module-scope cycles are forbidden outright.

The tiers (bottom to top)::

    7  entrypoints     repro, repro.cli, repro.validation, repro.__main__
    6  experiments     experiments          (+ repro.obs.scenario)
    5  orchestration   faults, parallel, service
    4  measurement     analysis, core, crawler, overlay, security, workload
    3  platform        platform
    2  delivery        cdn, client
    1  kernel          simulation           (+ service.errors, faults.resilience)
    0  foundation      geo, lint, obs, protocols, social

Three modules carry per-module overrides because they are deliberate
leaves of otherwise-high packages: :mod:`repro.service.errors` and
:mod:`repro.faults.resilience` hold pure data/policy types consumed far
below their packages' tiers, and :mod:`repro.obs.scenario` is an
experiment driver that happens to live in the observability package.

**The pinned facade break.**  ``repro.platform`` (tier 3) and
``repro.service`` (tier 5) genuinely depend on each other at runtime: the
service tier operates on platform record types, while the
:class:`~repro.platform.service.LivestreamService` facade instantiates the
service tiers.  The contract requires the facade's half of that bargain to
stay *deferred*: ``repro.platform.service`` must import
``repro.service.services`` and ``repro.service.store`` inside
``__post_init__`` (never at module scope), which is what lets the two
packages initialize in either order.  ``REQUIRED_DEFERRED`` pins both
edges — deleting one, or lifting it to module scope, is a
``deferred-import-required`` finding.

Rules enforced here: ``import-cycle``, ``layering-violation``,
``deferred-import-required``.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.graph import ProjectGraph, module_name_for
from repro.lint.rules import ProjectRule, register_project

ROOT_PACKAGE = "repro"

#: Layer names by tier level, for findings and the DOT export.
TIER_NAMES = {
    0: "foundation",
    1: "kernel",
    2: "delivery",
    3: "platform",
    4: "measurement",
    5: "orchestration",
    6: "experiments",
    7: "entrypoints",
}

#: ``repro`` subpackage -> tier level.
PACKAGE_TIERS = {
    "geo": 0,
    "lint": 0,
    "obs": 0,
    "protocols": 0,
    "social": 0,
    "simulation": 1,
    "cdn": 2,
    "client": 2,
    "platform": 3,
    "analysis": 4,
    "core": 4,
    "crawler": 4,
    "overlay": 4,
    "security": 4,
    "workload": 4,
    "faults": 5,
    "parallel": 5,
    "service": 5,
    "experiments": 6,
}

#: Top-level ``repro`` modules (and the root package itself) sit above
#: everything: they may import any tier at module scope.
ENTRYPOINT_TIER = 7

#: Modules whose tier differs from their package's (deliberate leaves).
MODULE_TIER_OVERRIDES = {
    "repro.service.errors": 1,
    "repro.faults.resilience": 1,
    "repro.obs.scenario": 6,
}

#: (importing module, imported module) edges that must exist as *deferred*
#: imports — the facade break.  Each is checked whenever the importing
#: module is in the analyzed set: a module-scope import of the target (or
#: a submodule of it) and a missing deferred import are both findings.
REQUIRED_DEFERRED = (
    ("repro.platform.service", "repro.service.services"),
    ("repro.platform.service", "repro.service.store"),
)


def tier_of(module: str) -> Optional[int]:
    """The tier level of a dotted module name; ``None`` outside the contract."""
    if module in MODULE_TIER_OVERRIDES:
        return MODULE_TIER_OVERRIDES[module]
    parts = module.split(".")
    if parts[0] != ROOT_PACKAGE:
        return None
    if len(parts) == 1:
        return ENTRYPOINT_TIER
    return PACKAGE_TIERS.get(parts[1], ENTRYPOINT_TIER)


def tier_label(module: str) -> str:
    tier = tier_of(module)
    if tier is None:
        return "unranked"
    return f"tier {tier} '{TIER_NAMES[tier]}'"


def _required_deferred_pairs() -> frozenset[tuple[str, str]]:
    return frozenset(REQUIRED_DEFERRED)


@register_project
class ImportCycleRule(ProjectRule):
    """Module-scope import cycles deadlock initialization and make import
    order observable — the exact hazard the facade break removes.  Every
    member of a cycle is flagged, at its first import of another member."""

    rule_id = "import-cycle"
    description = "module-scope import cycle between analyzed modules"

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        for component in graph.cycles():
            members = set(component)
            path = " -> ".join(component + (component[0],))
            for name in component:
                info = graph.modules[name]
                anchor_line, anchor_col = 1, 1
                for record in info.imports:
                    if not record.module_scope:
                        continue
                    resolved = graph.resolve_target(record)
                    if resolved is not None and resolved.name in members:
                        anchor_line, anchor_col = record.line, record.col
                        break
                yield Finding(
                    path=info.relpath,
                    line=anchor_line,
                    col=anchor_col,
                    rule_id=self.rule_id,
                    message=f"module-scope import cycle: {path}",
                )


@register_project
class LayeringViolationRule(ProjectRule):
    """A module may import at module scope only from its own tier or
    below.  Upward dependencies must be deferred into the function that
    needs them (or moved down the stack).  The target's tier comes from
    its dotted name, so the rule bites even when the target file is
    outside the linted path set."""

    rule_id = "layering-violation"
    description = (
        "module-scope import points up the layering contract "
        "(see repro.lint.architecture)"
    )

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        pinned = _required_deferred_pairs()
        for name, info in sorted(graph.modules.items()):
            source_tier = tier_of(name)
            if source_tier is None:
                continue
            for record in info.imports:
                if not record.module_scope or not record.target:
                    continue
                target_tier = tier_of(record.target)
                if target_tier is None or target_tier <= source_tier:
                    continue
                if (name, record.target) in pinned:
                    continue  # deferred-import-required owns the pinned edges
                yield Finding(
                    path=info.relpath,
                    line=record.line,
                    col=record.col,
                    rule_id=self.rule_id,
                    message=(
                        f"{name} ({tier_label(name)}) imports {record.target} "
                        f"({tier_label(record.target)}) at module scope; "
                        "defer the import or move the dependency down"
                    ),
                )


@register_project
class DeferredImportRequiredRule(ProjectRule):
    """The pinned facade edges (``REQUIRED_DEFERRED``) must exist as
    deferred imports and must never appear at module scope — that is the
    entire platform↔service initialization-order contract."""

    rule_id = "deferred-import-required"
    description = (
        "pinned facade edge must be a deferred import "
        "(missing, or found at module scope)"
    )

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        for source, target in REQUIRED_DEFERRED:
            info = graph.modules.get(source)
            if info is None:
                continue
            matching = [
                record
                for record in info.imports
                if record.target == target
                or (record.target or "").startswith(target + ".")
            ]
            for record in matching:
                if record.module_scope:
                    yield Finding(
                        path=info.relpath,
                        line=record.line,
                        col=record.col,
                        rule_id=self.rule_id,
                        message=(
                            f"{source} imports {target} at module scope; this "
                            "edge is pinned deferred (the facade break) — move "
                            "it back inside the function that needs it"
                        ),
                    )
            if not any(record.deferred for record in matching):
                yield Finding(
                    path=info.relpath,
                    line=1,
                    col=1,
                    rule_id=self.rule_id,
                    message=(
                        f"{source} no longer defer-imports {target}; the facade "
                        "contract requires this deferred import (see "
                        "repro.lint.architecture.REQUIRED_DEFERRED)"
                    ),
                )


def tier_for_path(relpath: str) -> Optional[int]:
    """Tier of the module a file path maps to (DOT export helper)."""
    name, _ = module_name_for(relpath)
    return tier_of(name)
