"""Whole-program import graph and symbol table for :mod:`repro.lint`.

The per-file rules in :mod:`repro.lint.checks` see one AST at a time; the
architecture and dataflow passes need the *project*: which module imports
which, at module scope or deferred, and what names each module binds at its
top level.  This module builds that picture from the very ASTs the runner
already parsed — no imports are executed, no files re-read.

Vocabulary (used by every project rule):

* **module name** — the dotted runtime name, derived from the file path
  anchored at the last path component named ``repro`` (so both
  ``src/repro/cdn/fastly.py`` and a fixture's ``repro/cdn/fastly.py`` map
  to ``repro.cdn.fastly``); files outside any ``repro`` tree keep their
  dotted path.  A package's ``__init__.py`` *is* the package module.
* **module-scope import** — executed when the module is imported; these
  are the edges that can deadlock initialization and the only ones the
  cycle/layering rules count.
* **deferred import** — inside a function body: executed at call time,
  the sanctioned way to point *up* the layer stack (see
  :mod:`repro.lint.architecture`).
* **typing-only import** — under ``if TYPE_CHECKING:``: never executed,
  exempt from cycle and layering checks but still resolution-checked.

Cycle detection is Tarjan's strongly-connected-components pass over the
module-scope edges.  Implicit parent-package edges (importing ``a.b.c``
executes ``a/__init__.py`` first) are deliberately *not* modeled: every
re-exporting package would form a Python-legal two-cycle with each of its
submodules.  The one hazard that semantics creates here — the
platform↔service initialization order — is pinned explicitly by
``REQUIRED_DEFERRED`` in :mod:`repro.lint.architecture` instead.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

#: Path component that anchors dotted module names (see module docstring).
ROOT_COMPONENT = "repro"


@dataclass(frozen=True)
class ImportRecord:
    """One ``import``/``from ... import`` statement, resolved and classified."""

    target: str  # absolute dotted module the statement names ("" if unresolvable)
    names: tuple[tuple[str, str], ...]  # (original, local) pairs; () for plain import
    line: int
    col: int
    deferred: bool  # inside a function body: runs at call time
    type_checking: bool  # under `if TYPE_CHECKING:`: never runs
    is_from: bool
    star: bool = False

    @property
    def module_scope(self) -> bool:
        """True for imports executed when the module itself is imported."""
        return not self.deferred and not self.type_checking


@dataclass
class ModuleInfo:
    """One analyzed module: its identity, imports, and top-level symbols."""

    name: str
    relpath: str
    is_package: bool
    tree: ast.Module
    imports: tuple[ImportRecord, ...] = ()
    bindings: frozenset[str] = frozenset()  # runtime top-level names
    has_star_import: bool = False
    #: ``__all__`` literal entries as (name, line, col); () when absent.
    all_names: tuple[tuple[str, int, int], ...] = ()

    @property
    def package(self) -> str:
        """The module's top-level package ("repro.cdn" for "repro.cdn.fastly")."""
        parts = self.name.split(".")
        if parts[0] == ROOT_COMPONENT and len(parts) > 1:
            return ".".join(parts[:2])
        return parts[0]


def module_name_for(relpath: str) -> tuple[str, bool]:
    """``(dotted module name, is_package)`` for a posix relpath.

    Anchored at the *last* ``repro`` path component so fixture trees that
    embed a ``repro/`` prefix get real module identities; a leading
    ``src/`` is stripped for non-``repro`` layouts; anything else keeps
    its full dotted path (self-consistent within one lint run).
    """
    parts = [part for part in relpath.split("/") if part]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    is_package = bool(parts) and parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    if ROOT_COMPONENT in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index(ROOT_COMPONENT) :]
    elif parts and parts[0] == "src":
        parts = parts[1:]
    return ".".join(parts) or relpath, is_package


def _resolve_relative(name: str, is_package: bool, node: ast.ImportFrom) -> str:
    """Absolute dotted target of a relative ``from``-import, "" if it
    escapes the analyzed tree's root."""
    package = name.split(".") if is_package else name.split(".")[:-1]
    ascend = node.level - 1
    if ascend > len(package):
        return ""
    base = package[: len(package) - ascend] if ascend else package
    if node.module:
        return ".".join(base + node.module.split("."))
    return ".".join(base)


def _collect_imports(
    tree: ast.Module, name: str, is_package: bool
) -> tuple[ImportRecord, ...]:
    records: list[ImportRecord] = []

    def is_type_checking_test(test: ast.expr) -> bool:
        return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
            isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
        )

    def visit(node: ast.AST, deferred: bool, type_checking: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Import):
                for alias in child.names:
                    records.append(
                        ImportRecord(
                            target=alias.name,
                            names=(),
                            line=child.lineno,
                            col=child.col_offset + 1,
                            deferred=deferred,
                            type_checking=type_checking,
                            is_from=False,
                        )
                    )
            elif isinstance(child, ast.ImportFrom):
                if child.level:
                    target = _resolve_relative(name, is_package, child)
                else:
                    target = child.module or ""
                star = any(alias.name == "*" for alias in child.names)
                records.append(
                    ImportRecord(
                        target=target,
                        names=tuple(
                            (alias.name, alias.asname or alias.name)
                            for alias in child.names
                            if alias.name != "*"
                        ),
                        line=child.lineno,
                        col=child.col_offset + 1,
                        deferred=deferred,
                        type_checking=type_checking,
                        is_from=True,
                        star=star,
                    )
                )
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                visit(child, True, type_checking)
            elif isinstance(child, ast.If) and is_type_checking_test(child.test):
                for stmt in child.body:
                    visit_wrapper(stmt, deferred, True)
                for stmt in child.orelse:
                    visit_wrapper(stmt, deferred, type_checking)
            else:
                visit(child, deferred, type_checking)

    def visit_wrapper(stmt: ast.stmt, deferred: bool, type_checking: bool) -> None:
        # Re-dispatch a single statement through the same classification.
        holder = ast.Module(body=[stmt], type_ignores=[])
        visit(holder, deferred, type_checking)

    visit(tree, False, False)
    return tuple(records)


def _runtime_bindings(tree: ast.Module) -> tuple[frozenset[str], bool]:
    """Names bound at module scope when the module executes.

    Walks into top-level ``if``/``try``/``with``/loop bodies (conditional
    bindings count) but not into functions, classes, or ``TYPE_CHECKING``
    blocks (those never bind at runtime).  Annotation-only statements
    (``x: int`` with no value) do not bind either.
    """
    bound: set[str] = set()
    has_star = False

    def visit(stmts: Iterable[ast.stmt]) -> None:
        nonlocal has_star
        for node in stmts:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        has_star = True
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            bound.add(leaf.id)
            elif isinstance(node, ast.AnnAssign):
                if node.value is not None and isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
            elif isinstance(node, ast.If):
                if not (
                    (isinstance(node.test, ast.Name) and node.test.id == "TYPE_CHECKING")
                    or (
                        isinstance(node.test, ast.Attribute)
                        and node.test.attr == "TYPE_CHECKING"
                    )
                ):
                    visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                for handler in node.handlers:
                    if handler.name:
                        bound.add(handler.name)
                    visit(handler.body)
                visit(node.orelse)
                visit(node.finalbody)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for leaf in ast.walk(node.target):
                    if isinstance(leaf, ast.Name):
                        bound.add(leaf.id)
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.While):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        for leaf in ast.walk(item.optional_vars):
                            if isinstance(leaf, ast.Name):
                                bound.add(leaf.id)
                visit(node.body)

    visit(tree.body)
    return frozenset(bound), has_star


def _all_literal(tree: ast.Module) -> tuple[tuple[str, int, int], ...]:
    """``__all__`` entries with their own source locations, () if absent
    or not a plain list/tuple of string literals."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in targets
        ):
            continue
        value = node.value
        if isinstance(value, (ast.List, ast.Tuple)) and all(
            isinstance(element, ast.Constant) and isinstance(element.value, str)
            for element in value.elts
        ):
            return tuple(
                (element.value, element.lineno, element.col_offset + 1)
                for element in value.elts
            )
    return ()


@dataclass
class ProjectGraph:
    """Every analyzed module, keyed by dotted name, plus derived views."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)

    def module_for_path(self, relpath: str) -> Optional[ModuleInfo]:
        name, _ = module_name_for(relpath)
        return self.modules.get(name)

    def resolve_target(self, record: ImportRecord) -> Optional[ModuleInfo]:
        """The analyzed module an import record names, if any."""
        return self.modules.get(record.target) if record.target else None

    def module_scope_edges(self) -> dict[str, set[str]]:
        """``{module: imported modules}`` over module-scope imports only,
        restricted to analyzed modules (submodule from-imports included)."""
        edges: dict[str, set[str]] = {name: set() for name in self.modules}
        for name, info in self.modules.items():
            for record in info.imports:
                if not record.module_scope or not record.target:
                    continue
                if record.target in self.modules and record.target != name:
                    edges[name].add(record.target)
                if record.is_from:
                    for original, _local in record.names:
                        candidate = f"{record.target}.{original}"
                        if candidate in self.modules and candidate != name:
                            edges[name].add(candidate)
        return edges

    def edge_count(self) -> int:
        return sum(len(targets) for targets in self.module_scope_edges().values())

    def cycles(self) -> list[tuple[str, ...]]:
        """Module-scope import cycles as sorted SCC member tuples."""
        edges = self.module_scope_edges()
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        sccs: list[tuple[str, ...]] = []

        def strongconnect(node: str) -> None:
            # Iterative Tarjan: recursion would overflow on deep chains.
            work = [(node, iter(sorted(edges[node])))]
            index[node] = lowlink[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in index:
                        index[successor] = lowlink[successor] = counter[0]
                        counter[0] += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append((successor, iter(sorted(edges[successor]))))
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[current] = min(lowlink[current], index[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == index[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    if len(component) > 1:
                        sccs.append(tuple(sorted(component)))

        for name in sorted(self.modules):
            if name not in index:
                strongconnect(name)
        return sorted(sccs)

    def summary(self) -> dict:
        """The JSON report's ``project`` section."""
        return {
            "modules": len(self.modules),
            "import_edges": self.edge_count(),
            "cycles": len(self.cycles()),
        }


def build_project_graph(contexts: Iterable) -> ProjectGraph:
    """Build the graph from parsed file contexts (anything with
    ``relpath`` and ``tree`` attributes)."""
    graph = ProjectGraph()
    for ctx in contexts:
        name, is_package = module_name_for(ctx.relpath)
        bindings, has_star = _runtime_bindings(ctx.tree)
        graph.modules[name] = ModuleInfo(
            name=name,
            relpath=ctx.relpath,
            is_package=is_package,
            tree=ctx.tree,
            imports=_collect_imports(ctx.tree, name, is_package),
            bindings=bindings,
            has_star_import=has_star,
            all_names=_all_literal(ctx.tree),
        )
    return graph


def render_dot(
    graph: ProjectGraph, tier_of: Optional[Callable[[str], Optional[int]]] = None
) -> str:
    """Package-level condensation of the import graph in DOT format.

    Modules collapse into their top-level package; module-scope edges are
    solid (labelled with their count), edges that exist *only* deferred
    are dashed.  With ``tier_of`` (see :mod:`repro.lint.architecture`),
    packages cluster by layer so the rendered diagram reads bottom-up.
    """
    packages: dict[str, set[str]] = {}
    for info in graph.modules.values():
        packages.setdefault(info.package, set()).add(info.name)

    scope_edges: dict[tuple[str, str], int] = {}
    deferred_edges: dict[tuple[str, str], int] = {}
    for info in graph.modules.values():
        for record in info.imports:
            resolved = graph.resolve_target(record)
            if resolved is None or resolved.package == info.package:
                continue
            if record.type_checking:
                continue
            key = (info.package, resolved.package)
            bucket = deferred_edges if record.deferred else scope_edges
            bucket[key] = bucket.get(key, 0) + 1

    lines = [
        "digraph repro_imports {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    if tier_of is not None:
        by_tier: dict[int, list[str]] = {}
        for package in sorted(packages):
            sample = sorted(packages[package])[0]
            tier = tier_of(sample)
            if tier is not None:
                by_tier.setdefault(tier, []).append(package)
        for tier in sorted(by_tier):
            lines.append(f"  subgraph cluster_tier_{tier} {{")
            lines.append(f'    label="tier {tier}";')
            for package in by_tier[tier]:
                lines.append(f'    "{package}";')
            lines.append("  }")
    for (source, target), count in sorted(scope_edges.items()):
        label = f' [label="{count}"]' if count > 1 else ""
        lines.append(f'  "{source}" -> "{target}"{label};')
    for (source, target), _count in sorted(deferred_edges.items()):
        if (source, target) in scope_edges:
            continue
        lines.append(f'  "{source}" -> "{target}" [style=dashed];')
    lines.append("}")
    return "\n".join(lines) + "\n"
