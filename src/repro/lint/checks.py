"""The determinism rules — one class per hazard the repo has been bitten by.

Every rule is a pure AST pass (stdlib-only, no type inference), tuned to
this codebase's conventions: named substreams from
:class:`repro.simulation.randomness.RandomStreams` are the only sanctioned
randomness, the :class:`~repro.simulation.engine.Simulator` clock is the
only clock, and anything order-dependent must spell its ordering out.
False positives are expected to be rare and are handled with
``# repro: allow[rule-id] reason`` suppressions, which the runner audits.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.rules import FileContext, Rule, register

#: numpy.random attributes that are *not* the legacy process-global RNG.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

_WALL_CLOCK_TIME = frozenset({"time", "time_ns", "monotonic", "monotonic_ns"})
_PERF_COUNTER = frozenset({"perf_counter", "perf_counter_ns"})
_DATETIME_CLASSES = frozenset({"datetime", "date"})
_DATETIME_METHODS = frozenset({"now", "utcnow", "today"})
#: Host resource-state reads, gated like perf_counter: fine in the
#: observability allowlist, a determinism hazard anywhere else.
_RUSAGE = frozenset({"getrusage"})


def _module_aliases(tree: ast.AST, module: str) -> set[str]:
    """Local names bound to ``module`` by ``import module [as alias]``."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.name == module:
                    aliases.add(name.asname or module)
    return aliases


def _imported_from(tree: ast.AST, module: str) -> dict[str, str]:
    """``{local_name: original_name}`` for ``from module import a [as b]``."""
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for name in node.names:
                names[name.asname or name.name] = name.name
    return names


@register
class UnseededRandomRule(Rule):
    """Stdlib ``random`` and numpy's legacy global RNG are process-global
    mutable state: any import reorder or extra draw silently perturbs every
    downstream sequence.  All randomness must come from named substreams
    (:class:`repro.simulation.randomness.RandomStreams`) or an explicitly
    seeded ``numpy.random.default_rng``."""

    rule_id = "unseeded-random"
    description = (
        "stdlib random / numpy legacy global RNG forbidden; "
        "use RandomStreams named substreams"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        np_aliases = _module_aliases(ctx.tree, "numpy")
        np_random_names = {
            local
            for local, original in _imported_from(ctx.tree, "numpy").items()
            if original == "random"
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name == "random" or name.name.startswith("random."):
                        yield ctx.finding(
                            node,
                            self.rule_id,
                            "import of the process-global stdlib 'random' module; "
                            "draw from a RandomStreams named substream instead",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                yield ctx.finding(
                    node,
                    self.rule_id,
                    "import from the process-global stdlib 'random' module; "
                    "draw from a RandomStreams named substream instead",
                )
            elif isinstance(node, ast.Attribute):
                # numpy.random.<legacy fn>: np.random.X or npr.X
                value = node.value
                is_np_random = (
                    isinstance(value, ast.Attribute)
                    and value.attr == "random"
                    and isinstance(value.value, ast.Name)
                    and value.value.id in np_aliases
                ) or (isinstance(value, ast.Name) and value.id in np_random_names)
                if is_np_random and node.attr not in _NP_RANDOM_ALLOWED:
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"numpy.random.{node.attr} uses the legacy process-global "
                        "RNG; use numpy.random.default_rng via RandomStreams",
                    )


@register
class WallClockRule(Rule):
    """Simulation and analysis code must read time only from the simulator
    clock — wall-clock reads make runs depend on the host instead of on
    (config, seed).  ``time.perf_counter`` and ``resource.getrusage`` (host
    memory state, same hazard) are tolerated in the timing-only sites
    (``cli.py``, ``parallel/generate.py``, ``obs/process.py``,
    ``benchmarks/``) that report wall runtime and peak RSS to humans and
    never feed either back into the simulation."""

    rule_id = "wall-clock"
    description = (
        "wall-clock reads (time.time/monotonic, datetime.now/utcnow) forbidden; "
        "perf_counter/getrusage only in timing-only allowlisted files"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        time_aliases = _module_aliases(ctx.tree, "time")
        resource_aliases = _module_aliases(ctx.tree, "resource")
        datetime_aliases = _module_aliases(ctx.tree, "datetime")
        datetime_classes = {
            local
            for local, original in _imported_from(ctx.tree, "datetime").items()
            if original in _DATETIME_CLASSES
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for name in node.names:
                    if name.name in _WALL_CLOCK_TIME:
                        yield ctx.finding(
                            node,
                            self.rule_id,
                            f"wall-clock import 'from time import {name.name}'; "
                            "use the simulator clock",
                        )
                    elif name.name in _PERF_COUNTER and not ctx.timing_allowed:
                        yield ctx.finding(
                            node,
                            self.rule_id,
                            f"time.{name.name} outside the timing-only allowlist; "
                            "keep host timing out of simulation/analysis code",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "resource":
                for name in node.names:
                    if name.name in _RUSAGE and not ctx.timing_allowed:
                        yield ctx.finding(
                            node,
                            self.rule_id,
                            f"resource.{name.name} outside the timing-only allowlist; "
                            "host resource state belongs in repro.obs.process",
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                func = node.func
                value = func.value
                if isinstance(value, ast.Name) and value.id in time_aliases:
                    if func.attr in _WALL_CLOCK_TIME:
                        yield ctx.finding(
                            node,
                            self.rule_id,
                            f"wall-clock read time.{func.attr}(); "
                            "use the simulator clock (Simulator.now)",
                        )
                    elif func.attr in _PERF_COUNTER and not ctx.timing_allowed:
                        yield ctx.finding(
                            node,
                            self.rule_id,
                            f"time.{func.attr}() outside the timing-only allowlist; "
                            "keep host timing out of simulation/analysis code",
                        )
                elif (
                    isinstance(value, ast.Name)
                    and value.id in resource_aliases
                    and func.attr in _RUSAGE
                    and not ctx.timing_allowed
                ):
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"resource.{func.attr}() outside the timing-only allowlist; "
                        "host resource state belongs in repro.obs.process",
                    )
                elif func.attr in _DATETIME_METHODS:
                    # datetime.datetime.now() / dt.date.today() / datetime.now()
                    if (
                        isinstance(value, ast.Attribute)
                        and value.attr in _DATETIME_CLASSES
                        and isinstance(value.value, ast.Name)
                        and value.value.id in datetime_aliases
                    ) or (isinstance(value, ast.Name) and value.id in datetime_classes):
                        yield ctx.finding(
                            node,
                            self.rule_id,
                            f"wall-clock read {ast.unparse(func)}(); "
                            "use the simulator clock",
                        )


def _is_set_expr(node: ast.AST) -> bool:
    """True for expressions whose value is an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "intersection",
            "union",
            "difference",
            "symmetric_difference",
        ):
            return _is_set_expr(node.func.value)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


#: Builtins whose output order mirrors iteration order of their argument.
_ORDER_SENSITIVE_BUILTINS = frozenset({"list", "tuple", "enumerate", "sum", "iter"})
#: Method names that materialize their argument in iteration order.
_ORDER_SENSITIVE_METHODS = frozenset({"array", "join", "extend", "fromiter"})


@register
class UnorderedSetIterationRule(Rule):
    """Set iteration order depends on hash seeding and insertion history;
    feeding it into loops, sorts-by-position, arrays or string output makes
    run output depend on ``PYTHONHASHSEED`` instead of (config, seed).
    Wrapping the set in ``sorted(...)`` is the sanctioned fix (dict views
    are exempt: dicts iterate in insertion order, which is deterministic)."""

    rule_id = "unordered-set-iteration"
    description = (
        "iterating/materializing a bare set without sorted() makes "
        "output depend on hash order"
    )

    def _flag(self, ctx: FileContext, node: ast.AST, context: str) -> Finding:
        return ctx.finding(
            node,
            self.rule_id,
            f"unordered set iterated by {context}; wrap the set in sorted(...) "
            "to pin the order",
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield self._flag(ctx, node.iter, "a for loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    if _is_set_expr(generator.iter):
                        yield self._flag(ctx, generator.iter, "a comprehension")
            elif isinstance(node, ast.Starred) and _is_set_expr(node.value):
                yield self._flag(ctx, node.value, "star-unpacking")
            elif isinstance(node, ast.Call) and node.args and _is_set_expr(node.args[0]):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE_BUILTINS
                ):
                    yield self._flag(ctx, node.args[0], f"{node.func.id}()")
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ORDER_SENSITIVE_METHODS
                ):
                    yield self._flag(ctx, node.args[0], f".{node.func.attr}()")


@register
class SwallowedExceptionRule(Rule):
    """A bare ``except:`` or a non-re-raising ``except Exception`` swallows
    :class:`~repro.simulation.engine.SimulationError` — engine misuse then
    degrades into silently wrong results instead of a failed run.  Catch the
    specific exceptions a call site can actually produce, or re-raise."""

    rule_id = "swallowed-exception"
    description = (
        "bare except / except Exception without re-raise can swallow "
        "SimulationError"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    node,
                    self.rule_id,
                    "bare 'except:' swallows SimulationError (and KeyboardInterrupt); "
                    "catch the specific exceptions instead",
                )
                continue
            broad = [
                name
                for name in (
                    node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
                )
                if isinstance(name, ast.Name) and name.id in ("Exception", "BaseException")
            ]
            if broad and not any(isinstance(sub, ast.Raise) for sub in ast.walk(node)):
                yield ctx.finding(
                    node,
                    self.rule_id,
                    f"'except {broad[0].id}' without re-raise swallows "
                    "SimulationError; narrow the exception types or re-raise",
                )


def _top_level_bindings(tree: ast.Module) -> tuple[set[str], bool]:
    """Names bound at module top level, plus whether a star import occurs."""
    bound: set[str] = set()
    has_star = False
    for node in tree.body:
        if isinstance(node, ast.Import):
            for name in node.names:
                bound.add(name.asname or name.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for name in node.names:
                if name.name == "*":
                    has_star = True
                else:
                    bound.add(name.asname or name.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    bound.update(
                        element.id
                        for element in target.elts
                        if isinstance(element, ast.Name)
                    )
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
    return bound, has_star


@register
class MissingAllRule(Rule):
    """Every package ``__init__.py`` must pin its public surface with a
    literal ``__all__`` of unique strings that all resolve — the static half
    of ``tests/test_public_api.py``, enforced before the import even runs."""

    rule_id = "missing-all"
    description = (
        "package __init__.py must define a literal __all__ of unique, "
        "resolvable string names"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.is_package_init or not isinstance(ctx.tree, ast.Module):
            return
        assignment = None
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == "__all__"
                for target in node.targets
            ):
                assignment = node
        if assignment is None:
            yield Finding(
                path=ctx.relpath,
                line=1,
                col=1,
                rule_id=self.rule_id,
                message="package __init__.py defines no __all__; "
                "pin the public API surface",
            )
            return
        value = assignment.value
        if not isinstance(value, (ast.List, ast.Tuple)) or not all(
            isinstance(element, ast.Constant) and isinstance(element.value, str)
            for element in value.elts
        ):
            yield ctx.finding(
                assignment,
                self.rule_id,
                "__all__ must be a literal list/tuple of strings",
            )
            return
        names = [element.value for element in value.elts]
        if not names:
            yield ctx.finding(assignment, self.rule_id, "__all__ is empty")
            return
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            yield ctx.finding(
                assignment,
                self.rule_id,
                f"__all__ has duplicate entries: {', '.join(duplicates)}",
            )
        bound, has_star = _top_level_bindings(ctx.tree)
        if not has_star:
            unresolved = sorted(set(names) - bound - {"__version__", "__doc__"})
            if unresolved:
                yield ctx.finding(
                    assignment,
                    self.rule_id,
                    f"__all__ names not bound in the module: {', '.join(unresolved)}",
                )


@register
class FsumRequiredRule(Rule):
    """``sum()`` over mapping values accumulates float rounding error in
    whatever order the dict was built — histogram buckets and delay
    components must use ``math.fsum`` (exact) instead.  Integer-valued
    mappings may suppress with a reason stating the values are ints."""

    rule_id = "fsum-required"
    description = (
        "sum() over .values() accumulates float error; use math.fsum "
        "(suppress with a reason when values are integers)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
                and isinstance(node.args[0], ast.Call)
                and isinstance(node.args[0].func, ast.Attribute)
                and node.args[0].func.attr == "values"
                and not node.args[0].args
            ):
                yield ctx.finding(
                    node,
                    self.rule_id,
                    "sum() over mapping .values() is order-dependent for floats; "
                    "use math.fsum, or suppress with a reason if the values are "
                    "integers",
                )
