"""Whole-program API-drift pass (rule ``export-drift``).

The per-file ``missing-all`` rule checks that every ``__all__`` entry is
bound *in that file*; this pass extends the check across the project:

* every ``from <analyzed module> import name`` must name a symbol that
  module actually binds at runtime (or one of its submodules) — this is
  also what keeps each deferred CLI target in :mod:`repro.cli` pointing
  at a real callable;
* every package ``__all__`` entry resolves through re-export chains to a
  defining module, and no *origin* symbol is exported from two packages —
  the package containing the defining module is the canonical exporter,
  everyone else is drift.  The root ``repro`` package is exempt (it is
  the documented user-facing aggregate), and origins outside the
  analyzed set (numpy, stdlib) are skipped.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.graph import ModuleInfo, ProjectGraph
from repro.lint.rules import ProjectRule, register_project

ROOT_PACKAGE = "repro"


def _resolve_origin(
    graph: ProjectGraph, info: ModuleInfo, name: str, seen: set[tuple[str, str]]
) -> Optional[tuple[str, str]]:
    """``(defining module, original name)`` a binding resolves to, chasing
    re-export chains inside the analyzed set; ``None`` when the chain
    leaves it (external import, star import, unresolved)."""
    key = (info.name, name)
    if key in seen:
        return None
    seen.add(key)
    for record in info.imports:
        if not record.is_from:
            continue
        for original, local in record.names:
            if local != name:
                continue
            target = graph.modules.get(record.target)
            if target is None:
                submodule = graph.modules.get(f"{record.target}.{original}")
                if submodule is not None:
                    return (submodule.name, submodule.name)
                return None  # chain leaves the analyzed set
            as_submodule = graph.modules.get(f"{target.name}.{original}")
            if original in target.bindings:
                resolved = _resolve_origin(graph, target, original, seen)
                if resolved is not None:
                    return resolved
                if as_submodule is not None:
                    return (as_submodule.name, as_submodule.name)
                return None
            if as_submodule is not None:
                return (as_submodule.name, as_submodule.name)
            return None
    if name in info.bindings:
        return (info.name, name)
    return None


def _containing_package(graph: ProjectGraph, module: str) -> str:
    """The top-level package name that canonically exports ``module``'s
    symbols ("repro.service" for "repro.service.errors")."""
    parts = module.split(".")
    if parts[0] == ROOT_PACKAGE and len(parts) > 1:
        return ".".join(parts[:2])
    return parts[0]


@register_project
class ExportDriftRule(ProjectRule):
    """Exports and cross-module imports must keep resolving as the tree
    refactors underneath them."""

    rule_id = "export-drift"
    description = (
        "cross-module import/export no longer resolves, "
        "or one symbol is exported by two packages"
    )

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        yield from self._unresolved_imports(graph)
        yield from self._duplicate_exports(graph)

    def _unresolved_imports(self, graph: ProjectGraph) -> Iterator[Finding]:
        for name in sorted(graph.modules):
            info = graph.modules[name]
            for record in info.imports:
                if not record.is_from or record.star or not record.target:
                    continue
                target = graph.modules.get(record.target)
                if target is None or target.has_star_import:
                    continue
                for original, _local in record.names:
                    if original in target.bindings:
                        continue
                    if f"{target.name}.{original}" in graph.modules:
                        continue
                    yield Finding(
                        path=info.relpath,
                        line=record.line,
                        col=record.col,
                        rule_id=self.rule_id,
                        message=(
                            f"'{original}' is not defined in {target.name}; "
                            "the import target drifted"
                        ),
                    )

    def _duplicate_exports(self, graph: ProjectGraph) -> Iterator[Finding]:
        #: origin (module, symbol) -> [(exporting package ModuleInfo, line, col)]
        exporters: dict[tuple[str, str], list[tuple[ModuleInfo, int, int]]] = {}
        for name in sorted(graph.modules):
            info = graph.modules[name]
            if not info.is_package or info.name == ROOT_PACKAGE:
                continue
            for exported, line, col in info.all_names:
                origin = _resolve_origin(graph, info, exported, set())
                if origin is None:
                    continue
                exporters.setdefault(origin, []).append((info, line, col))

        for origin in sorted(exporters):
            holders = exporters[origin]
            if len({info.name for info, _line, _col in holders}) < 2:
                continue
            origin_module, origin_name = origin
            canonical = _containing_package(graph, origin_module)
            for info, line, col in holders:
                if info.name == canonical:
                    continue
                yield Finding(
                    path=info.relpath,
                    line=line,
                    col=col,
                    rule_id=self.rule_id,
                    message=(
                        f"'{origin_name}' (defined in {origin_module}) is also "
                        f"exported by {canonical}; one canonical exporting "
                        "package per symbol"
                    ),
                )
