"""Lint findings and suppressions — the currency of :mod:`repro.lint`.

A :class:`Finding` pins one rule violation to a file/line/column; a
:class:`Suppression` is a parsed ``# repro: allow[rule-id] reason``
comment.  Both are plain frozen dataclasses so reports sort, compare and
serialize deterministically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Suppression comment syntax: "repro: allow" + bracketed rule id + reason.
SUPPRESSION_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_-]+)\]\s*(.*?)\s*$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of the text report."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        """JSON-ready representation (stable key order)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Suppression:
    """A parsed ``# repro: allow[rule-id] reason`` comment.

    ``line`` is the physical line the comment sits on; a comment-only line
    also covers the first code line that follows it.  ``used`` flips when a
    finding is actually silenced — suppressions that silence nothing are
    themselves reported (rule ``unused-suppression``).
    """

    rule_id: str
    reason: str
    line: int
    standalone: bool  # comment-only line: applies to the next line too
    used: bool = False

    def to_dict(self) -> dict:
        """JSON-ready representation (stable key order)."""
        return {"rule": self.rule_id, "line": self.line, "reason": self.reason}


def parse_suppressions(source: str) -> list[Suppression]:
    """Extract every suppression comment from ``source``.

    Uses the :mod:`tokenize` stream rather than a per-line regex so string
    literals (and docstrings documenting the syntax) never register as
    suppressions.  Lines are 1-indexed, matching AST line numbers.
    """
    import io
    import tokenize

    suppressions: list[Suppression] = []
    lines = source.splitlines()
    for token in tokenize.generate_tokens(io.StringIO(source).readline):
        if token.type != tokenize.COMMENT:
            continue
        match = SUPPRESSION_RE.search(token.string)
        if not match:
            continue
        row, col = token.start
        suppressions.append(
            Suppression(
                rule_id=match.group(1),
                reason=match.group(2).strip(),
                line=row,
                standalone=not lines[row - 1][:col].strip(),
            )
        )
    return suppressions
