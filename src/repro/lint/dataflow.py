"""RNG-stream dataflow and worker-purity passes.

The determinism invariant — a run is a pure function of (config, seed) —
dies in two specific ways the per-file rules cannot see:

* an RNG stream escapes into module-global state, so draw order starts
  depending on import order and call history
  (``rng-escapes-to-global``), or one stream object is shared across
  shard-scoped work, so ``workers=1`` and ``workers=N`` diverge
  (``shared-stream-across-shards``); shard independence is what makes
  the generation pipeline schedule-independent
  (:mod:`repro.parallel.generate`);
* a function that runs inside a pool worker mutates module-global state,
  which silently forks per-process copies of that state
  (``worker-global-mutation``).

The passes are conservative taint tracking over the ASTs: a value is an
*RNG stream* if it comes from ``numpy.random.default_rng`` /
``Generator`` construction, a ``RandomStreams`` instance, or a
``.spawn()`` / ``.get()`` call on an already-tainted value; taint follows
simple assignments within a scope and parameter annotations naming
``Generator`` / ``RandomStreams``.  Sequential reuse of one stream inside
a loop is *sanctioned* (event-order draws are the repo's idiom) — only
module-global storage and process-boundary crossings are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.graph import ModuleInfo, ProjectGraph
from repro.lint.rules import ProjectRule, register_project

#: Callable names that construct an RNG stream when called directly.
_RNG_FACTORY_NAMES = frozenset({"default_rng", "RandomStreams"})
#: Attribute calls that construct a stream regardless of receiver.
_RNG_FACTORY_ATTRS = frozenset({"default_rng", "RandomStreams", "spawn"})
#: Annotation names that mark a parameter as carrying a stream.
_RNG_ANNOTATION_NAMES = frozenset({"Generator", "RandomStreams"})
#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)


def _annotation_names(annotation: Optional[ast.expr]) -> set[str]:
    if annotation is None:
        return set()
    return {
        node.id if isinstance(node, ast.Name) else node.attr
        for node in ast.walk(annotation)
        if isinstance(node, (ast.Name, ast.Attribute))
    }


def _is_rng_expr(node: ast.expr, tainted: set[str]) -> bool:
    """Conservatively: does this expression produce an RNG stream?"""
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _RNG_FACTORY_NAMES:
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in _RNG_FACTORY_ATTRS:
                return True
            # stream.get("name") taints only when the receiver is tainted
            # (plain dict.get must not).
            if func.attr == "get" and _is_rng_expr(func.value, tainted):
                return True
    return False


def _scope_locals(func: ast.AST) -> set[str]:
    """Names assigned anywhere in a function scope (params included)."""
    names: set[str] = set()
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            names.add(arg.arg)
    declared_global: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.Name, ast.arg)):
            if isinstance(node, ast.arg):
                names.add(node.arg)
            elif isinstance(node.ctx, ast.Store):
                names.add(node.id)
    return names - declared_global


def _tainted_names(func: ast.AST) -> set[str]:
    """Names carrying an RNG stream inside ``func`` (fixed point)."""
    tainted: set[str] = set()
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        for arg in list(func.args.posonlyargs) + list(func.args.args) + list(
            func.args.kwonlyargs
        ):
            if _annotation_names(arg.annotation) & _RNG_ANNOTATION_NAMES:
                tainted.add(arg.arg)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            value = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None or not _is_rng_expr(value, tainted):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id not in tainted:
                    tainted.add(target.id)
                    changed = True
    return tainted


def _function_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register_project
class RngEscapesToGlobalRule(ProjectRule):
    """A stream stored in a module global couples every consumer's draw
    order to import order and call history; streams must be created inside
    the run and passed explicitly (or drawn from seed-derived substreams —
    :class:`repro.simulation.randomness.RandomStreams`)."""

    rule_id = "rng-escapes-to-global"
    description = "RNG stream stored in module-global state"

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        for name in sorted(graph.modules):
            info = graph.modules[name]
            module_tainted: set[str] = set()
            for node in info.tree.body:
                value = None
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    value, targets = node.value, node.targets
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    value, targets = node.value, [node.target]
                if value is None or not _is_rng_expr(value, module_tainted):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        module_tainted.add(target.id)
                yield Finding(
                    path=info.relpath,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule_id=self.rule_id,
                    message=(
                        "RNG stream assigned at module scope; create streams "
                        "inside the run and pass them explicitly"
                    ),
                )
            for func in _function_nodes(info.tree):
                declared: set[str] = set()
                for node in ast.walk(func):
                    if isinstance(node, ast.Global):
                        declared.update(node.names)
                if not declared:
                    continue
                tainted = _tainted_names(func)
                for node in ast.walk(func):
                    if not isinstance(node, ast.Assign):
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id in declared
                            and _is_rng_expr(node.value, tainted | _tainted_names(func))
                        ):
                            yield Finding(
                                path=info.relpath,
                                line=node.lineno,
                                col=node.col_offset + 1,
                                rule_id=self.rule_id,
                                message=(
                                    f"RNG stream escapes to module global "
                                    f"'{target.id}' via a global statement"
                                ),
                            )


def _lambda_free_tainted(node: ast.Lambda, tainted: set[str]) -> bool:
    bound = {arg.arg for arg in node.args.args + node.args.kwonlyargs}
    for leaf in ast.walk(node.body):
        if isinstance(leaf, ast.Name) and leaf.id in tainted and leaf.id not in bound:
            return True
    return False


@register_project
class SharedStreamAcrossShardsRule(ProjectRule):
    """One stream object crossing a process boundary (or feeding multiple
    shard-scoped calls) makes output depend on shard scheduling; shards
    must derive independent substreams from the seed instead
    (``day_substream_seed`` / :meth:`RandomStreams.spawn`)."""

    rule_id = "shared-stream-across-shards"
    description = "RNG stream passed across shard/process boundaries"

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        for name in sorted(graph.modules):
            info = graph.modules[name]
            for func in _function_nodes(info.tree):
                tainted = _tainted_names(func)
                if not tainted:
                    continue
                local_defs = {
                    child.name: child
                    for child in ast.walk(func)
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and child is not func
                }
                shard_calls: dict[str, list[ast.Call]] = {}
                for node in ast.walk(func):
                    if not isinstance(node, ast.Call):
                        continue
                    finding = self._check_call(
                        info, node, tainted, local_defs, shard_calls
                    )
                    if finding is not None:
                        yield finding
                for stream, calls in sorted(shard_calls.items()):
                    if len(calls) < 2:
                        continue
                    for call in calls[1:]:
                        yield Finding(
                            path=info.relpath,
                            line=call.lineno,
                            col=call.col_offset + 1,
                            rule_id=self.rule_id,
                            message=(
                                f"stream '{stream}' feeds multiple shard-scoped "
                                "calls; derive one substream per shard instead"
                            ),
                        )

    def _check_call(
        self,
        info: ModuleInfo,
        node: ast.Call,
        tainted: set[str],
        local_defs: dict,
        shard_calls: dict[str, list[ast.Call]],
    ) -> Optional[Finding]:
        func = node.func
        callee = None
        if isinstance(func, ast.Name):
            callee = func.id
        elif isinstance(func, ast.Attribute):
            callee = func.attr

        def crossing(detail: str) -> Finding:
            return Finding(
                path=info.relpath,
                line=node.lineno,
                col=node.col_offset + 1,
                rule_id=self.rule_id,
                message=f"RNG stream crosses a process boundary: {detail}",
            )

        if isinstance(func, ast.Attribute) and func.attr in ("submit", "map"):
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id in tainted:
                    return crossing(f"'{arg.id}' passed to .{func.attr}()")
                if isinstance(arg, ast.Lambda) and _lambda_free_tainted(arg, tainted):
                    return crossing(f"lambda capturing a stream passed to .{func.attr}()")
                if isinstance(arg, ast.Name) and arg.id in local_defs:
                    inner = local_defs[arg.id]
                    bound = _scope_locals(inner)
                    for leaf in ast.walk(inner):
                        if (
                            isinstance(leaf, ast.Name)
                            and isinstance(leaf.ctx, ast.Load)
                            and leaf.id in tainted
                            and leaf.id not in bound
                        ):
                            return crossing(
                                f"'{arg.id}' closes over stream '{leaf.id}'"
                            )
            return None

        for keyword in node.keywords:
            if keyword.arg == "initargs":
                for leaf in ast.walk(keyword.value):
                    if isinstance(leaf, ast.Name) and leaf.id in tainted:
                        return crossing(f"'{leaf.id}' shipped through initargs")
            if keyword.arg == "initializer":
                value = keyword.value
                if isinstance(value, ast.Lambda) and _lambda_free_tainted(
                    value, tainted
                ):
                    return crossing("initializer lambda captures a stream")

        if callee and "shard" in callee.lower():
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id in tainted:
                    shard_calls.setdefault(arg.id, []).append(node)
        return None


def _pool_entry_points(graph: ProjectGraph) -> list[tuple[str, str]]:
    """``(module, function)`` pairs submitted to executors or installed as
    pool initializers, anywhere in the project."""
    entries: list[tuple[str, str]] = []

    def resolve(info: ModuleInfo, target: ast.expr) -> Optional[tuple[str, str]]:
        if not isinstance(target, ast.Name):
            return None
        return _resolve_function(graph, info, target.id)

    for name in sorted(graph.modules):
        info = graph.modules[name]
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in ("submit", "map"):
                if node.args:
                    resolved = resolve(info, node.args[0])
                    if resolved is not None:
                        entries.append(resolved)
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    resolved = resolve(info, keyword.value)
                    if resolved is not None:
                        entries.append(resolved)
    return sorted(set(entries))


def _module_functions(info: ModuleInfo) -> dict[str, ast.AST]:
    return {
        node.name: node
        for node in info.tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _resolve_function(
    graph: ProjectGraph, info: ModuleInfo, name: str
) -> Optional[tuple[str, str]]:
    """``(module, function)`` a local name refers to, following one
    from-import hop into the analyzed set."""
    if name in _module_functions(info):
        return (info.name, name)
    for record in info.imports:
        if not record.is_from:
            continue
        for original, local in record.names:
            if local != name:
                continue
            target = graph.modules.get(record.target)
            if target is not None and original in _module_functions(target):
                return (target.name, original)
    return None


@register_project
class WorkerGlobalMutationRule(ProjectRule):
    """Functions that run inside pool workers must not mutate module
    globals: each worker process would fork its own copy, making results
    depend on task placement.  The pass walks every function statically
    reachable (direct calls) from pool entry points — ``.submit``/``.map``
    targets and ``initializer=`` callables."""

    rule_id = "worker-global-mutation"
    description = "module-global mutation inside pool-worker-reachable code"

    def check(self, graph: ProjectGraph) -> Iterator[Finding]:
        entries = _pool_entry_points(graph)
        seen: set[tuple[str, str]] = set()
        queue = list(entries)
        reachable: list[tuple[str, str]] = []
        while queue:
            key = queue.pop()
            if key in seen:
                continue
            seen.add(key)
            module_name, func_name = key
            info = graph.modules.get(module_name)
            if info is None:
                continue
            func = _module_functions(info).get(func_name)
            if func is None:
                continue
            reachable.append(key)
            for node in ast.walk(func):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                    resolved = _resolve_function(graph, info, node.func.id)
                    if resolved is not None:
                        queue.append(resolved)

        for module_name, func_name in sorted(reachable):
            info = graph.modules[module_name]
            func = _module_functions(info)[func_name]
            yield from self._check_function(info, func)

    def _check_function(self, info: ModuleInfo, func: ast.AST) -> Iterator[Finding]:
        declared_global: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        local_names = _scope_locals(func)

        def module_level(name: str) -> bool:
            return name in info.bindings and name not in local_names

        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared_global:
                        yield self._finding(
                            info,
                            node,
                            f"assigns module global '{target.id}' "
                            f"(declared global in {func.name})",
                        )
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        if module_level(target.value.id):
                            yield self._finding(
                                info,
                                node,
                                f"writes into module-global '{target.value.id}'",
                            )
            elif isinstance(node, ast.Call):
                func_expr = node.func
                if (
                    isinstance(func_expr, ast.Attribute)
                    and func_expr.attr in _MUTATOR_METHODS
                    and isinstance(func_expr.value, ast.Name)
                    and module_level(func_expr.value.id)
                ):
                    yield self._finding(
                        info,
                        node,
                        f"mutates module-global '{func_expr.value.id}' "
                        f"via .{func_expr.attr}()",
                    )

    def _finding(self, info: ModuleInfo, node: ast.AST, detail: str) -> Finding:
        return Finding(
            path=info.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=f"pool-worker-reachable code {detail}; workers must stay pure",
        )
