"""The ``repro lint`` command-line target.

Usage::

    python -m repro lint src benchmarks        # text report, exit 1 on findings
    python -m repro lint --json src            # versioned JSON document
    python -m repro lint --list-rules          # rule catalog

Exit codes: 0 clean, 1 findings, 2 usage error — mirroring the experiment
CLI's conventions so ``scripts/check.sh`` can gate on it directly.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.lint.reporters import render_json, render_text
from repro.lint.rules import rule_catalog
from repro.lint.runner import lint_paths

#: Default lint scope when no paths are given: the library and the
#: benchmarks (tests and examples may use wall clocks and ad-hoc RNG).
DEFAULT_PATHS = ("src",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Determinism linter: enforces that a run is a pure function of "
            "(config, seed) with sim-time as the only clock. See LINTING.md "
            "for the rule catalog and suppression syntax."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the versioned JSON report"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for entry in rule_catalog():
            print(f"{entry['id']:<28} {entry['description']}")
        return 0

    paths = args.paths or list(DEFAULT_PATHS)
    started = time.perf_counter()  # repro: allow[wall-clock] lint reports its own wall runtime
    try:
        report = lint_paths(paths)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started  # repro: allow[wall-clock] lint reports its own wall runtime

    if args.json:
        print(render_json(report))
    else:
        print(render_text(report))
        print(f"[linted {report.files_checked} file(s) in {elapsed:.2f}s]")
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
