"""The ``repro lint`` command-line target.

Usage::

    python -m repro lint src benchmarks        # text report, exit 1 on findings
    python -m repro lint --json src            # versioned JSON document
    python -m repro lint --list-rules          # rule catalog
    python -m repro lint --changed             # only files git reports changed
    python -m repro lint --graph-dot out.dot   # package import graph (DOT)

Exit codes: 0 clean, 1 findings, 2 usage error — mirroring the experiment
CLI's conventions so ``scripts/check.sh`` can gate on it directly.

``--changed`` narrows *reporting* to ``git diff --name-only HEAD`` files;
the whole path set is still parsed so the whole-program passes (cycles,
layering, exports) judge the changed files against the real tree.  Outside
a git checkout (or if git fails) it falls back to the full tree.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.architecture import tier_of
from repro.lint.graph import render_dot
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import rule_catalog
from repro.lint.runner import lint_paths

#: Default lint scope when no paths are given: the library and the
#: benchmarks (tests and examples may use wall clocks and ad-hoc RNG).
DEFAULT_PATHS = ("src",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Determinism linter: enforces that a run is a pure function of "
            "(config, seed) with sim-time as the only clock, plus the "
            "whole-program architecture contract. See LINTING.md for the "
            "rule catalog and suppression syntax."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the versioned JSON report"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "report only files listed by `git diff --name-only HEAD` "
            "(full tree outside a git checkout)"
        ),
    )
    parser.add_argument(
        "--graph-dot",
        metavar="FILE",
        help="also write the package-level import graph as DOT ('-' for stdout)",
    )
    return parser


def _git_changed_files() -> Optional[list[Path]]:
    """Changed paths from git, or ``None`` when git is unusable here."""
    try:
        completed = subprocess.run(
            ["git", "diff", "--name-only", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return [
        Path(line.strip())
        for line in completed.stdout.splitlines()
        if line.strip().endswith(".py") and Path(line.strip()).is_file()
    ]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for entry in rule_catalog():
            print(f"{entry['id']:<28} {entry['description']}")
        return 0

    paths = args.paths or list(DEFAULT_PATHS)
    only = None
    if args.changed:
        changed = _git_changed_files()
        if changed is not None:
            only = changed
    started = time.perf_counter()  # repro: allow[wall-clock] lint reports its own wall runtime
    try:
        report = lint_paths(paths, only=only)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started  # repro: allow[wall-clock] lint reports its own wall runtime

    if args.graph_dot and report.graph is not None:
        dot = render_dot(report.graph, tier_of=tier_of)
        if args.graph_dot == "-":
            print(dot, end="")
        else:
            Path(args.graph_dot).write_text(dot, encoding="utf-8")
            print(f"[wrote import graph to {args.graph_dot}]", file=sys.stderr)

    if args.json:
        print(render_json(report))
    else:
        print(render_text(report))
        mode = " (changed files only)" if only is not None else ""
        print(f"[linted {report.files_checked} file(s) in {elapsed:.2f}s{mode}]")
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
