"""Render a :class:`~repro.lint.runner.LintReport` as text or JSON.

The JSON schema is versioned and validated by
:func:`validate_lint_payload` — the same pattern ``BENCH_trace.json``
uses in ``benchmarks/test_trace_scale.py`` — so tooling that consumes
``repro lint --json`` output gets a contract, not a guess.
"""

from __future__ import annotations

import json

from repro.lint.runner import LintReport
from repro.lint.rules import rule_catalog

LINT_SCHEMA_VERSION = 2

REQUIRED_TOP_KEYS = {
    "tool",
    "schema_version",
    "paths",
    "files_checked",
    "rules",
    "findings",
    "suppressed",
    "summary",
    "project",
}
REQUIRED_FINDING_KEYS = {"rule", "path", "line", "col", "message"}
REQUIRED_SUMMARY_KEYS = {"findings", "suppressed", "files_checked", "by_rule", "clean"}


def report_to_payload(report: LintReport) -> dict:
    """The ``repro lint --json`` document for ``report``."""
    return {
        "tool": "repro.lint",
        "schema_version": LINT_SCHEMA_VERSION,
        "paths": list(report.paths),
        "files_checked": report.files_checked,
        "rules": rule_catalog(),
        "project": {
            "modules": report.project.get("modules", 0),
            "import_edges": report.project.get("import_edges", 0),
            "cycles": report.project.get("cycles", 0),
        },
        "findings": [finding.to_dict() for finding in report.findings],
        "suppressed": [entry.to_dict() for entry in report.suppressed],
        "summary": {
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "files_checked": report.files_checked,
            "by_rule": report.by_rule(),
            "clean": report.clean,
        },
    }


def render_json(report: LintReport) -> str:
    """Serialize the report as the versioned JSON document."""
    return json.dumps(report_to_payload(report), indent=2, sort_keys=False)


def render_text(report: LintReport) -> str:
    """Human-readable report: one ``path:line:col: [rule] message`` per finding."""
    lines = [
        f"{finding.location()}: [{finding.rule_id}] {finding.message}"
        for finding in report.findings
    ]
    summary = (
        f"{len(report.findings)} finding(s), {len(report.suppressed)} suppressed, "
        f"{report.files_checked} file(s) checked"
    )
    if report.clean:
        lines.append(f"clean: {summary}")
    else:
        lines.append(summary)
        for rule_id, count in report.by_rule().items():
            lines.append(f"  {count:>4}  {rule_id}")
    return "\n".join(lines)


def validate_lint_payload(payload: dict) -> None:
    """Schema check for ``repro lint --json`` output; raises ``ValueError``.

    Mirrors ``validate_bench_payload`` in ``benchmarks/test_trace_scale.py``:
    a hand-rolled structural check, because the toolchain has no JSON-Schema
    dependency and the contract is small enough to state exactly.
    """
    missing = REQUIRED_TOP_KEYS - payload.keys()
    if missing:
        raise ValueError(f"lint payload missing keys: {sorted(missing)}")
    if payload["tool"] != "repro.lint":
        raise ValueError(f"unexpected tool id {payload['tool']!r}")
    if payload["schema_version"] != LINT_SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {payload['schema_version']!r}")
    if not isinstance(payload["files_checked"], int) or payload["files_checked"] < 0:
        raise ValueError("files_checked must be a non-negative integer")
    if not payload["rules"]:
        raise ValueError("lint payload lists no rules")
    project = payload["project"]
    for key in ("modules", "import_edges", "cycles"):
        if not isinstance(project.get(key), int) or project[key] < 0:
            raise ValueError(f"project.{key} must be a non-negative integer")
    for rule in payload["rules"]:
        if not rule.get("id") or not rule.get("description"):
            raise ValueError(f"rule entry missing id/description: {rule}")
    for section in ("findings", "suppressed"):
        for entry in payload[section]:
            entry_missing = REQUIRED_FINDING_KEYS - entry.keys()
            if entry_missing:
                raise ValueError(f"{section} entry missing keys: {sorted(entry_missing)}")
            if entry["line"] < 1 or entry["col"] < 1:
                raise ValueError(f"{section} entry has non-positive location: {entry}")
    for entry in payload["suppressed"]:
        if not entry.get("reason"):
            raise ValueError(f"suppressed entry without reason: {entry}")
    summary = payload["summary"]
    summary_missing = REQUIRED_SUMMARY_KEYS - summary.keys()
    if summary_missing:
        raise ValueError(f"summary missing keys: {sorted(summary_missing)}")
    if summary["findings"] != len(payload["findings"]):
        raise ValueError("summary.findings disagrees with findings list")
    if summary["suppressed"] != len(payload["suppressed"]):
        raise ValueError("summary.suppressed disagrees with suppressed list")
    if summary["clean"] != (len(payload["findings"]) == 0):
        raise ValueError("summary.clean disagrees with findings list")
    # repro: allow[fsum-required] by_rule values are integer finding counts
    if sum(summary["by_rule"].values()) != len(payload["findings"]):
        raise ValueError("summary.by_rule counts disagree with findings list")
