"""Rule registry and the per-file context handed to every rule.

AST rules subclass :class:`Rule` and register with :func:`register`; the
runner also enforces three *meta* rules (suppression hygiene) that need
whole-file state and therefore live in the runner rather than here — they
are declared with :func:`declare_meta_rule` so ``repro lint --list-rules``
and unknown-id checks see one unified catalog.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Type

from repro.lint.findings import Finding

#: Files allowed to read host timing/resource state (``time.perf_counter``,
#: ``resource.getrusage``) without a suppression: the observability sites
#: that report wall runtime and peak RSS to humans, never to the
#: simulation.  Matched as posix-path suffixes / components.
TIMING_ALLOWLIST_SUFFIXES = (
    "repro/cli.py",
    "repro/parallel/generate.py",
    "repro/obs/process.py",
)
TIMING_ALLOWLIST_DIRS = ("benchmarks",)


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: Path
    relpath: str  # posix form, as reported in findings
    source: str
    tree: ast.AST
    lines: list[str] = field(default_factory=list)

    @property
    def is_package_init(self) -> bool:
        """True for ``__init__.py`` — the files the ``missing-all`` rule owns."""
        return self.path.name == "__init__.py"

    @property
    def timing_allowed(self) -> bool:
        """True where ``time.perf_counter`` is sanctioned without suppression."""
        posix = self.relpath
        if any(posix.endswith(suffix) for suffix in TIMING_ALLOWLIST_SUFFIXES):
            return True
        return any(part in TIMING_ALLOWLIST_DIRS for part in posix.split("/"))

    def finding(self, node: ast.AST, rule_id: str, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
        )


class Rule:
    """Base class for AST rules.

    Subclasses set ``rule_id``/``description`` and implement :meth:`check`,
    yielding findings for one parsed file.  Rules must be stateless across
    files — one instance serves the whole run.
    """

    rule_id: str = ""
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for ``ctx``; the base implementation yields none."""
        raise NotImplementedError


class ProjectRule:
    """Base class for whole-program rules.

    Instead of one file, :meth:`check` receives the
    :class:`~repro.lint.graph.ProjectGraph` built from *every* file in the
    run, and yields findings whose ``path`` names the offending file — the
    runner routes them back through that file's suppression audit exactly
    like per-file findings.
    """

    rule_id: str = ""
    description: str = ""

    def check(self, graph) -> Iterator[Finding]:
        """Yield findings for the whole project graph."""
        raise NotImplementedError


#: id -> rule instance, in registration order (reports sort by location, so
#: registration order only affects --list-rules output).
_AST_RULES: dict[str, Rule] = {}
#: id -> whole-program rule instance.
_PROJECT_RULES: dict[str, ProjectRule] = {}
#: id -> description for runner-enforced meta rules.
_META_RULES: dict[str, str] = {}


def _claim_rule_id(rule_id: str) -> None:
    if not rule_id:
        raise ValueError("rule has no rule_id")
    if rule_id in _AST_RULES or rule_id in _META_RULES or rule_id in _PROJECT_RULES:
        raise ValueError(f"duplicate rule id {rule_id!r}")


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add an AST rule to the registry."""
    _claim_rule_id(rule_cls.rule_id)
    _AST_RULES[rule_cls.rule_id] = rule_cls()
    return rule_cls


def register_project(rule_cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator: add a whole-program rule to the registry."""
    _claim_rule_id(rule_cls.rule_id)
    _PROJECT_RULES[rule_cls.rule_id] = rule_cls()
    return rule_cls


def declare_meta_rule(rule_id: str, description: str) -> str:
    """Register a runner-enforced rule id so the catalog stays unified."""
    _claim_rule_id(rule_id)
    _META_RULES[rule_id] = description
    return rule_id


def ast_rules() -> Iterable[Rule]:
    """All registered AST rule instances."""
    return _AST_RULES.values()


def project_rules() -> Iterable[ProjectRule]:
    """All registered whole-program rule instances."""
    return _PROJECT_RULES.values()


def known_rule_ids() -> frozenset[str]:
    """Every valid rule id — AST, project, and meta — for suppression validation."""
    return frozenset(_AST_RULES) | frozenset(_PROJECT_RULES) | frozenset(_META_RULES)


def rule_catalog() -> list[dict]:
    """``[{"id", "description"}, ...]`` sorted by id (JSON report / --list-rules)."""
    entries = {rule.rule_id: rule.description for rule in _AST_RULES.values()}
    entries.update(
        {rule.rule_id: rule.description for rule in _PROJECT_RULES.values()}
    )
    entries.update(_META_RULES)
    return [{"id": rule_id, "description": entries[rule_id]} for rule_id in sorted(entries)]
