"""HLS chunklists and polling schedules.

HLS viewers periodically fetch a *chunklist* (playlist) naming the chunks
available for download, then fetch new chunks (§4.1).  The delay cost of
this design — chunking delay plus polling delay — is the paper's central
scalability-versus-latency trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np


@dataclass(frozen=True)
class ChunklistEntry:
    """One chunk reference in a chunklist."""

    chunk_index: int
    duration_s: float
    available_since: float  # when this entry appeared at the serving cache


@dataclass
class Chunklist:
    """An ordered set of available chunks with a version counter.

    ``version`` increments whenever a chunk is appended; caches compare
    versions to decide whether their copy is stale (the paper's
    "chunklist expiry" step ⑧).
    """

    entries: list[ChunklistEntry] = field(default_factory=list)
    version: int = 0
    max_entries: int = 6  # live HLS playlists advertise a short window

    def append(self, chunk_index: int, duration_s: float, now: float) -> None:
        if self.entries and chunk_index <= self.entries[-1].chunk_index:
            raise ValueError(
                f"chunk {chunk_index} not newer than {self.entries[-1].chunk_index}"
            )
        self.entries.append(
            ChunklistEntry(chunk_index=chunk_index, duration_s=duration_s, available_since=now)
        )
        if len(self.entries) > self.max_entries:
            self.entries = self.entries[-self.max_entries :]
        self.version += 1

    @property
    def latest_index(self) -> Optional[int]:
        return self.entries[-1].chunk_index if self.entries else None

    def entries_after(self, chunk_index: Optional[int]) -> list[ChunklistEntry]:
        """Entries newer than ``chunk_index`` (None = everything)."""
        if chunk_index is None:
            return list(self.entries)
        return [entry for entry in self.entries if entry.chunk_index > chunk_index]

    def copy(self) -> "Chunklist":
        clone = Chunklist(max_entries=self.max_entries)
        clone.entries = list(self.entries)
        clone.version = self.version
        return clone


@dataclass
class HlsPollSchedule:
    """A viewer's periodic chunklist polling.

    Periscope clients poll every 2–2.8 s (§5.2); the crawler polls every
    0.1 s.  The schedule exposes an iterator of poll times given a start
    phase, with optional per-poll jitter.
    """

    interval_s: float
    start_time: float = 0.0
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")
        if self.jitter_s < 0:
            raise ValueError("jitter must be non-negative")

    def poll_times(
        self,
        until: float,
        rng: Optional[np.random.Generator] = None,
    ) -> Iterator[float]:
        """Yield poll times in ``[start_time, until]``."""
        if self.jitter_s > 0 and rng is None:
            raise ValueError("jitter requires an RNG")
        time = self.start_time
        while time <= until:
            yield time
            step = self.interval_s
            if self.jitter_s > 0 and rng is not None:
                step = max(0.01, step + float(rng.uniform(-self.jitter_s, self.jitter_s)))
            time += step

    def first_poll_at_or_after(self, time: float) -> float:
        """First deterministic poll time >= ``time`` (jitter ignored)."""
        if time <= self.start_time:
            return self.start_time
        periods = int(np.ceil((time - self.start_time) / self.interval_s))
        return self.start_time + periods * self.interval_s
