"""M3U8 live playlists: the HLS chunklist's wire format.

The paper's HLS crawler fetched and parsed real M3U8 playlists from
Fastly every 0.1 s.  This module renders a :class:`~repro.protocols.hls.
Chunklist` as an RFC 8216-style live media playlist and parses one back —
so the simulated crawler exchanges the same artifact a real one would,
and playlist-level behaviours (media-sequence advancement as the live
window slides, target duration) are faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

from repro.protocols.hls import Chunklist


class M3u8ParseError(Exception):
    """Raised on malformed playlist text."""


@dataclass(frozen=True)
class MediaPlaylist:
    """The parsed form of a live media playlist."""

    version: int
    target_duration_s: int
    media_sequence: int
    segments: tuple[tuple[float, str], ...]  # (duration, uri)

    @property
    def segment_count(self) -> int:
        return len(self.segments)

    def latest_chunk_index(self) -> int | None:
        if not self.segments:
            return None
        return self.media_sequence + len(self.segments) - 1


def render_chunklist(
    chunklist: Chunklist,
    broadcast_id: int,
    version: int = 3,
) -> str:
    """Render a chunklist as live-playlist text.

    The media sequence is the index of the oldest chunk still in the
    window — it advances as the window slides, which is how real clients
    detect dropped history.  Live playlists carry no ``#EXT-X-ENDLIST``.
    """
    entries = chunklist.entries
    media_sequence = entries[0].chunk_index if entries else 0
    target = max((entry.duration_s for entry in entries), default=1.0)
    lines = [
        "#EXTM3U",
        f"#EXT-X-VERSION:{version}",
        f"#EXT-X-TARGETDURATION:{max(1, math.ceil(target))}",
        f"#EXT-X-MEDIA-SEQUENCE:{media_sequence}",
    ]
    for entry in entries:
        lines.append(f"#EXTINF:{entry.duration_s:.3f},")
        lines.append(f"chunk_{broadcast_id}_{entry.chunk_index}.ts")
    return "\n".join(lines) + "\n"


def parse_playlist(text: str) -> MediaPlaylist:
    """Parse live-playlist text back into a :class:`MediaPlaylist`."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines or lines[0] != "#EXTM3U":
        raise M3u8ParseError("missing #EXTM3U header")
    version = 1
    target = None
    media_sequence = 0
    segments: list[tuple[float, str]] = []
    pending_duration: float | None = None
    for line in lines[1:]:
        if line.startswith("#EXT-X-VERSION:"):
            version = int(line.split(":", 1)[1])
        elif line.startswith("#EXT-X-TARGETDURATION:"):
            target = int(line.split(":", 1)[1])
        elif line.startswith("#EXT-X-MEDIA-SEQUENCE:"):
            media_sequence = int(line.split(":", 1)[1])
        elif line.startswith("#EXTINF:"):
            payload = line.split(":", 1)[1].rstrip(",")
            try:
                pending_duration = float(payload.split(",")[0])
            except ValueError as error:
                raise M3u8ParseError(f"bad EXTINF duration: {line}") from error
        elif line.startswith("#EXT-X-ENDLIST"):
            raise M3u8ParseError("live playlist must not carry ENDLIST")
        elif line.startswith("#"):
            continue  # unknown tags are ignored, per spec
        else:
            if pending_duration is None:
                raise M3u8ParseError(f"segment URI without EXTINF: {line}")
            segments.append((pending_duration, line))
            pending_duration = None
    if target is None:
        raise M3u8ParseError("missing #EXT-X-TARGETDURATION")
    if pending_duration is not None:
        raise M3u8ParseError("dangling EXTINF without a URI")
    return MediaPlaylist(
        version=version,
        target_duration_s=target,
        media_sequence=media_sequence,
        segments=tuple(segments),
    )


def playlist_to_chunklist(playlist: MediaPlaylist, now: float = 0.0) -> Chunklist:
    """Rebuild a :class:`Chunklist` view from parsed playlist text.

    Availability timestamps are not carried on the wire; the caller's
    fetch time stamps every entry (what a crawler actually knows).
    """
    chunklist = Chunklist(max_entries=max(len(playlist.segments), 1))
    for offset, (duration, _uri) in enumerate(playlist.segments):
        chunklist.append(playlist.media_sequence + offset, duration, now)
    return chunklist
