"""Streaming protocol models.

Implements the two video delivery protocols whose trade-off the paper
dissects — RTMP (persistent connection, server push, per-frame operation)
and HLS (chunked, client poll) — plus the RTMPS cost model and the
PubNub-style message channel used for comments and hearts.

The RTMP implementation includes an actual binary wire format
(:mod:`repro.protocols.rtmp`): the §7 tampering attack parses and rewrites
these packets, so the vulnerability is demonstrated on real bytes rather
than asserted.
"""

from repro.protocols.frames import Chunk, VideoFrame, frames_to_chunks
from repro.protocols.rtmp import (
    RtmpHandshake,
    RtmpPacket,
    RtmpPacketType,
    RtmpParseError,
    parse_rtmp_packet,
)
from repro.protocols.hls import Chunklist, ChunklistEntry, HlsPollSchedule
from repro.protocols.m3u8 import (
    M3u8ParseError,
    MediaPlaylist,
    parse_playlist,
    playlist_to_chunklist,
    render_chunklist,
)
from repro.protocols.messages import MessageChannel, StreamMessage
from repro.protocols.rtmps import RtmpsCostModel

__all__ = [
    "VideoFrame",
    "Chunk",
    "frames_to_chunks",
    "RtmpPacket",
    "RtmpPacketType",
    "RtmpHandshake",
    "RtmpParseError",
    "parse_rtmp_packet",
    "Chunklist",
    "ChunklistEntry",
    "HlsPollSchedule",
    "MediaPlaylist",
    "render_chunklist",
    "parse_playlist",
    "playlist_to_chunklist",
    "M3u8ParseError",
    "MessageChannel",
    "StreamMessage",
    "RtmpsCostModel",
]
