"""The message channel (comments and hearts).

Periscope delivers comments/hearts through a third-party pub/sub service
(PubNub) over HTTPS, entirely separate from the video channel (§4.1,
Figure 8).  Viewers merge messages with video client-side by timestamp —
which is exactly why video delay matters: a viewer lagging 12 s behind sees
*current* comments over *stale* video.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np


class MessageKind(enum.Enum):
    COMMENT = "comment"
    HEART = "heart"


@dataclass(frozen=True)
class StreamMessage:
    """One published message."""

    kind: MessageKind
    sender_id: int
    sent_time: float
    broadcast_id: int


@dataclass
class _Subscription:
    subscriber_id: int
    callback: Callable[[StreamMessage, float], None]


@dataclass
class MessageChannel:
    """A per-broadcast pub/sub channel with HTTPS-like delivery latency.

    Delivery latency is sampled per (message, subscriber) pair: a base
    service latency plus lognormal jitter.  This channel is intentionally
    fast relative to HLS video (hundreds of ms vs ~12 s) — the asymmetry
    drives the interactivity problem the paper motivates with delayed
    "hearts".
    """

    broadcast_id: int
    base_latency_s: float = 0.15
    jitter_sigma: float = 0.4
    _subscriptions: dict[int, _Subscription] = field(default_factory=dict)
    published: list[StreamMessage] = field(default_factory=list)

    def subscribe(
        self,
        subscriber_id: int,
        callback: Callable[[StreamMessage, float], None],
    ) -> None:
        if subscriber_id in self._subscriptions:
            raise ValueError(f"subscriber {subscriber_id} already subscribed")
        self._subscriptions[subscriber_id] = _Subscription(subscriber_id, callback)

    def unsubscribe(self, subscriber_id: int) -> None:
        self._subscriptions.pop(subscriber_id, None)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscriptions)

    def delivery_latency(self, rng: np.random.Generator) -> float:
        return self.base_latency_s * float(rng.lognormal(0.0, self.jitter_sigma))

    def publish(
        self,
        message: StreamMessage,
        rng: np.random.Generator,
        scheduler: Optional[Callable[[float, Callable[[], None]], object]] = None,
    ) -> dict[int, float]:
        """Publish to all subscribers; returns per-subscriber delivery times.

        With a ``scheduler`` (e.g. ``Simulator.schedule``), callbacks fire
        inside the event loop; without one they fire immediately (useful in
        unit tests).
        """
        self.published.append(message)
        deliveries: dict[int, float] = {}
        for subscription in list(self._subscriptions.values()):
            latency = self.delivery_latency(rng)
            deliver_at = message.sent_time + latency
            deliveries[subscription.subscriber_id] = deliver_at
            if scheduler is not None:
                scheduler(latency, _Delivery(subscription.callback, message, deliver_at))
            else:
                subscription.callback(message, deliver_at)
        return deliveries


class _Delivery:
    """Picklable/debuggable delivery closure."""

    def __init__(
        self,
        callback: Callable[[StreamMessage, float], None],
        message: StreamMessage,
        deliver_at: float,
    ) -> None:
        self._callback = callback
        self._message = message
        self._deliver_at = deliver_at

    def __call__(self) -> None:
        self._callback(self._message, self._deliver_at)
