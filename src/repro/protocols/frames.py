"""Video frames and chunks.

The paper's unit of RTMP delivery is a ~40 ms video frame; HLS groups
~75 frames into a ~3 s chunk (§5.2).  Keyframes carry a broadcaster-side
capture timestamp in their metadata — the paper used it as timestamp ① / ⑤
of the delay breakdown, and the §7 defense embeds signatures next to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class VideoFrame:
    """One encoded video frame.

    ``capture_time`` is the broadcaster-device timestamp embedded in the
    stream metadata; ``payload`` stands in for the encoded bits (the
    security experiments replace it).
    """

    sequence: int
    capture_time: float
    duration_s: float = 0.040
    is_keyframe: bool = False
    payload: bytes = b""
    signature: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.sequence < 0:
            raise ValueError("sequence must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")

    def with_payload(self, payload: bytes) -> "VideoFrame":
        """Copy with a replaced payload (used by the tampering attack)."""
        return VideoFrame(
            sequence=self.sequence,
            capture_time=self.capture_time,
            duration_s=self.duration_s,
            is_keyframe=self.is_keyframe,
            payload=payload,
            signature=self.signature,
        )

    def with_signature(self, signature: bytes) -> "VideoFrame":
        """Copy with an embedded integrity signature (the §7.2 defense)."""
        return VideoFrame(
            sequence=self.sequence,
            capture_time=self.capture_time,
            duration_s=self.duration_s,
            is_keyframe=self.is_keyframe,
            payload=self.payload,
            signature=signature,
        )


@dataclass(frozen=True)
class Chunk:
    """A group of consecutive frames served as one HLS unit."""

    index: int
    frames: tuple[VideoFrame, ...]
    completed_time: float  # when the last frame reached the ingest server

    def __post_init__(self) -> None:
        if not self.frames:
            raise ValueError("chunk must contain at least one frame")
        sequences = [frame.sequence for frame in self.frames]
        if sequences != sorted(sequences):
            raise ValueError("chunk frames must be in sequence order")

    @property
    def duration_s(self) -> float:
        return sum(frame.duration_s for frame in self.frames)

    @property
    def first_capture_time(self) -> float:
        """Capture time of the first frame (timestamp ⑤ of the breakdown)."""
        return self.frames[0].capture_time

    @property
    def first_sequence(self) -> int:
        return self.frames[0].sequence


def frames_to_chunks(
    frames: Sequence[VideoFrame],
    frames_per_chunk: int,
    arrival_times: Optional[Sequence[float]] = None,
) -> list[Chunk]:
    """Group frames into fixed-size chunks.

    ``arrival_times`` gives each frame's ingest-arrival time; a chunk
    completes when its last frame arrives.  Without arrival times the
    capture time of the last frame is used.  A trailing partial chunk is
    emitted (broadcast end flushes the chunker).
    """
    if frames_per_chunk <= 0:
        raise ValueError("frames_per_chunk must be positive")
    if arrival_times is not None and len(arrival_times) != len(frames):
        raise ValueError("arrival_times length must match frames")
    chunks: list[Chunk] = []
    for start in range(0, len(frames), frames_per_chunk):
        group = tuple(frames[start : start + frames_per_chunk])
        last_index = start + len(group) - 1
        completed = (
            arrival_times[last_index]
            if arrival_times is not None
            else group[-1].capture_time + group[-1].duration_s
        )
        chunks.append(Chunk(index=len(chunks), frames=group, completed_time=completed))
    return chunks
