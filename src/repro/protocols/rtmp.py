"""A simplified RTMP wire format.

The §7 vulnerability is that Periscope's public broadcasts travel as
*plaintext, unauthenticated* RTMP: the broadcast token is visible in the
connect message and video payloads can be rewritten in flight.  To make the
attack (and the defense) concrete, this module defines an actual binary
packet format — a simplification of Adobe's RTMP that keeps the fields the
attack manipulates: packet type, broadcast token, frame sequence, capture
timestamp, optional signature, and payload.

Layout (big-endian)::

    magic     2 bytes   0x52 0x4D ("RM")
    version   1 byte
    type      1 byte    1=connect, 2=video, 3=ack, 4=close
    token_len 2 bytes
    token     token_len bytes (UTF-8, PLAINTEXT — the vulnerability)
    sequence  4 bytes
    timestamp 8 bytes   IEEE-754 double, capture time
    flags     1 byte    bit0 = keyframe, bit1 = has signature
    sig_len   2 bytes   (present only if bit1)
    signature sig_len bytes
    body_len  4 bytes
    body      body_len bytes
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Optional

from repro.protocols.frames import VideoFrame

MAGIC = b"RM"
VERSION = 1

_HEADER = struct.Struct(">2sBBH")
_SEQ_TS_FLAGS = struct.Struct(">IdB")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")


class RtmpParseError(Exception):
    """Raised on malformed RTMP bytes."""


class RtmpPacketType(enum.IntEnum):
    """The packet kinds of the simplified wire format."""

    CONNECT = 1
    VIDEO = 2
    ACK = 3
    CLOSE = 4


@dataclass(frozen=True)
class RtmpPacket:
    """One parsed RTMP packet."""

    packet_type: RtmpPacketType
    token: str
    sequence: int = 0
    timestamp: float = 0.0
    is_keyframe: bool = False
    signature: Optional[bytes] = None
    body: bytes = b""

    def encode(self) -> bytes:
        """Serialize to wire bytes."""
        token_bytes = self.token.encode("utf-8")
        flags = (1 if self.is_keyframe else 0) | (2 if self.signature is not None else 0)
        parts = [
            _HEADER.pack(MAGIC, VERSION, int(self.packet_type), len(token_bytes)),
            token_bytes,
            _SEQ_TS_FLAGS.pack(self.sequence, self.timestamp, flags),
        ]
        if self.signature is not None:
            parts.append(_U16.pack(len(self.signature)))
            parts.append(self.signature)
        parts.append(_U32.pack(len(self.body)))
        parts.append(self.body)
        return b"".join(parts)

    def with_body(self, body: bytes) -> "RtmpPacket":
        """Copy with the video payload replaced (the attack primitive)."""
        return RtmpPacket(
            packet_type=self.packet_type,
            token=self.token,
            sequence=self.sequence,
            timestamp=self.timestamp,
            is_keyframe=self.is_keyframe,
            signature=self.signature,
            body=body,
        )

    @classmethod
    def connect(cls, token: str) -> "RtmpPacket":
        return cls(packet_type=RtmpPacketType.CONNECT, token=token)

    @classmethod
    def close(cls, token: str) -> "RtmpPacket":
        return cls(packet_type=RtmpPacketType.CLOSE, token=token)

    @classmethod
    def from_frame(cls, token: str, frame: VideoFrame) -> "RtmpPacket":
        return cls(
            packet_type=RtmpPacketType.VIDEO,
            token=token,
            sequence=frame.sequence,
            timestamp=frame.capture_time,
            is_keyframe=frame.is_keyframe,
            signature=frame.signature,
            body=frame.payload,
        )

    def to_frame(self, duration_s: float = 0.040) -> VideoFrame:
        if self.packet_type is not RtmpPacketType.VIDEO:
            raise ValueError(f"not a video packet: {self.packet_type}")
        return VideoFrame(
            sequence=self.sequence,
            capture_time=self.timestamp,
            duration_s=duration_s,
            is_keyframe=self.is_keyframe,
            payload=self.body,
            signature=self.signature,
        )


def parse_rtmp_packet(data: bytes) -> RtmpPacket:
    """Parse wire bytes back into an :class:`RtmpPacket`.

    This is the parser the paper's authors "wrote [their] own RTMP parser"
    for — the attack uses it to locate and replace video payloads.
    """
    try:
        magic, version, type_value, token_len = _HEADER.unpack_from(data, 0)
    except struct.error as error:
        raise RtmpParseError(f"truncated header: {error}") from error
    if magic != MAGIC:
        raise RtmpParseError(f"bad magic {magic!r}")
    if version != VERSION:
        raise RtmpParseError(f"unsupported version {version}")
    try:
        packet_type = RtmpPacketType(type_value)
    except ValueError as error:
        raise RtmpParseError(f"unknown packet type {type_value}") from error

    offset = _HEADER.size
    if len(data) < offset + token_len:
        raise RtmpParseError("truncated token")
    token = data[offset : offset + token_len].decode("utf-8")
    offset += token_len

    try:
        sequence, timestamp, flags = _SEQ_TS_FLAGS.unpack_from(data, offset)
    except struct.error as error:
        raise RtmpParseError(f"truncated frame header: {error}") from error
    offset += _SEQ_TS_FLAGS.size

    signature: Optional[bytes] = None
    if flags & 2:
        try:
            (sig_len,) = _U16.unpack_from(data, offset)
        except struct.error as error:
            raise RtmpParseError(f"truncated signature length: {error}") from error
        offset += _U16.size
        if len(data) < offset + sig_len:
            raise RtmpParseError("truncated signature")
        signature = data[offset : offset + sig_len]
        offset += sig_len

    try:
        (body_len,) = _U32.unpack_from(data, offset)
    except struct.error as error:
        raise RtmpParseError(f"truncated body length: {error}") from error
    offset += _U32.size
    if len(data) < offset + body_len:
        raise RtmpParseError("truncated body")
    body = data[offset : offset + body_len]
    if len(data) != offset + body_len:
        raise RtmpParseError("trailing bytes after body")

    return RtmpPacket(
        packet_type=packet_type,
        token=token,
        sequence=sequence,
        timestamp=timestamp,
        is_keyframe=bool(flags & 1),
        signature=signature,
        body=body,
    )


@dataclass(frozen=True)
class RtmpHandshake:
    """Connection setup metadata.

    Periscope hands the broadcast token to the client over HTTPS, but the
    client then presents it to Wowza *in plaintext* inside the RTMP connect
    packet — issue (1) of §7.1.
    """

    token: str
    encrypted: bool = False  # True only for RTMPS (private broadcasts / FB Live)

    def connect_packet(self) -> RtmpPacket:
        return RtmpPacket.connect(self.token)
