"""RTMPS (RTMP over TLS): cost model and a working encrypted channel.

The straightforward fix for the §7 tampering attack is full TLS encryption
— Facebook Live's choice — but "encrypting video streams in real time is
computationally costly, especially [for] smartphone apps with limited
computation and energy resources" (§7.2).  Periscope therefore kept
plaintext RTMP for public broadcasts (RTMPS only for private ones).

Two pieces live here:

* :class:`RtmpsCostModel` — the CPU trade-off backing the overhead
  ablation,
* :class:`TlsLikeChannel` — an authenticated stream cipher (SHA-256
  keystream + HMAC tag, an encrypt-then-MAC construction in the spirit of
  a TLS record layer) that the security experiments use to show *why*
  RTMPS defeats the attack: intercepted records are unparseable noise and
  any modification breaks the tag.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass, field


@dataclass(frozen=True)
class RtmpsCostModel:
    """CPU/energy cost of streaming with and without TLS.

    Costs are expressed per megabyte of video, normalized so plaintext
    RTMP costs 1.0 unit/MB; the defaults reflect symmetric-crypto overhead
    on 2015-era mobile CPUs (AES without hardware offload) plus the
    handshake amortized over a stream.
    """

    plaintext_cost_per_mb: float = 1.0
    encryption_overhead_per_mb: float = 0.85  # AES-CBC + HMAC, software
    handshake_cost: float = 40.0  # TLS handshake, amortized per connection
    bitrate_mbps: float = 0.8  # Periscope-era mobile video bitrate

    def stream_megabytes(self, duration_s: float) -> float:
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        return self.bitrate_mbps * duration_s / 8.0

    def rtmp_cost(self, duration_s: float) -> float:
        """Total processing cost of a plaintext RTMP stream."""
        return self.stream_megabytes(duration_s) * self.plaintext_cost_per_mb

    def rtmps_cost(self, duration_s: float) -> float:
        """Total processing cost of the same stream over TLS."""
        megabytes = self.stream_megabytes(duration_s)
        return (
            megabytes * (self.plaintext_cost_per_mb + self.encryption_overhead_per_mb)
            + self.handshake_cost
        )

    def relative_overhead(self, duration_s: float) -> float:
        """RTMPS cost as a multiple of RTMP cost (>1)."""
        base = self.rtmp_cost(duration_s)
        if base == 0:
            raise ValueError("zero-length stream has no defined overhead")
        return self.rtmps_cost(duration_s) / base


class TamperedRecordError(Exception):
    """Raised when an RTMPS record fails authentication."""


@dataclass
class TlsLikeChannel:
    """An authenticated encryption channel for RTMP records.

    Record layout: ``seq (8 bytes) || ciphertext || tag (32 bytes)``.
    The keystream is ``SHA-256(key || seq || block)`` (a CTR-style
    construction); the tag is ``HMAC-SHA256(mac_key, seq || ciphertext)``
    — encrypt-then-MAC.  Both sides derive independent cipher and MAC
    keys from the session secret.

    This is a teaching construction standing in for TLS: it gives the two
    properties the experiment needs — confidentiality (the §7 attacker
    cannot even find the broadcast token) and integrity (bit-flips are
    detected) — without an external crypto library.
    """

    secret: bytes
    _send_seq: int = field(default=0, init=False)
    _recv_seq: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if len(self.secret) < 16:
            raise ValueError("secret must be at least 16 bytes")
        self._cipher_key = hashlib.sha256(b"cipher" + self.secret).digest()
        self._mac_key = hashlib.sha256(b"mac" + self.secret).digest()

    def _keystream(self, seq: int, length: int) -> bytes:
        blocks = []
        for counter in range(0, length, 32):
            blocks.append(
                hashlib.sha256(
                    self._cipher_key + struct.pack(">QQ", seq, counter)
                ).digest()
            )
        return b"".join(blocks)[:length]

    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt-then-MAC one record (sender side)."""
        seq = self._send_seq
        self._send_seq += 1
        keystream = self._keystream(seq, len(plaintext))
        ciphertext = bytes(p ^ k for p, k in zip(plaintext, keystream))
        header = struct.pack(">Q", seq)
        tag = hmac.new(self._mac_key, header + ciphertext, hashlib.sha256).digest()
        return header + ciphertext + tag

    def open(self, record: bytes) -> bytes:
        """Verify and decrypt one record (receiver side).

        Raises :class:`TamperedRecordError` on any modification, replay or
        reorder — the record sequence must match the channel state.
        """
        if len(record) < 8 + 32:
            raise TamperedRecordError("record too short")
        header, ciphertext, tag = record[:8], record[8:-32], record[-32:]
        (seq,) = struct.unpack(">Q", header)
        expected_tag = hmac.new(
            self._mac_key, header + ciphertext, hashlib.sha256
        ).digest()
        if not hmac.compare_digest(tag, expected_tag):
            raise TamperedRecordError(f"bad tag on record {seq}")
        if seq != self._recv_seq:
            raise TamperedRecordError(
                f"record {seq} out of order (expected {self._recv_seq})"
            )
        self._recv_seq += 1
        keystream = self._keystream(seq, len(ciphertext))
        return bytes(c ^ k for c, k in zip(ciphertext, keystream))
