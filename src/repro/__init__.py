"""repro — a reproduction of "Anatomy of a Personalized Livestreaming
System" (Wang et al., IMC 2016).

Periscope and Meerkat are long defunct, so this library rebuilds the
measured system as a deterministic simulation — the livestreaming platform,
its two-CDN video pipeline (RTMP push via Wowza, chunked HLS via Fastly),
the social graph, the measurement crawlers, client playback, and the §7
stream-tampering attack/defense — and then reruns the paper's entire
analysis on top: every table and figure has a runner in
:mod:`repro.experiments`.

Quick start::

    from repro.workload import TraceConfig, TraceGenerator

    trace = TraceGenerator(TraceConfig.periscope(scale=0.0005)).generate()
    print(trace.dataset.table1_row())

See README.md for the architecture overview and DESIGN.md for the full
system inventory and experiment index.
"""

from repro.experiments.registry import get_experiment, list_experiments, run_experiment

__version__ = "1.0.0"

__all__ = ["__version__", "list_experiments", "get_experiment", "run_experiment"]
