"""Server resource model: the cost of scalability (Figure 14).

The paper measured a Wowza Streaming Engine on a laptop (8 GB RAM, 2.4 GHz
i7, 1 Gbps) while attaching RTMP or HLS viewers: memory was similar and
stable for both, but CPU diverged sharply — RTMP costs far more per viewer
because it performs *per-frame* work (25 ops/s/viewer) against HLS's
*per-poll* work (~0.4 ops/s/viewer), and the gap widens with audience size.

The model prices each operation class and reproduces the curve shapes; the
constants are calibrated so 500 RTMP viewers saturate the reference machine
(~90+% CPU) while 500 HLS viewers stay light (~20%).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LoadPoint:
    """Resource usage at one audience size."""

    viewers: int
    cpu_percent: float
    memory_mb: float


@dataclass(frozen=True)
class ServerLoadModel:
    """Analytic CPU/memory model of a streaming server."""

    frame_rate: float = 25.0  # RTMP pushes per viewer per second
    poll_interval_s: float = 2.4  # HLS polls per viewer every ~2.4 s
    cpu_per_frame_push: float = 0.0072  # % CPU per frame push per second
    cpu_per_poll: float = 0.085  # % CPU per poll request per second
    cpu_per_chunk_assembly: float = 0.9  # % CPU per chunk built per second
    chunk_duration_s: float = 3.0
    base_cpu_percent: float = 2.0
    base_memory_mb: float = 420.0
    memory_per_viewer_mb: float = 0.11  # connection state; small and linear
    max_cpu_percent: float = 100.0

    def rtmp_cpu(self, viewers: int) -> float:
        """CPU% serving ``viewers`` RTMP viewers of one broadcast."""
        self._check(viewers)
        cpu = self.base_cpu_percent + viewers * self.frame_rate * self.cpu_per_frame_push
        return min(cpu, self.max_cpu_percent)

    def hls_cpu(self, viewers: int) -> float:
        """CPU% serving ``viewers`` HLS viewers of one broadcast."""
        self._check(viewers)
        polls_per_s = viewers / self.poll_interval_s
        chunks_per_s = 1.0 / self.chunk_duration_s
        cpu = (
            self.base_cpu_percent
            + polls_per_s * self.cpu_per_poll
            + chunks_per_s * self.cpu_per_chunk_assembly
        )
        return min(cpu, self.max_cpu_percent)

    def rtmp_memory_mb(self, viewers: int) -> float:
        self._check(viewers)
        return self.base_memory_mb + viewers * self.memory_per_viewer_mb

    def hls_memory_mb(self, viewers: int) -> float:
        self._check(viewers)
        # HLS holds the chunk window regardless of audience, plus a
        # slightly lighter per-connection record (polling is stateless-ish).
        return self.base_memory_mb + 40.0 + viewers * self.memory_per_viewer_mb * 0.8

    def load_curve(self, viewer_counts: list[int], protocol: str) -> list[LoadPoint]:
        """Figure 14's sweep for one protocol."""
        if protocol == "rtmp":
            return [
                LoadPoint(v, self.rtmp_cpu(v), self.rtmp_memory_mb(v)) for v in viewer_counts
            ]
        if protocol == "hls":
            return [
                LoadPoint(v, self.hls_cpu(v), self.hls_memory_mb(v)) for v in viewer_counts
            ]
        raise ValueError(f"unknown protocol {protocol!r}")

    def max_rtmp_viewers(self, cpu_budget_percent: float = 95.0) -> int:
        """How many RTMP viewers fit in a CPU budget — the scalability wall
        behind Periscope's ~100-viewer RTMP threshold policy."""
        if cpu_budget_percent <= self.base_cpu_percent:
            return 0
        headroom = cpu_budget_percent - self.base_cpu_percent
        return int(headroom / (self.frame_rate * self.cpu_per_frame_push))

    def max_hls_viewers(self, cpu_budget_percent: float = 95.0) -> int:
        chunk_cpu = self.cpu_per_chunk_assembly / self.chunk_duration_s
        if cpu_budget_percent <= self.base_cpu_percent + chunk_cpu:
            return 0
        headroom = cpu_budget_percent - self.base_cpu_percent - chunk_cpu
        return int(headroom * self.poll_interval_s / self.cpu_per_poll)

    @staticmethod
    def _check(viewers: int) -> None:
        if viewers < 0:
            raise ValueError("viewer count must be non-negative")
