"""Server queueing under load: the volume→latency link, event-level.

The analytic Figure 14 model prices server work per operation; this
module adds the *dynamic* consequence: when offered load approaches a
server's capacity, requests queue, and every queued millisecond lands
directly in the viewer's polling delay.  Together with the growth
projection (:mod:`repro.core.projection`) this gives the abstract's
"strong link between volume of broadcasts and stream delivery latency"
both an analytic and an event-level footing.

The model is a FIFO single-server queue with deterministic service times
per operation class (poll = chunklist lookup; chunk build = assembly +
cache write), driven by the discrete-event engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.simulation.engine import Simulator


@dataclass
class ServerQueue:
    """A FIFO work queue with deterministic per-class service times."""

    simulator: Simulator
    #: Service time per poll request (chunklist lookup + response).
    poll_service_s: float = 0.002
    #: Service time per chunk assembly.
    chunk_service_s: float = 0.02
    #: Fault surface (set by repro.faults): multiplies every service time
    #: while the server is overloaded (1.0 = healthy).
    fault_slowdown: float = 1.0
    metrics: MetricsRegistry = field(default=NULL_REGISTRY, repr=False)
    _backlog_free_at: float = field(default=0.0, init=False)
    requests_served: int = field(default=0, init=False)
    busy_time_s: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        obs = self.metrics
        self._m_polls = obs.counter("cdn.queue.polls", help="poll requests served")
        self._m_chunks = obs.counter("cdn.queue.chunk_builds", help="chunk assemblies served")
        self._m_wait = obs.histogram("cdn.queue.wait_s", help="queueing delay before service")
        self._m_backlog = obs.gauge("cdn.queue.backlog_s", help="work queued ahead of a new arrival")

    def _serve(self, service_s: float) -> float:
        now = self.simulator.now
        service_s *= self.fault_slowdown
        start = max(now, self._backlog_free_at)
        completion = start + service_s
        self._backlog_free_at = completion
        self.requests_served += 1
        self.busy_time_s += service_s
        self._m_wait.observe(start - now)
        self._m_backlog.set(completion - now)
        return completion

    def serve_poll(self) -> float:
        """Admit one poll; returns its completion time."""
        self._m_polls.inc()
        return self._serve(self.poll_service_s)

    def serve_chunk_build(self) -> float:
        """Admit one chunk assembly; returns its completion time."""
        self._m_chunks.inc()
        return self._serve(self.chunk_service_s)

    def queueing_delay_now(self) -> float:
        """How long a request arriving now would wait before service."""
        return max(0.0, self._backlog_free_at - self.simulator.now)

    def utilization(self, elapsed_s: float) -> float:
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        return self.busy_time_s / elapsed_s


@dataclass(frozen=True)
class LoadPointMeasurement:
    """Measured queueing behaviour at one offered load."""

    concurrent_streams: int
    offered_load: float  # fraction of capacity
    mean_poll_delay_s: float
    p99_poll_delay_s: float
    utilization: float


def simulate_pop_load(
    concurrent_streams: int,
    viewers_per_stream: int = 30,
    poll_interval_s: float = 2.4,
    chunk_duration_s: float = 3.0,
    duration_s: float = 60.0,
    seed: int = 77,
    queue: ServerQueue | None = None,
    metrics: MetricsRegistry = NULL_REGISTRY,
) -> LoadPointMeasurement:
    """Drive one POP with the poll/chunk workload of many live streams.

    Each stream contributes periodic chunk builds and its viewers' polls
    (random phases).  Returns the measured extra delay polls suffered from
    queueing — the quantity that grows without bound as load approaches 1.
    """
    if concurrent_streams <= 0:
        raise ValueError("need at least one stream")
    simulator = Simulator(metrics=metrics)
    server = queue or ServerQueue(simulator, metrics=metrics)
    rng = np.random.default_rng(seed)
    poll_delays: list[float] = []

    def schedule_stream(stream_index: int) -> None:
        # Chunk builds on the chunk cadence.
        phase = float(rng.uniform(0.0, chunk_duration_s))
        t = phase
        while t < duration_s:
            simulator.schedule_at(t, server.serve_chunk_build)
            t += chunk_duration_s
        # Viewer polls, each with its own phase.
        for _ in range(viewers_per_stream):
            viewer_phase = float(rng.uniform(0.0, poll_interval_s))
            t = viewer_phase
            while t < duration_s:
                simulator.schedule_at(t, _poll(server, poll_delays))
                t += poll_interval_s

    for stream_index in range(concurrent_streams):
        schedule_stream(stream_index)
    simulator.run()

    per_stream_load = (
        viewers_per_stream / poll_interval_s * server.poll_service_s
        + server.chunk_service_s / chunk_duration_s
    )
    offered = concurrent_streams * per_stream_load
    metrics.gauge("cdn.queue.utilization", help="busy fraction over the run").set(
        server.utilization(duration_s)
    )
    delays = np.asarray(poll_delays)
    return LoadPointMeasurement(
        concurrent_streams=concurrent_streams,
        offered_load=offered,
        mean_poll_delay_s=float(delays.mean()) if len(delays) else 0.0,
        p99_poll_delay_s=float(np.percentile(delays, 99)) if len(delays) else 0.0,
        utilization=server.utilization(duration_s),
    )


class _poll:
    """Serve one poll and record its total (queue + service) delay."""

    def __init__(self, server: ServerQueue, sink: list[float]) -> None:
        self._server = server
        self._sink = sink

    def __call__(self) -> None:
        arrived = self._server.simulator.now
        completion = self._server.serve_poll()
        self._sink.append(completion - arrived)


def load_sweep(
    stream_counts: list[int], **kwargs
) -> list[LoadPointMeasurement]:
    """Measure queueing delay across a load trajectory."""
    return [simulate_pop_load(count, **kwargs) for count in stream_counts]
