"""The simulated video CDN.

Reproduces Periscope's two-CDN architecture (§4.1, Figure 8): Wowza ingest
datacenters receive broadcaster uploads over RTMP, push frames to the
first ~100 viewers, and assemble frames into ~3 s chunks; Fastly edge POPs
cache chunklists, pull fresh chunks from Wowza through a co-located
gateway POP, and serve HLS viewers who poll every 2–2.8 s.
"""

from repro.cdn.assignment import CdnAssignment
from repro.cdn.fastly import EdgeUnavailable, FastlyEdge
from repro.cdn.queueing import ServerQueue
from repro.cdn.server_load import LoadPoint, ServerLoadModel
from repro.cdn.transfer import TransferModel
from repro.cdn.wowza import IngestRecord, WowzaIngest

__all__ = [
    "CdnAssignment",
    "WowzaIngest",
    "IngestRecord",
    "FastlyEdge",
    "EdgeUnavailable",
    "ServerQueue",
    "TransferModel",
    "ServerLoadModel",
    "LoadPoint",
]
