"""The Wowza-to-Fastly chunk transfer model (Figure 15).

The paper infers that each Wowza DC hands fresh chunks to its *co-located*
Fastly POP, which then acts as a gateway distributing the chunk to the
other Fastly POPs — explaining the sharp >0.25 s gap between co-located
pairs and even nearby-city pairs (gateway coordination overhead), with
delay growing in distance beyond that.

The model composes, per (Wowza origin, Fastly destination) pair:

* origin handoff: Wowza to the co-located gateway POP (local, tens of ms),
* gateway coordination: cache-fill bookkeeping between the gateway and the
  destination POP (the ~0.25 s step),
* wide-area propagation: latency-model RTT between gateway and destination
  (request + response),
* chunk serialization over the inter-POP link,
* and the triggering viewer's poll offset (a fetch only starts when a
  viewer polls after chunklist expiry).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.datacenters import Datacenter, colocated_fastly
from repro.geo.latency import LatencyModel


@dataclass
class TransferModel:
    """Samples Wowza→Fastly chunk transfer delay (timestamps ⑦→⑪)."""

    latency: LatencyModel = field(default_factory=LatencyModel)
    handoff_s: float = 0.06  # Wowza -> co-located gateway POP
    handoff_jitter_sigma: float = 0.35
    coordination_s: float = 0.22  # gateway <-> remote POP cache-fill overhead
    coordination_jitter_sigma: float = 0.25
    chunk_bytes: float = 300_000.0  # ~3 s of 0.8 Mbps video
    interpop_bandwidth_bps: float = 1.0e8

    def gateway_for(self, wowza: Datacenter) -> Datacenter:
        return colocated_fastly(wowza)

    def is_colocated(self, wowza: Datacenter, fastly: Datacenter) -> bool:
        return wowza.city == fastly.city

    def transfer_delay_s(
        self,
        wowza: Datacenter,
        fastly: Datacenter,
        rng: np.random.Generator,
    ) -> float:
        """One sampled chunk transfer delay from ``wowza`` to ``fastly``.

        Excludes the triggering poll offset — callers that model polling
        (the delay crawler polls every 0.1 s) add it on top.
        """
        handoff = self.handoff_s * float(rng.lognormal(0.0, self.handoff_jitter_sigma))
        if self.is_colocated(wowza, fastly):
            return handoff
        gateway = self.gateway_for(wowza)
        if gateway.city == fastly.city:
            return handoff
        coordination = self.coordination_s * float(
            rng.lognormal(0.0, self.coordination_jitter_sigma)
        )
        # Request out, response (with the chunk) back.
        rtt = self.latency.rtt_s(gateway.location, fastly.location, rng)
        serialization = self.chunk_bytes * 8.0 / self.interpop_bandwidth_bps
        return handoff + coordination + rtt + serialization

    def expected_transfer_delay_s(self, wowza: Datacenter, fastly: Datacenter) -> float:
        """Jitter-free transfer delay (for analytic comparisons)."""
        if self.is_colocated(wowza, fastly):
            return self.handoff_s
        gateway = self.gateway_for(wowza)
        if gateway.city == fastly.city:
            return self.handoff_s
        propagation = 2.0 * self.latency.propagation_s(gateway.location, fastly.location)
        serialization = self.chunk_bytes * 8.0 / self.interpop_bandwidth_bps
        return self.handoff_s + self.coordination_s + propagation + serialization
