"""Geolocation-based client-to-datacenter assignment.

The paper's §5.3 findings, encoded as policy:

* each broadcaster connects to the *nearest Wowza* datacenter (reducing
  upload delay),
* RTMP viewers always connect to the *broadcaster's* Wowza datacenter —
  there is no inter-Wowza transfer,
* each HLS viewer reaches the *nearest Fastly* POP via IP anycast
  (minimizing last-mile delay).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.geo.coordinates import GeoPoint
from repro.geo.datacenters import (
    Datacenter,
    FASTLY_DATACENTERS,
    WOWZA_DATACENTERS,
    nearest_datacenter,
)


@dataclass
class CdnAssignment:
    """Pure assignment policy over the datacenter catalogs."""

    wowza_sites: Sequence[Datacenter] = field(default=WOWZA_DATACENTERS)
    fastly_sites: Sequence[Datacenter] = field(default=FASTLY_DATACENTERS)

    def __post_init__(self) -> None:
        if not self.wowza_sites or not self.fastly_sites:
            raise ValueError("both catalogs must be non-empty")
        for site in self.wowza_sites:
            if site.operator != "wowza":
                raise ValueError(f"{site.name} is not a Wowza site")
        for site in self.fastly_sites:
            if site.operator != "fastly":
                raise ValueError(f"{site.name} is not a Fastly site")

    def wowza_for_broadcaster(self, location: GeoPoint) -> Datacenter:
        """Nearest ingest datacenter to the broadcaster."""
        return nearest_datacenter(location, self.wowza_sites)

    def wowza_for_rtmp_viewer(self, broadcaster_wowza: Datacenter) -> Datacenter:
        """RTMP viewers connect to the broadcaster's ingest DC, wherever
        they are — Wowza never transfers streams between its own DCs."""
        return broadcaster_wowza

    def fastly_for_viewer(self, location: GeoPoint) -> Datacenter:
        """Anycast: the nearest edge POP."""
        return nearest_datacenter(location, self.fastly_sites)

    def ranked_fastly_for_viewer(
        self, location: GeoPoint, count: Optional[int] = None
    ) -> list[Datacenter]:
        """Edge POPs by increasing distance from the viewer (ties broken by
        POP name for determinism).

        The failover order: when a viewer's POP stops answering, it
        re-resolves to the next-nearest POP in this list and resumes the
        chunklist from the last seen sequence.
        """
        ranked = sorted(
            self.fastly_sites,
            key=lambda site: (location.distance_km(site.location), site.name),
        )
        return ranked if count is None else ranked[:count]
