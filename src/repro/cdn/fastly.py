"""The Fastly edge POP.

Each :class:`FastlyEdge` caches per-broadcast chunklists.  The cache-fill
protocol follows Figure 10(b): when Wowza completes a chunk it notifies the
edge to *expire* its cached chunklist (⑧); the next viewer poll (⑨) after
expiry triggers an origin pull (⑩) through the gateway path; the fresh
chunk arrives (⑪) and serves that poller and everyone after (⑭).

The edge records the availability timestamp ⑪ of every chunk — the series
the paper's high-frequency crawler measured and that drives the polling
(Figures 12–13) and Wowza2Fastly (Figure 15) analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cdn.transfer import TransferModel
from repro.cdn.wowza import WowzaIngest
from repro.geo.datacenters import Datacenter
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.protocols.hls import Chunklist
from repro.simulation.engine import Simulator

#: Poll response callback: (chunklist snapshot, response time).
PollCallback = Callable[[Chunklist, float], None]


@dataclass
class _EdgeBroadcastState:
    origin: WowzaIngest
    local_list: Chunklist = field(default_factory=Chunklist)
    known_origin_version: int = 0  # latest version the expiry channel announced
    fetch_in_flight: bool = False
    waiting_polls: list[PollCallback] = field(default_factory=list)
    availability: dict[int, float] = field(default_factory=dict)  # chunk -> ⑪
    poll_count: int = 0
    origin_pulls: int = 0

    @property
    def is_stale(self) -> bool:
        return self.local_list.version < self.known_origin_version


class FastlyEdge:
    """One edge POP serving HLS viewers."""

    def __init__(
        self,
        datacenter: Datacenter,
        simulator: Simulator,
        transfer_model: TransferModel,
        rng: np.random.Generator,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        self.datacenter = datacenter
        self.simulator = simulator
        self.transfer_model = transfer_model
        self.rng = rng
        self._broadcasts: dict[int, _EdgeBroadcastState] = {}
        self._m_polls = metrics.counter("cdn.fastly.polls", help="chunklist polls served")
        self._m_hits = metrics.counter("cdn.fastly.cache_hits", help="polls answered from a fresh cache")
        self._m_misses = metrics.counter("cdn.fastly.cache_misses", help="polls that found the cache stale")
        self._m_pulls = metrics.counter("cdn.fastly.origin_pulls", help="cache fills from the origin")
        self._m_pull_delay = metrics.histogram("cdn.fastly.pull_delay_s", help="origin pull transfer time")

    # -- wiring ----------------------------------------------------------

    def attach_broadcast(self, broadcast_id: int, origin: WowzaIngest) -> None:
        """Start serving a broadcast from ``origin``; subscribes to expiry
        notifications (the ⑧ channel)."""
        if broadcast_id in self._broadcasts:
            raise ValueError(f"broadcast {broadcast_id} already attached")
        state = _EdgeBroadcastState(origin=origin)
        self._broadcasts[broadcast_id] = state
        origin.add_expiry_listener(broadcast_id, self._on_expiry)

    def _on_expiry(self, broadcast_id: int, origin_version: int, _time: float) -> None:
        state = self._state(broadcast_id)
        state.known_origin_version = max(state.known_origin_version, origin_version)

    # -- the poll path -----------------------------------------------------

    def poll(self, broadcast_id: int, callback: PollCallback) -> None:
        """An HLS viewer polls the chunklist (Figure 10 ⑨/⑭).

        Fresh cache: respond immediately.  Stale cache: the first poller
        triggers an origin pull; this and subsequent pollers are answered
        when the pull lands.
        """
        state = self._state(broadcast_id)
        state.poll_count += 1
        self._m_polls.inc()
        now = self.simulator.now
        if not state.is_stale:
            self._m_hits.inc()
            callback(state.local_list.copy(), now)
            return
        self._m_misses.inc()
        state.waiting_polls.append(callback)
        if not state.fetch_in_flight:
            self._start_origin_pull(broadcast_id, state)

    def _start_origin_pull(self, broadcast_id: int, state: _EdgeBroadcastState) -> None:
        state.fetch_in_flight = True
        state.origin_pulls += 1
        self._m_pulls.inc()
        delay = self.transfer_model.transfer_delay_s(
            state.origin.datacenter, self.datacenter, self.rng
        )
        self._m_pull_delay.observe(delay)
        self.simulator.schedule(
            delay,
            lambda: self._finish_origin_pull(broadcast_id),
            label=f"fastly-pull:{self.datacenter.name}:{broadcast_id}",
        )

    def _finish_origin_pull(self, broadcast_id: int) -> None:
        state = self._state(broadcast_id)
        now = self.simulator.now
        fresh = state.origin.chunklist_snapshot(broadcast_id)
        previous_latest = state.local_list.latest_index
        for entry in fresh.entries_after(previous_latest):
            state.availability.setdefault(entry.chunk_index, now)
        state.local_list = fresh
        state.known_origin_version = max(state.known_origin_version, fresh.version)
        state.fetch_in_flight = False
        waiters, state.waiting_polls = state.waiting_polls, []
        for callback in waiters:
            callback(state.local_list.copy(), now)
        # The origin may have produced another chunk while the pull was in
        # flight; the next poll will notice the stale version and re-pull.

    # -- measurements -------------------------------------------------------

    def availability_times(self, broadcast_id: int) -> list[float]:
        """Chunk availability times ⑪ in chunk order."""
        availability = self._state(broadcast_id).availability
        return [availability[index] for index in sorted(availability)]

    def availability_map(self, broadcast_id: int) -> dict[int, float]:
        return dict(self._state(broadcast_id).availability)

    def poll_count(self, broadcast_id: int) -> int:
        return self._state(broadcast_id).poll_count

    def origin_pulls(self, broadcast_id: int) -> int:
        return self._state(broadcast_id).origin_pulls

    def render_playlist(self, broadcast_id: int) -> str:
        """The current local chunklist as M3U8 wire text — what a real
        crawler (or player) would fetch from this POP."""
        from repro.protocols.m3u8 import render_chunklist

        state = self._state(broadcast_id)
        return render_chunklist(state.local_list, broadcast_id)

    def chunk_payload(self, broadcast_id: int, index: int):
        """Fetch chunk bytes from the local cache (origin on miss)."""
        state = self._state(broadcast_id)
        if index not in state.availability:
            raise KeyError(f"chunk {index} not cached at {self.datacenter.name}")
        return state.origin.get_chunk(broadcast_id, index)

    def _state(self, broadcast_id: int) -> _EdgeBroadcastState:
        if broadcast_id not in self._broadcasts:
            raise KeyError(f"broadcast {broadcast_id} not attached to this POP")
        return self._broadcasts[broadcast_id]
