"""The Fastly edge POP.

Each :class:`FastlyEdge` caches per-broadcast chunklists.  The cache-fill
protocol follows Figure 10(b): when Wowza completes a chunk it notifies the
edge to *expire* its cached chunklist (⑧); the next viewer poll (⑨) after
expiry triggers an origin pull (⑩) through the gateway path; the fresh
chunk arrives (⑪) and serves that poller and everyone after (⑭).

The edge records the availability timestamp ⑪ of every chunk — the series
the paper's high-frequency crawler measured and that drives the polling
(Figures 12–13) and Wowza2Fastly (Figure 15) analyses.

Failure modes (driven by :mod:`repro.faults`): the POP itself can be taken
down (polls raise :class:`EdgeUnavailable`, the viewer's retry/failover
path) or degraded (origin-pull transfers slow down), and the *origin* can
become unavailable, in which case pulls fail and waiting pollers are
answered with the stale cached chunklist.  An optional circuit breaker
guards the origin-pull path ⑩: after repeated pull failures it opens and
the edge serves stale immediately — graceful degradation instead of
hammering a dead origin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.cdn.queueing import ServerQueue
from repro.cdn.transfer import TransferModel
from repro.cdn.wowza import WowzaIngest
from repro.geo.datacenters import Datacenter
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.protocols.hls import Chunklist
from repro.simulation.engine import Simulator

if TYPE_CHECKING:  # avoid a runtime repro.faults <-> repro.cdn cycle
    from repro.faults.resilience import CircuitBreaker

#: Poll response callback: (chunklist snapshot, response time).
PollCallback = Callable[[Chunklist, float], None]


class EdgeUnavailable(Exception):
    """Raised by :meth:`FastlyEdge.poll` while the POP is down.

    The synchronous failure channel viewers retry and fail over on (see
    :class:`repro.faults.resilience.RetryPolicy` and
    :class:`repro.client.viewer_client.HlsViewerClient`).
    """


@dataclass
class _EdgeBroadcastState:
    origin: WowzaIngest
    local_list: Chunklist = field(default_factory=Chunklist)
    known_origin_version: int = 0  # latest version the expiry channel announced
    fetch_in_flight: bool = False
    waiting_polls: list[PollCallback] = field(default_factory=list)
    availability: dict[int, float] = field(default_factory=dict)  # chunk -> ⑪
    poll_count: int = 0
    origin_pulls: int = 0
    pull_failures: int = 0
    stale_served: int = 0
    breaker: Optional["CircuitBreaker"] = None

    @property
    def is_stale(self) -> bool:
        return self.local_list.version < self.known_origin_version


class FastlyEdge:
    """One edge POP serving HLS viewers."""

    def __init__(
        self,
        datacenter: Datacenter,
        simulator: Simulator,
        transfer_model: TransferModel,
        rng: np.random.Generator,
        metrics: MetricsRegistry = NULL_REGISTRY,
        queue: Optional[ServerQueue] = None,
        breaker_factory: Optional[Callable[[], "CircuitBreaker"]] = None,
    ) -> None:
        self.datacenter = datacenter
        self.simulator = simulator
        self.transfer_model = transfer_model
        self.rng = rng
        #: Fault surface (set by repro.faults): while True, polls raise
        #: :class:`EdgeUnavailable`.
        self.fault_down: bool = False
        #: Fault surface: multiplies origin-pull transfer times while the
        #: POP is degraded (1.0 = healthy).
        self.fault_delay_factor: float = 1.0
        #: Optional front-end work queue: when present, poll responses pay
        #: the queueing + service delay (the volume→latency link).
        self.queue = queue
        self._breaker_factory = breaker_factory
        self._broadcasts: dict[int, _EdgeBroadcastState] = {}
        self._m_polls = metrics.counter("cdn.fastly.polls", help="chunklist polls served")
        self._m_hits = metrics.counter("cdn.fastly.cache_hits", help="polls answered from a fresh cache")
        self._m_misses = metrics.counter("cdn.fastly.cache_misses", help="polls that found the cache stale")
        self._m_pulls = metrics.counter("cdn.fastly.origin_pulls", help="cache fills from the origin")
        self._m_pull_delay = metrics.histogram("cdn.fastly.pull_delay_s", help="origin pull transfer time")
        self._m_poll_errors = metrics.counter("cdn.fastly.poll_errors", help="polls rejected because the POP was down")
        self._m_pull_failures = metrics.counter("cdn.fastly.pull_failures", help="origin pulls that failed (origin down)")
        self._m_stale = metrics.counter("cdn.fastly.stale_served", help="polls answered with a stale chunklist during origin trouble")

    # -- wiring ----------------------------------------------------------

    def attach_broadcast(self, broadcast_id: int, origin: WowzaIngest) -> None:
        """Start serving a broadcast from ``origin``; subscribes to expiry
        notifications (the ⑧ channel)."""
        if broadcast_id in self._broadcasts:
            raise ValueError(f"broadcast {broadcast_id} already attached")
        state = _EdgeBroadcastState(origin=origin)
        if self._breaker_factory is not None:
            state.breaker = self._breaker_factory()
        self._broadcasts[broadcast_id] = state
        origin.add_expiry_listener(broadcast_id, self._on_expiry)

    def _on_expiry(self, broadcast_id: int, origin_version: int, _time: float) -> None:
        state = self._state(broadcast_id)
        state.known_origin_version = max(state.known_origin_version, origin_version)

    # -- the poll path -----------------------------------------------------

    def poll(self, broadcast_id: int, callback: PollCallback) -> None:
        """An HLS viewer polls the chunklist (Figure 10 ⑨/⑭).

        Fresh cache: respond immediately.  Stale cache: the first poller
        triggers an origin pull; this and subsequent pollers are answered
        when the pull lands.  While the POP is down (fault injection),
        raises :class:`EdgeUnavailable` instead.
        """
        state = self._state(broadcast_id)
        if self.fault_down:
            self._m_poll_errors.inc()
            raise EdgeUnavailable(f"POP {self.datacenter.name} is down")
        state.poll_count += 1
        self._m_polls.inc()
        if not state.is_stale:
            self._m_hits.inc()
            self._respond(state, callback)
            return
        self._m_misses.inc()
        state.waiting_polls.append(callback)
        if not state.fetch_in_flight:
            self._start_origin_pull(broadcast_id, state)

    def _respond(self, state: _EdgeBroadcastState, callback: PollCallback) -> None:
        """Answer one poll with the current local chunklist.

        Without a front-end queue the response is immediate (the seed
        behaviour); with one, the callback fires when the queued poll
        request completes service.
        """
        if self.queue is None:
            callback(state.local_list.copy(), self.simulator.now)
            return
        completion = self.queue.serve_poll()
        self.simulator.schedule_at(
            completion,
            _QueuedResponse(self, state, callback),
            label=f"fastly-respond:{self.datacenter.name}",
        )

    def _serve_stale(self, state: _EdgeBroadcastState) -> None:
        """Answer all waiting polls with the stale cached chunklist."""
        waiters, state.waiting_polls = state.waiting_polls, []
        if not waiters:
            return
        state.stale_served += len(waiters)
        self._m_stale.inc(len(waiters))
        for callback in waiters:
            self._respond(state, callback)

    def _start_origin_pull(self, broadcast_id: int, state: _EdgeBroadcastState) -> None:
        breaker = state.breaker
        if breaker is not None and not breaker.allow_request(self.simulator.now):
            # Circuit open: don't hammer the dead origin — serve stale
            # immediately (Figure 10(b) path ⑩ guarded).
            self._serve_stale(state)
            return
        state.fetch_in_flight = True
        state.origin_pulls += 1
        self._m_pulls.inc()
        delay = self.transfer_model.transfer_delay_s(
            state.origin.datacenter, self.datacenter, self.rng
        )
        delay *= self.fault_delay_factor * state.origin.fault_delay_factor
        self._m_pull_delay.observe(delay)
        self.simulator.schedule(
            delay,
            lambda: self._finish_origin_pull(broadcast_id),
            label=f"fastly-pull:{self.datacenter.name}:{broadcast_id}",
        )

    def _finish_origin_pull(self, broadcast_id: int) -> None:
        state = self._state(broadcast_id)
        now = self.simulator.now
        state.fetch_in_flight = False
        if not state.origin.origin_available:
            # The pull failed: origin down.  Waiting pollers still get an
            # answer — the stale cached list — and the breaker (if any)
            # counts the failure toward opening.
            state.pull_failures += 1
            self._m_pull_failures.inc()
            if state.breaker is not None:
                state.breaker.record_failure(now)
            self._serve_stale(state)
            return
        if state.breaker is not None:
            state.breaker.record_success(now)
        fresh = state.origin.chunklist_snapshot(broadcast_id)
        previous_latest = state.local_list.latest_index
        for entry in fresh.entries_after(previous_latest):
            state.availability.setdefault(entry.chunk_index, now)
        state.local_list = fresh
        state.known_origin_version = max(state.known_origin_version, fresh.version)
        waiters, state.waiting_polls = state.waiting_polls, []
        for callback in waiters:
            self._respond(state, callback)
        # The origin may have produced another chunk while the pull was in
        # flight; the next poll will notice the stale version and re-pull.

    # -- measurements -------------------------------------------------------

    def availability_times(self, broadcast_id: int) -> list[float]:
        """Chunk availability times ⑪ in chunk order."""
        availability = self._state(broadcast_id).availability
        return [availability[index] for index in sorted(availability)]

    def availability_map(self, broadcast_id: int) -> dict[int, float]:
        return dict(self._state(broadcast_id).availability)

    def poll_count(self, broadcast_id: int) -> int:
        return self._state(broadcast_id).poll_count

    def origin_pulls(self, broadcast_id: int) -> int:
        return self._state(broadcast_id).origin_pulls

    def pull_failures(self, broadcast_id: int) -> int:
        return self._state(broadcast_id).pull_failures

    def stale_served(self, broadcast_id: int) -> int:
        return self._state(broadcast_id).stale_served

    def breaker_for(self, broadcast_id: int) -> Optional["CircuitBreaker"]:
        """The origin-pull circuit breaker for this broadcast (None when
        the edge was built without a ``breaker_factory``)."""
        return self._state(broadcast_id).breaker

    def render_playlist(self, broadcast_id: int) -> str:
        """The current local chunklist as M3U8 wire text — what a real
        crawler (or player) would fetch from this POP."""
        from repro.protocols.m3u8 import render_chunklist

        state = self._state(broadcast_id)
        return render_chunklist(state.local_list, broadcast_id)

    def chunk_payload(self, broadcast_id: int, index: int):
        """Fetch chunk bytes from the local cache (origin on miss)."""
        state = self._state(broadcast_id)
        if index not in state.availability:
            raise KeyError(f"chunk {index} not cached at {self.datacenter.name}")
        return state.origin.get_chunk(broadcast_id, index)

    def _state(self, broadcast_id: int) -> _EdgeBroadcastState:
        if broadcast_id not in self._broadcasts:
            raise KeyError(f"broadcast {broadcast_id} not attached to this POP")
        return self._broadcasts[broadcast_id]


class _QueuedResponse:
    """Deliver one queued poll response at service completion."""

    def __init__(
        self, edge: FastlyEdge, state: _EdgeBroadcastState, callback: PollCallback
    ) -> None:
        self._edge = edge
        self._state = state
        self._callback = callback

    def __call__(self) -> None:
        self._callback(self._state.local_list.copy(), self._edge.simulator.now)
