"""The Wowza ingest server.

One :class:`WowzaIngest` per ingest datacenter.  For each broadcast it:

* accepts the broadcaster's RTMP frame uploads (recording arrival
  timestamps — ② / ⑥ of Figure 10),
* pushes every frame immediately to the subscribed RTMP viewers (the
  low-latency tier),
* assembles frames into chunks of ``frames_per_chunk`` (75 ≙ 3 s), records
  the chunk-ready timestamp ⑦, appends to the broadcast's chunklist, and
  notifies the Fastly edges so they expire their cached copies (⑧).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.geo.datacenters import Datacenter
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.protocols.frames import Chunk, VideoFrame
from repro.protocols.hls import Chunklist
from repro.simulation.engine import Simulator


class RtmpSubscriber(Protocol):
    """Anything that can receive pushed RTMP frames."""

    def push_frame(self, broadcast_id: int, frame: VideoFrame, pushed_at: float) -> None:
        """Called by the ingest server the moment a frame is available."""


#: Callback signature for chunklist-expiry notifications (Figure 10 ⑧).
ExpiryListener = Callable[[int, int, float], None]  # (broadcast_id, version, time)


@dataclass
class IngestRecord:
    """Per-broadcast measurements collected at the ingest server."""

    broadcast_id: int
    token: str
    frame_arrivals: dict[int, float] = field(default_factory=dict)  # seq -> ②/⑥
    frame_captures: dict[int, float] = field(default_factory=dict)  # seq -> ①/⑤
    chunk_ready: dict[int, float] = field(default_factory=dict)  # index -> ⑦
    chunks: dict[int, Chunk] = field(default_factory=dict)

    def upload_delay_s(self, sequence: int) -> float:
        """Per-frame upload delay (② − ①)."""
        return self.frame_arrivals[sequence] - self.frame_captures[sequence]

    def chunk_arrival_times(self) -> list[float]:
        """Chunk-ready times in index order (the RTMP-side chunk trace)."""
        return [self.chunk_ready[index] for index in sorted(self.chunk_ready)]


class _BroadcastIngest:
    """Mutable per-broadcast state inside a Wowza server."""

    def __init__(self, broadcast_id: int, token: str, frames_per_chunk: int) -> None:
        self.record = IngestRecord(broadcast_id=broadcast_id, token=token)
        self.frames_per_chunk = frames_per_chunk
        self.pending_frames: list[VideoFrame] = []
        self.chunklist = Chunklist()
        self.next_chunk_index = 0
        self.rtmp_subscribers: list[RtmpSubscriber] = []
        self.live = True


class WowzaIngest:
    """An ingest datacenter handling many concurrent broadcasts."""

    def __init__(
        self,
        datacenter: Datacenter,
        simulator: Simulator,
        frames_per_chunk: int = 75,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        if frames_per_chunk <= 0:
            raise ValueError("frames_per_chunk must be positive")
        self.datacenter = datacenter
        self.simulator = simulator
        self.frames_per_chunk = frames_per_chunk
        #: Fault surface (set by repro.faults): while False, origin pulls
        #: against this server fail at the edge; ingest itself continues.
        self.origin_available: bool = True
        #: Fault surface: multiplies edge→origin pull transfer times while
        #: the server is degraded (overloaded Wowza, §5 delay spikes).
        self.fault_delay_factor: float = 1.0
        self._broadcasts: dict[int, _BroadcastIngest] = {}
        self._expiry_listeners: dict[int, list[ExpiryListener]] = {}
        self._m_frames = metrics.counter("cdn.wowza.frames_received", help="RTMP frames ingested")
        self._m_chunks = metrics.counter("cdn.wowza.chunks_completed", help="HLS chunks assembled")
        self._m_starts = metrics.counter("cdn.wowza.broadcasts_started")
        self._m_ends = metrics.counter("cdn.wowza.broadcasts_ended")
        self._m_live = metrics.gauge("cdn.wowza.live_broadcasts", help="broadcasts ingesting now")
        self._m_pushes = metrics.counter("cdn.wowza.rtmp_frames_pushed", help="frames fanned out to RTMP subscribers")

    # -- broadcast lifecycle -------------------------------------------

    def start_broadcast(
        self, broadcast_id: int, token: str, frames_per_chunk: Optional[int] = None
    ) -> None:
        if broadcast_id in self._broadcasts:
            raise ValueError(f"broadcast {broadcast_id} already ingesting")
        self._broadcasts[broadcast_id] = _BroadcastIngest(
            broadcast_id, token, frames_per_chunk or self.frames_per_chunk
        )
        self._m_starts.inc()
        self._m_live.inc()

    def end_broadcast(self, broadcast_id: int) -> IngestRecord:
        """Flush the trailing partial chunk and close the broadcast."""
        state = self._state(broadcast_id)
        if state.pending_frames:
            self._complete_chunk(state)
        if state.live:
            self._m_ends.inc()
            self._m_live.dec()
        state.live = False
        return state.record

    def is_live(self, broadcast_id: int) -> bool:
        state = self._broadcasts.get(broadcast_id)
        return state is not None and state.live

    def record_for(self, broadcast_id: int) -> IngestRecord:
        return self._state(broadcast_id).record

    # -- ingest ----------------------------------------------------------

    def receive_frame(self, broadcast_id: int, frame: VideoFrame) -> None:
        """A frame arrived from the broadcaster (called at arrival time)."""
        state = self._state(broadcast_id)
        if not state.live:
            raise ValueError(f"broadcast {broadcast_id} already ended")
        now = self.simulator.now
        state.record.frame_arrivals[frame.sequence] = now
        state.record.frame_captures[frame.sequence] = frame.capture_time
        self._m_frames.inc()

        # RTMP tier: push immediately to every subscriber.
        if state.rtmp_subscribers:
            self._m_pushes.inc(len(state.rtmp_subscribers))
            for subscriber in list(state.rtmp_subscribers):
                subscriber.push_frame(broadcast_id, frame, now)

        # HLS tier: chunk assembly.
        state.pending_frames.append(frame)
        if len(state.pending_frames) >= state.frames_per_chunk:
            self._complete_chunk(state)

    def _complete_chunk(self, state: _BroadcastIngest) -> None:
        now = self.simulator.now
        chunk = Chunk(
            index=state.next_chunk_index,
            frames=tuple(state.pending_frames),
            completed_time=now,
        )
        state.pending_frames = []
        state.next_chunk_index += 1
        self._m_chunks.inc()
        state.record.chunk_ready[chunk.index] = now
        state.record.chunks[chunk.index] = chunk
        state.chunklist.append(chunk.index, chunk.duration_s, now)
        for listener in self._expiry_listeners.get(state.record.broadcast_id, []):
            listener(state.record.broadcast_id, state.chunklist.version, now)

    # -- RTMP fan-out ------------------------------------------------------

    def subscribe_rtmp(self, broadcast_id: int, subscriber: RtmpSubscriber) -> None:
        self._state(broadcast_id).rtmp_subscribers.append(subscriber)

    def unsubscribe_rtmp(self, broadcast_id: int, subscriber: RtmpSubscriber) -> None:
        subscribers = self._state(broadcast_id).rtmp_subscribers
        if subscriber in subscribers:
            subscribers.remove(subscriber)

    def rtmp_subscriber_count(self, broadcast_id: int) -> int:
        return len(self._state(broadcast_id).rtmp_subscribers)

    # -- origin interface for Fastly ---------------------------------------

    def add_expiry_listener(self, broadcast_id: int, listener: ExpiryListener) -> None:
        self._expiry_listeners.setdefault(broadcast_id, []).append(listener)

    def chunklist_snapshot(self, broadcast_id: int) -> Chunklist:
        return self._state(broadcast_id).chunklist.copy()

    def get_chunk(self, broadcast_id: int, index: int) -> Chunk:
        chunks = self._state(broadcast_id).record.chunks
        if index not in chunks:
            raise KeyError(f"chunk {index} not (yet) available for {broadcast_id}")
        return chunks[index]

    def _state(self, broadcast_id: int) -> _BroadcastIngest:
        if broadcast_id not in self._broadcasts:
            raise KeyError(f"broadcast {broadcast_id} not ingesting here")
        return self._broadcasts[broadcast_id]
