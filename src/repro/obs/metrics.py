"""Simulation-time-aware metrics primitives.

The registry deliberately never reads the wall clock: the only notion of
"now" is a clock callable bound to a :class:`~repro.simulation.engine.Simulator`
(``registry.bind_simulator(sim)``), so two runs with the same seed produce
byte-identical snapshots.  Three primitive families cover the repo's needs:

* :class:`Counter` — monotone event counts (requests, cache hits, throttles),
* :class:`Gauge` — last-write-wins levels with min/max tracking (queue depth),
* :class:`Histogram` — fixed-bucket distribution plus a deterministic
  streaming quantile summary (queueing delays, inter-event gaps).

Everything is pure stdlib + floats; no dependencies beyond what the repo
already ships.  The :class:`NullRegistry` singleton (``NULL_REGISTRY``)
provides no-op twins of every primitive so instrumented components pay a
single no-op method call when observability is off — the safe default at
every call site.
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Callable, Iterable, Optional, Sequence

#: A simulated-time source, e.g. ``lambda: simulator.now``.
Clock = Callable[[], float]

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class MetricError(Exception):
    """Raised on metric misuse (name collisions across types, bad buckets)."""


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease (inc {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict:
        return {"value": self._value}


class Gauge:
    """A level that can move both ways; remembers its min/max excursions."""

    __slots__ = ("name", "help", "_value", "_min", "_max")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._min = math.inf
        self._max = -math.inf

    def set(self, value: float) -> None:
        value = float(value)
        self._value = value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self._value - amount)

    @property
    def value(self) -> float:
        return self._value

    @property
    def min(self) -> float:
        return self._min if self._min != math.inf else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max != -math.inf else 0.0

    def to_dict(self) -> dict:
        return {"value": self._value, "min": self.min, "max": self.max}


class StreamingQuantile:
    """A deterministic bounded-memory quantile sketch.

    Keeps a systematic 1-in-``stride`` sample of the stream in a buffer of
    at most ``max_size`` values; when the buffer fills, every other kept
    value is dropped and the stride doubles.  No randomness is involved, so
    identical streams yield identical summaries — the property the repo's
    determinism tests rely on.
    """

    __slots__ = ("max_size", "_buffer", "_stride", "_seen")

    def __init__(self, max_size: int = 512) -> None:
        if max_size < 8:
            raise MetricError("quantile buffer must hold at least 8 values")
        self.max_size = max_size
        self._buffer: list[float] = []
        self._stride = 1
        self._seen = 0

    def observe(self, value: float) -> None:
        if self._seen % self._stride == 0:
            self._buffer.append(value)
            if len(self._buffer) >= self.max_size:
                self._buffer = self._buffer[::2]
                self._stride *= 2
        self._seen += 1

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile must be within [0, 1], got {q}")
        if not self._buffer:
            return math.nan
        ordered = sorted(self._buffer)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max and quantile summary."""

    __slots__ = (
        "name", "help", "_bounds", "_counts", "_count", "_sum",
        "_min", "_max", "_summary",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricError(f"histogram {name} buckets must be strictly increasing")
        self.name = name
        self.help = help
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot = overflow
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._summary = StreamingQuantile()

    def observe(self, value: float) -> None:
        value = float(value)
        self._counts[bisect.bisect_left(self._bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._summary.observe(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        return self._summary.quantile(q)

    def bucket_counts(self) -> dict[str, int]:
        """Cumulative counts keyed by upper bound (Prometheus ``le`` style)."""
        cumulative = 0
        out: dict[str, int] = {}
        for bound, count in zip(self._bounds, self._counts):
            cumulative += count
            out[f"{bound:g}"] = cumulative
        out["inf"] = self._count
        return out

    def to_dict(self) -> dict:
        quantiles = {}
        if self._count:
            quantiles = {
                "p50": self.quantile(0.50),
                "p90": self.quantile(0.90),
                "p99": self.quantile(0.99),
            }
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
            "buckets": self.bucket_counts(),
            **quantiles,
        }


#: A snapshot-time hook; lets components publish batched aggregates lazily.
Collector = Callable[["MetricsRegistry"], None]


class MetricsRegistry:
    """Named metrics plus the simulated clock they report against.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    fixes the type, later calls return the same object (a different type at
    the same name raises).  Components that batch their accounting register
    a :data:`Collector`, invoked at :meth:`snapshot` time.
    """

    enabled = True

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock = clock
        self._metrics: dict[str, object] = {}
        self._collectors: list[Collector] = []

    # -- clock -----------------------------------------------------------

    def bind_clock(self, clock: Clock) -> None:
        self._clock = clock

    def bind_simulator(self, simulator) -> None:
        """Use ``simulator.now`` as this registry's notion of time."""
        self._clock = lambda: simulator.now

    def now(self) -> float:
        """Current simulated time (0.0 when no clock is bound)."""
        return self._clock() if self._clock is not None else 0.0

    # -- get-or-create ---------------------------------------------------

    def _get(self, name: str, kind: type, factory: Callable[[], object]):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise MetricError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, help, buckets))

    def add_collector(self, collector: Collector) -> None:
        self._collectors.append(collector)

    # -- introspection ---------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """All metrics as one JSON-able dict, collectors flushed first."""
        for collector in self._collectors:
            collector(self)
        counters: dict[str, dict] = {}
        gauges: dict[str, dict] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.to_dict()
            elif isinstance(metric, Gauge):
                gauges[name] = metric.to_dict()
            else:
                histograms[name] = metric.to_dict()  # type: ignore[union-attr]
        return {
            "sim_time_s": self.now(),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def as_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


# -- the off switch -------------------------------------------------------


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """A registry whose primitives are shared no-ops.

    Passing this (the module default everywhere) keeps the instrumentation
    cost to one no-op method call per observation — measured at under 10%
    of the micro-benchmark budget in ``benchmarks/test_obs_overhead.py``.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str, help: str = "") -> Counter:
        return self._null_counter

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._null_gauge

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._null_histogram

    def add_collector(self, collector: Collector) -> None:
        pass

    def snapshot(self) -> dict:
        return {"sim_time_s": 0.0, "counters": {}, "gauges": {}, "histograms": {}}


#: Module-level default: observability off, zero setup required.
NULL_REGISTRY = NullRegistry()
