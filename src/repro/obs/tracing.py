"""Lightweight span timing on simulated time.

Two facilities:

* :class:`SpanRecorder` — per-component event accounting for the engine's
  run loop.  Event labels like ``"hls-poll:42"`` are keyed by their prefix
  (``"hls-poll"``), so per-component event counts and the simulated time
  between consecutive events of a component come for free from labels the
  codebase already sets.  The hot path is two dict operations plus one
  histogram observe; counts are published to the registry lazily via a
  snapshot collector.
* :func:`span` — a context manager measuring the *simulated* time a block
  spans (via the registry clock), recorded into ``span.<name>.duration_s``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import Histogram, MetricsRegistry


class SpanRecorder:
    """Aggregates per-label event counts and inter-event gaps."""

    __slots__ = ("_registry", "_counts", "_published", "_last", "_gaps")

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._counts: dict[str, int] = {}
        self._published: dict[str, float] = {}
        self._last: dict[str, float] = {}
        self._gaps: dict[str, Histogram] = {}
        registry.add_collector(self._collect)

    def record(self, label: str, now: float) -> None:
        """Account one engine event with ``label`` firing at sim time ``now``."""
        key = label.partition(":")[0] if label else "unlabelled"
        counts = self._counts
        counts[key] = counts.get(key, 0) + 1
        last = self._last.get(key)
        if last is not None:
            gap_hist = self._gaps.get(key)
            if gap_hist is None:
                gap_hist = self._registry.histogram(
                    f"engine.span.{key}.gap_s",
                    help="simulated time between consecutive events of this label",
                )
                self._gaps[key] = gap_hist
            gap_hist.observe(now - last)
        self._last[key] = now

    def _collect(self, registry: MetricsRegistry) -> None:
        for key, count in self._counts.items():
            counter = registry.counter(
                f"engine.span.{key}.events", help="events processed with this label"
            )
            done = self._published.get(key, 0.0)
            if count > done:
                counter.inc(count - done)
                self._published[key] = float(count)


@contextmanager
def span(registry: MetricsRegistry, name: str) -> Iterator[None]:
    """Record the simulated time a block spans into ``span.<name>.duration_s``."""
    start = registry.now()
    try:
        yield
    finally:
        registry.histogram(
            f"span.{name}.duration_s", help="simulated duration of this span"
        ).observe(registry.now() - start)
