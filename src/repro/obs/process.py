"""Host-process observability: the peak-RSS high-water mark.

Everything else in :mod:`repro.obs` measures *simulated* quantities;
this module deliberately reads **host** state (``resource.getrusage``)
because memory, unlike time, has no simulated stand-in — the whole point
of the out-of-core streaming merge (:mod:`repro.parallel.merge`) is a
claim about real process RSS, and ``scripts/check.sh bench`` gates it.
For that reason the module sits on the determinism linter's timing-only
allowlist; host-state reads anywhere else in simulation or analysis code
are flagged (rule ``wall-clock``), exactly like ``time.perf_counter``.

The value is a *process-lifetime* high-water mark: it never decreases,
so phase-specific bounds (e.g. "the merge's RSS") must be measured in a
fresh subprocess that runs only that phase — which is how the benchmark
harness uses it.  On Linux the reader is ``VmHWM`` from
``/proc/self/status`` rather than ``getrusage``'s ``ru_maxrss``:
``ru_maxrss`` is captured into the signal struct at ``fork`` and
survives ``execve``, so a freshly spawned child would report the
*parent's* footprint at spawn time, while ``VmHWM`` lives on the
``mm`` that ``execve`` replaces and therefore measures only the new
program.
"""

from __future__ import annotations

import sys
from typing import Optional

__all__ = ["peak_rss_mb"]


def peak_rss_mb() -> Optional[float]:
    """This process's peak resident set size in MiB, or ``None``.

    ``None`` where neither ``/proc/self/status`` nor the stdlib
    ``resource`` module is available (non-POSIX platforms) — callers and
    the bench gate treat that as a logged skip, never an error.
    ``VmHWM``/``ru_maxrss`` are kilobytes on Linux and ``ru_maxrss`` is
    bytes on macOS; all are normalized to MiB.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:  # pragma: no cover - no procfs (macOS and friends)
        pass
    try:
        import resource
    except ImportError:  # pragma: no cover - POSIX-only stdlib module
        return None
    peak = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is in bytes
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0
