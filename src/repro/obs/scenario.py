"""A small, fully instrumented end-to-end scenario.

Drives every instrumented subsystem — engine, CDN (Wowza ingest + Fastly
edge + server queue), platform service, crawler, and viewer clients —
through one registry, so ``repro metrics`` (and the obs tests) can show a
live snapshot with counters from the whole stack.  Deliberately tiny:
a few broadcasts, a handful of viewers, a ~2-minute horizon.
"""

from __future__ import annotations

from repro.cdn.fastly import FastlyEdge
from repro.cdn.queueing import ServerQueue
from repro.cdn.transfer import TransferModel
from repro.cdn.wowza import WowzaIngest
from repro.client.broadcaster import BroadcasterClient
from repro.client.network import LastMileLink
from repro.client.viewer_client import HlsViewerClient, RtmpViewerClient
from repro.crawler.global_list import GlobalListCrawler
from repro.crawler.rate_limit import TokenBucket
from repro.geo.datacenters import FASTLY_DATACENTERS, WOWZA_DATACENTERS
from repro.obs.metrics import MetricsRegistry
from repro.platform.service import LivestreamService
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams


def run_metrics_scenario(
    seed: int = 7,
    n_broadcasts: int = 3,
    viewers_per_broadcast: int = 4,
    broadcast_duration_s: float = 30.0,
    horizon_s: float = 150.0,
) -> MetricsRegistry:
    """Run the instrumented micro-scenario; returns the populated registry."""
    if n_broadcasts <= 0:
        raise ValueError("need at least one broadcast")
    streams = RandomStreams(seed)
    registry = MetricsRegistry()
    simulator = Simulator(metrics=registry)

    service = LivestreamService(metrics=registry)
    service.users.register_many(50 + n_broadcasts * viewers_per_broadcast)

    wowza = WowzaIngest(
        WOWZA_DATACENTERS[0], simulator, frames_per_chunk=25, metrics=registry
    )
    pop = next(
        (dc for dc in FASTLY_DATACENTERS if dc.city == wowza.datacenter.city),
        FASTLY_DATACENTERS[0],
    )
    edge = FastlyEdge(
        pop, simulator, TransferModel(), streams.get("edge"), metrics=registry
    )
    server_queue = ServerQueue(simulator, metrics=registry)

    engagement_rng = streams.get("engagement")
    for index in range(n_broadcasts):
        start = index * 20.0
        broadcaster_id = 1 + index

        def launch(broadcaster_id=broadcaster_id, slot=index):
            now = simulator.now
            broadcast = service.start_broadcast(broadcaster_id, time=now)
            bid = broadcast.broadcast_id
            edge.attach_broadcast(bid, wowza)
            uplink = LastMileLink.mobile_uplink(
                streams.get(f"uplink/{slot}"), horizon_s=horizon_s
            )
            client = BroadcasterClient(
                broadcast_id=bid, token=f"tok-{bid}", simulator=simulator,
                wowza=wowza, uplink=uplink,
            )
            client.start(start_time=now, duration_s=broadcast_duration_s)
            for viewer_offset in range(viewers_per_broadcast):
                viewer_id = 40 + slot * viewers_per_broadcast + viewer_offset
                service.join(bid, viewer_id, time=now)
                service.heart(bid, viewer_id, time=now)
                service.comment(bid, viewer_id, time=now)
                server_queue.serve_poll()
                if viewer_offset % 2 == 0:
                    rtmp = RtmpViewerClient(
                        viewer_id=viewer_id, broadcast_id=bid, simulator=simulator,
                        downlink=LastMileLink.stable_wifi(streams.get(f"rtmp/{viewer_id}")),
                        metrics=registry,
                    )
                    rtmp.attach(wowza)
                else:
                    hls = HlsViewerClient(
                        viewer_id=viewer_id, broadcast_id=bid, simulator=simulator,
                        edge=edge,
                        downlink=LastMileLink.stable_wifi(streams.get(f"hls/{viewer_id}")),
                        stop_after=now + broadcast_duration_s + 15.0,
                        metrics=registry,
                    )
                    hls.start_polling(first_poll_at=now + float(
                        engagement_rng.uniform(0.5, 2.0)
                    ))
            simulator.schedule(
                broadcast_duration_s + 5.0,
                lambda bid=bid: service.end_broadcast(bid, simulator.now),
                label="platform-end",
            )

        simulator.schedule_at(start, launch, label="platform-launch")

    crawler = GlobalListCrawler(
        service, simulator, streams.get("crawler"),
        n_accounts=4, account_refresh_s=5.0,
        rate_limit=TokenBucket(rate_per_s=2.0, capacity=4.0, metrics=registry),
        metrics=registry,
    )
    crawler.start()
    simulator.run(until=horizon_s)
    return registry
