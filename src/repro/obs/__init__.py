"""Observability for the simulator: metrics, span timing, snapshots.

Usage::

    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    simulator = Simulator(metrics=registry)        # engine spans + queue depth
    service = LivestreamService(metrics=registry)  # API call counters
    ...
    print(registry.as_json())

Every instrumented component defaults to :data:`NULL_REGISTRY`, whose
primitives are no-ops — existing call sites keep working unchanged and pay
essentially nothing (see ``benchmarks/test_obs_overhead.py``).
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    StreamingQuantile,
)
from repro.obs.process import peak_rss_mb
from repro.obs.tracing import SpanRecorder, span

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "SpanRecorder",
    "peak_rss_mb",
    "span",
]
