"""Heavy-tailed and bounded distribution helpers.

The paper's workload is dominated by skewed distributions: broadcast
durations (lognormal, 85% under 10 minutes), audience sizes (power law with
a 100K-viewer tail), and per-user activity (Zipf-like, top 15% of viewers
watching 10x the median).  These helpers wrap numpy generators with the
parameterizations used throughout :mod:`repro.workload`.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

ArrayOrFloat = Union[float, np.ndarray]


def lognormal_from_median(
    rng: np.random.Generator,
    median: ArrayOrFloat,
    sigma: float,
    size: Union[int, None] = None,
) -> ArrayOrFloat:
    """Sample a lognormal parameterized by its *median* rather than ``mu``.

    ``median`` is easier to calibrate against the paper's CDF figures: the
    lognormal median is ``exp(mu)``, so ``mu = ln(median)``.  ``median``
    may be an array (broadcast against ``size``) for batched sampling with
    a per-sample median.
    """
    if isinstance(median, np.ndarray):
        if len(median) and float(median.min()) <= 0:
            raise ValueError("all medians must be positive")
        mu: ArrayOrFloat = np.log(median)
    else:
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        mu = math.log(median)
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    return rng.lognormal(mean=mu, sigma=sigma, size=size)


def bounded_pareto(
    rng: np.random.Generator,
    alpha: float,
    lower: float,
    upper: float,
    size: Union[int, None] = None,
) -> ArrayOrFloat:
    """Sample a Pareto truncated to ``[lower, upper]`` via inverse transform.

    Audience sizes use this: a pure Pareto occasionally produces absurd
    values, while the bounded variant keeps the 100K-viewer ceiling the paper
    observed.
    """
    if not 0 < lower < upper:
        raise ValueError(f"need 0 < lower < upper, got lower={lower}, upper={upper}")
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    u = rng.random(size)
    la = lower**alpha
    ha = upper**alpha
    return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalized Zipf weights over ranks ``1..n``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def sample_zipf(
    rng: np.random.Generator,
    n: int,
    exponent: float,
    size: Union[int, None] = None,
) -> Union[int, np.ndarray]:
    """Sample 0-based ranks from a Zipf distribution over ``n`` items."""
    weights = zipf_weights(n, exponent)
    return rng.choice(n, size=size, p=weights)


def truncated_normal(
    rng: np.random.Generator,
    mean: float,
    std: float,
    lower: float,
    upper: float,
    size: Union[int, None] = None,
) -> ArrayOrFloat:
    """Normal samples clipped by rejection into ``[lower, upper]``.

    Falls back to clipping after 100 rejection rounds, which in practice only
    happens with degenerate parameters.
    """
    if lower > upper:
        raise ValueError(f"need lower <= upper, got lower={lower}, upper={upper}")
    want_scalar = size is None
    count = 1 if want_scalar else int(np.prod(size))
    out = np.empty(count)
    filled = 0
    for _ in range(100):
        needed = count - filled
        if needed <= 0:
            break
        draw = rng.normal(mean, std, size=needed)
        good = draw[(draw >= lower) & (draw <= upper)]
        out[filled : filled + len(good)] = good
        filled += len(good)
    if filled < count:
        out[filled:] = np.clip(rng.normal(mean, std, size=count - filled), lower, upper)
    if want_scalar:
        return float(out[0])
    return out.reshape(size)


def discretize_counts(values: ArrayOrFloat) -> np.ndarray:
    """Round non-negative float samples to integer counts (at least zero)."""
    return np.maximum(np.rint(np.asarray(values)), 0).astype(np.int64)
