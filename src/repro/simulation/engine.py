"""A minimal, deterministic discrete-event simulation engine.

The engine is intentionally simple: a priority queue of timestamped events,
a clock that only moves forward, and cancellation support.  Determinism
matters more than raw speed here — ties are broken by insertion order so two
runs with the same seed produce identical traces.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> sim.schedule(2.0, lambda: fired.append("b"))  # doctest: +ELLIPSIS
Event(...)
>>> sim.schedule(1.0, lambda: fired.append("a"))  # doctest: +ELLIPSIS
Event(...)
>>> sim.run()
>>> fired
['a', 'b']
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimulationError(Exception):
    """Raised on misuse of the simulation engine (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events order by ``(time, sequence)`` — the sequence number is a global
    insertion counter, which makes simultaneous events fire in the order
    they were scheduled.  This keeps runs deterministic.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time arrives."""
        self.cancelled = True


class EventQueue:
    """A heap of :class:`Event` objects with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        event = Event(time=time, sequence=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Return the next non-cancelled event, or ``None`` when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None


class Simulator:
    """Discrete-event simulator with a forward-only clock.

    Components schedule callbacks at absolute times (:meth:`schedule_at`) or
    relative delays (:meth:`schedule`).  ``run`` drains the queue, optionally
    up to a horizon.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._queue = EventQueue()
        self._now = float(start_time)
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still scheduled."""
        return len(self._queue)

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self._now + delay, action, label)

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        return self._queue.push(time, action, label)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in time order.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time; the clock is
            advanced exactly to ``until``.  ``None`` drains the queue.
        max_events:
            Safety valve — stop after this many events.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        processed_this_run = 0
        try:
            while True:
                if max_events is not None and processed_this_run >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                if event is None:
                    break
                self._now = event.time
                event.action()
                self._events_processed += 1
                processed_this_run += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
